module Bits = Jhdl_logic.Bits
module Fault = Jhdl_faults.Fault
module Metrics = Jhdl_metrics.Metrics
module Breaker = Jhdl_resilience.Breaker

(* ------------------------------------------------------------------ *)
(* retry policy and the reliable-exchange engine                       *)
(* ------------------------------------------------------------------ *)

type retry_policy = {
  max_attempts : int;
  base_backoff_s : float;
  backoff_cap_s : float;
  exchange_timeout_s : float;
}

let default_retry =
  { max_attempts = 6;
    base_backoff_s = 0.05;
    backoff_cap_s = 2.0;
    exchange_timeout_s = 1.0 }

let no_retry = { default_retry with max_attempts = 1 }

exception Exchange_failed of string

(* internal: the peer process is down and a session layer is armed, so
   escape the retry loop promptly and resume instead of burning attempts
   against a dead socket *)
exception Peer_down

(* A wire is a channel plus everything the reliable-exchange layer
   needs: the retry policy, the sender's sequence counter, and tallies
   of the recovery work actually performed. *)
type wire = {
  channel : Network.t;
  policy : retry_policy;
  mutable next_seq : int;
  mutable retry_count : int;
  mutable retransmitted_bytes : int;
}

let make_wire ?faults ?(retry = default_retry) params =
  { channel = Network.create ?faults params;
    policy = retry;
    next_seq = 0;
    retry_count = 0;
    retransmitted_bytes = 0 }

let alloc_seq wire =
  let seq = wire.next_seq in
  wire.next_seq <- (wire.next_seq + 1) land Protocol.max_seq;
  seq

(* One request/reply exchange with recovery. Each attempt transmits the
   framed request; losses, detected corruptions and disconnects cost a
   timeout (charged to the simulated clock) and a capped exponential
   backoff before the retransmission. The peer dedupes by sequence
   number, so a retransmission after a lost *reply* replays the cached
   answer instead of re-executing — which is what keeps functional
   results byte-identical to a fault-free run.

   [peer] returns [None] when the peer process is dead. A dead peer (or
   a [Crashed] transmission, which kills it via [on_crash]) looks like
   silence to the sender: with [session_armed] the engine raises
   [Peer_down] after the timeout so the session layer can resume; without
   a session it keeps retrying into a clean [Exchange_failed]. The
   sequence number is the caller's, so a resumed retransmission of the
   same request hits the peer's dedup cache instead of re-executing. *)
let wire_exchange wire ~seq ~peer ?(session_armed = false)
    ?(on_crash = fun () -> ()) message =
  let request = Protocol.encode_packet ~seq message in
  let request_bytes = String.length request in
  let policy = wire.policy in
  let timeout () = Network.stall wire.channel policy.exchange_timeout_s in
  let peer_lost () =
    timeout ();
    if session_armed then raise Peer_down
  in
  let rec attempt n =
    if n > policy.max_attempts then
      raise
        (Exchange_failed
           (Printf.sprintf "request seq %d lost after %d attempt(s)" seq
              policy.max_attempts));
    if n > 1 then begin
      let backoff =
        Float.min policy.backoff_cap_s
          (policy.base_backoff_s *. (2.0 ** float_of_int (n - 2)))
      in
      Network.stall wire.channel backoff;
      wire.retry_count <- wire.retry_count + 1;
      wire.retransmitted_bytes <- wire.retransmitted_bytes + request_bytes
    end;
    match Network.transmit wire.channel ~bytes:request_bytes with
    | Network.Dropped | Network.Disconnected ->
      timeout ();
      attempt (n + 1)
    | Network.Crashed ->
      on_crash ();
      peer_lost ();
      attempt (n + 1)
    | Network.Corrupted ->
      (* the damaged frame reaches the peer, whose CRC rejects it; the
         sender hears nothing and times out *)
      (match Protocol.decode_packet (Network.mangle wire.channel request) with
       | Ok packet -> deliver n packet
       | Error _ ->
         timeout ();
         attempt (n + 1))
    | Network.Delivered -> deliver n { Protocol.seq; payload = message }
  and deliver n packet =
    match peer packet with
    | None ->
      peer_lost ();
      attempt (n + 1)
    | Some reply_packet ->
      let reply_encoded =
        Protocol.encode_packet ~seq:reply_packet.Protocol.seq
          reply_packet.Protocol.payload
      in
      (match Network.transmit wire.channel ~bytes:(String.length reply_encoded) with
       | Network.Delivered -> reply_packet.Protocol.payload
       | Network.Crashed ->
         (* the peer applied the request, replied, and died as the reply
            left: the journal has the message, so a post-resume
            retransmission replays the reconstructed cached reply *)
         on_crash ();
         peer_lost ();
         attempt (n + 1)
       | Network.Corrupted ->
         (match
            Protocol.decode_packet (Network.mangle wire.channel reply_encoded)
          with
          | Ok back -> back.Protocol.payload
          | Error _ ->
            timeout ();
            attempt (n + 1))
       | Network.Dropped | Network.Disconnected ->
         timeout ();
         attempt (n + 1))
  in
  attempt 1

(* ------------------------------------------------------------------ *)
(* co-simulation sessions                                              *)
(* ------------------------------------------------------------------ *)

type session_policy = {
  resume_attempts : int;
  checkpoint_every : int;
  heartbeat_every : int;
}

let default_session_policy =
  { resume_attempts = 3; checkpoint_every = 16; heartbeat_every = 0 }

type link_session = {
  ls_policy : session_policy;
  sid : string;
  mutable last_acked : int;  (* seq of the last successful exchange, -1 *)
  mutable since_checkpoint : int;
  mutable since_heartbeat : int;
  mutable resumes : int;
}

(* Per-link instruments; minted from the nil registry unless [attach]
   was given a live one, so updating them unconditionally is free. *)
type link_metrics = {
  lm_exchanges : Metrics.counter;
  lm_rtt_us : Metrics.histogram; (* simulated round trip per exchange *)
  lm_resumes : Metrics.counter; (* resume handshakes attempted *)
  lm_trace : Metrics.tracer;
}

type link = {
  endpoint : Endpoint.t;
  wire : wire;
  session : link_session option;
  lk_breaker : Breaker.t option;
  lm : link_metrics;
  mutable crash_at : int option;  (* one-shot: crash at the Nth exchange *)
  mutable exchanges : int;
}

(* constant labels: the tracer stores the pointer, never a copy *)
let message_label = function
  | Protocol.Set_inputs _ -> "set_inputs"
  | Protocol.Cycle _ -> "cycle"
  | Protocol.Reset -> "reset"
  | Protocol.Get_outputs _ -> "get_outputs"
  | Protocol.Outputs_are _ -> "outputs_are"
  | Protocol.Ack -> "ack"
  | Protocol.Protocol_error _ -> "protocol_error"
  | Protocol.Hello _ -> "hello"
  | Protocol.Resume _ -> "resume"
  | Protocol.Session_state _ -> "session_state"
  | Protocol.Heartbeat -> "heartbeat"
  | Protocol.Checkpoint -> "checkpoint"

type t = {
  mutable links : link list; (* attach order *)
}

let create () = { links = [] }

let link_peer link packet =
  if Endpoint.is_alive link.endpoint then
    Some (Endpoint.handle_packet link.endpoint packet)
  else None

let link_on_crash link () = Endpoint.crash link.endpoint

(* every logical exchange (data, handshake or maintenance) counts; the
   one-shot [crash_at] trigger kills the endpoint as the Nth one starts,
   deterministically, whatever the fault dice do *)
let begin_exchange link =
  link.exchanges <- link.exchanges + 1;
  (match link.crash_at with
   | Some n when link.exchanges >= n ->
     link.crash_at <- None;
     Endpoint.crash link.endpoint
   | _ -> ());
  alloc_seq link.wire

(* restart the crashed endpoint from its checkpoint + journal, then
   re-handshake. The [Resume] exchange itself may fail under continued
   loss; that is fine — the restart already reconstructed the peer, and
   the caller's retransmission (same sequence number) is safe either
   way, so the failure just burns one unit of resume budget. *)
let resume link ls =
  ls.resumes <- ls.resumes + 1;
  Metrics.incr link.lm.lm_resumes;
  Metrics.trace link.lm.lm_trace ~value:ls.last_acked "resume_handshake";
  (match Endpoint.restart link.endpoint with
   | Ok _ -> ()
   | Error reason -> raise (Exchange_failed ("resume failed: " ^ reason)));
  let seq = begin_exchange link in
  match
    wire_exchange link.wire ~seq ~peer:(link_peer link)
      ~on_crash:(link_on_crash link)
      (Protocol.Resume (ls.sid, ls.last_acked))
  with
  | Protocol.Session_state _last_applied -> ()
  | Protocol.Protocol_error reason ->
    raise (Exchange_failed ("resume rejected: " ^ reason))
  | _ -> raise (Exchange_failed "resume: unexpected reply")

(* The breaker's clock is the channel's simulated clock, which only
   advances through traffic and stalls — so an open breaker must not
   fast-fail (time would freeze and the probe would never come due).
   Instead the client stalls until the probe is scheduled, then proceeds
   as the probe. The stall is charged to the simulated clock like any
   other wait, so seeded replays are bit-identical. *)
let breaker_gate link =
  match link.lk_breaker with
  | None -> ()
  | Some b ->
    let now = Network.elapsed_seconds link.wire.channel in
    if not (Breaker.allow b ~now) then begin
      (match Breaker.retry_after_s b ~now with
       | Some wait when wait > 0.0 -> Network.stall link.wire.channel wait
       | _ -> ());
      ignore
        (Breaker.allow b ~now:(Network.elapsed_seconds link.wire.channel))
    end

let exchange link message =
  let name = Endpoint.name link.endpoint in
  breaker_gate link;
  let t0 = Network.elapsed_seconds link.wire.channel in
  Metrics.incr link.lm.lm_exchanges;
  let seq = begin_exchange link in
  Metrics.trace link.lm.lm_trace ~span:Metrics.Enter ~value:seq
    (message_label message);
  let send () =
    wire_exchange link.wire ~seq ~peer:(link_peer link)
      ~session_armed:(Option.is_some link.session)
      ~on_crash:(link_on_crash link) message
  in
  let run () =
    match link.session with
    | None ->
      (try send ()
       with Exchange_failed reason ->
         raise (Exchange_failed (Printf.sprintf "%s: %s" name reason)))
    | Some ls ->
      (* reconnect path: a dead peer or exhausted retries triggers a
         resume and the same request is retransmitted under the same
         sequence number, up to the session's resume budget *)
      let rec go budget =
        match send () with
        | reply -> reply
        | exception ((Peer_down | Exchange_failed _) as failure) ->
          if budget <= 0 then
            match failure with
            | Exchange_failed reason ->
              raise (Exchange_failed (Printf.sprintf "%s: %s" name reason))
            | _ ->
              raise
                (Exchange_failed
                   (Printf.sprintf
                      "%s: request seq %d: peer down, resume budget exhausted"
                      name seq))
          else begin
            (try resume link ls
             with Peer_down | Exchange_failed _ -> ());
            go (budget - 1)
          end
      in
      go ls.ls_policy.resume_attempts
  in
  (* every exchange is a breaker sample: exhausted recovery opens it,
     a completed exchange feeds the half-open success count *)
  let reply =
    match run () with
    | reply ->
      (match link.lk_breaker with
       | Some b ->
         Breaker.on_success b
           ~now:(Network.elapsed_seconds link.wire.channel)
       | None -> ());
      reply
    | exception (Exchange_failed _ as failure) ->
      (match link.lk_breaker with
       | Some b ->
         Breaker.on_failure b
           ~now:(Network.elapsed_seconds link.wire.channel)
       | None -> ());
      raise failure
  in
  (match link.session with
   | Some ls -> ls.last_acked <- seq
   | None -> ());
  let rtt = Network.elapsed_seconds link.wire.channel -. t0 in
  Metrics.observe link.lm.lm_rtt_us (int_of_float (rtt *. 1e6));
  Metrics.trace link.lm.lm_trace ~span:Metrics.Exit ~value:seq
    (message_label message);
  match reply with
  | Protocol.Protocol_error reason ->
    invalid_arg (Printf.sprintf "Cosim: %s: %s" name reason)
  | other -> other

(* client-driven maintenance: heartbeats and checkpoint requests ride
   between data exchanges at the session policy's cadence *)
let maintenance link =
  match link.session with
  | None -> ()
  | Some ls ->
    ls.since_checkpoint <- ls.since_checkpoint + 1;
    ls.since_heartbeat <- ls.since_heartbeat + 1;
    if ls.ls_policy.heartbeat_every > 0
       && ls.since_heartbeat >= ls.ls_policy.heartbeat_every
    then begin
      ls.since_heartbeat <- 0;
      match exchange link Protocol.Heartbeat with
      | Protocol.Ack -> ()
      | _ -> invalid_arg "Cosim: heartbeat: unexpected reply"
    end;
    if ls.ls_policy.checkpoint_every > 0
       && ls.since_checkpoint >= ls.ls_policy.checkpoint_every
    then begin
      ls.since_checkpoint <- 0;
      match exchange link Protocol.Checkpoint with
      | Protocol.Ack -> ()
      | _ -> invalid_arg "Cosim: checkpoint: unexpected reply"
    end

let data_exchange link message =
  let reply = exchange link message in
  maintenance link;
  reply

let attach t ?faults ?retry ?session ?breaker ?(metrics = Metrics.nil) ?tracer
    endpoint params =
  let name = Endpoint.name endpoint in
  if List.exists (fun l -> Endpoint.name l.endpoint = name) t.links then
    invalid_arg (Printf.sprintf "Cosim.attach: duplicate endpoint %s" name);
  let session =
    Option.map
      (fun ls_policy ->
         { ls_policy;
           sid = name ^ "/session";
           last_acked = -1;
           since_checkpoint = 0;
           since_heartbeat = 0;
           resumes = 0 })
      session
  in
  let wire = make_wire ?faults ?retry params in
  let metric m = name ^ "." ^ m in
  let lm =
    { lm_exchanges = Metrics.counter metrics (metric "exchanges_total");
      lm_rtt_us = Metrics.histogram metrics (metric "rtt_us");
      lm_resumes =
        Metrics.counter metrics (metric "resume_handshakes_total");
      lm_trace =
        (match tracer with
         | Some tr -> tr
         | None -> Metrics.tracer Metrics.nil) }
  in
  (* wire and channel tallies already exist as mutable state; sample
     them as probes instead of double-counting on the hot path *)
  Metrics.probe metrics (metric "messages_total") (fun () ->
      Network.messages wire.channel);
  Metrics.probe metrics (metric "bytes_total") (fun () ->
      Network.bytes_transferred wire.channel);
  Metrics.probe metrics (metric "retries_total") (fun () -> wire.retry_count);
  Metrics.probe metrics (metric "retransmitted_bytes_total") (fun () ->
      wire.retransmitted_bytes);
  Metrics.probe metrics (metric "faults_injected_total") (fun () ->
      Network.faults_injected wire.channel);
  List.iter
    (fun kind ->
       Metrics.probe metrics (metric ("faults_" ^ Fault.kind_name kind))
         (fun () -> List.assoc kind (Network.fault_counts wire.channel)))
    Fault.all_kinds;
  let link =
    { endpoint;
      wire;
      session;
      lk_breaker = breaker;
      lm;
      crash_at = None;
      exchanges = 0 }
  in
  t.links <- t.links @ [ link ];
  (* open the session: the endpoint checkpoints and starts journaling *)
  match link.session with
  | None -> ()
  | Some _ ->
    (match exchange link (Protocol.Hello name) with
     | Protocol.Ack -> ()
     | _ -> invalid_arg "Cosim.attach: unexpected Hello reply")

let find t box =
  match List.find_opt (fun l -> Endpoint.name l.endpoint = box) t.links with
  | Some link -> link
  | None -> invalid_arg (Printf.sprintf "Cosim: no black box named %s" box)

let crash_at t ~box ~exchange:n =
  if n < 1 then invalid_arg "Cosim.crash_at: exchange must be >= 1";
  (find t box).crash_at <- Some n

let set_inputs t ~box pairs =
  let link = find t box in
  match data_exchange link (Protocol.Set_inputs pairs) with
  | Protocol.Ack -> ()
  | _ -> invalid_arg "Cosim.set_inputs: unexpected reply"

let cycle t =
  List.iter
    (fun link ->
       Network.add_compute link.wire.channel
         (Endpoint.compute_seconds_per_cycle link.endpoint);
       match data_exchange link (Protocol.Cycle 1) with
       | Protocol.Ack -> ()
       | _ -> invalid_arg "Cosim.cycle: unexpected reply")
    t.links

let reset t =
  List.iter
    (fun link ->
       match data_exchange link Protocol.Reset with
       | Protocol.Ack -> ()
       | _ -> invalid_arg "Cosim.reset: unexpected reply")
    t.links

let get_output t ~box port =
  let link = find t box in
  match data_exchange link (Protocol.Get_outputs [ port ]) with
  | Protocol.Outputs_are [ (_, v) ] -> v
  | _ -> invalid_arg "Cosim.get_output: unexpected reply"

let elapsed_seconds t =
  List.fold_left (fun acc l -> acc +. Network.elapsed_seconds l.wire.channel) 0.0 t.links

let total_messages t =
  List.fold_left (fun acc l -> acc + Network.messages l.wire.channel) 0 t.links

let total_bytes t =
  List.fold_left (fun acc l -> acc + Network.bytes_transferred l.wire.channel) 0 t.links

let total_retries t =
  List.fold_left (fun acc l -> acc + l.wire.retry_count) 0 t.links

let total_retransmitted_bytes t =
  List.fold_left (fun acc l -> acc + l.wire.retransmitted_bytes) 0 t.links

let total_faults_injected t =
  List.fold_left (fun acc l -> acc + Network.faults_injected l.wire.channel) 0 t.links

let fault_counts t =
  List.map
    (fun kind ->
       ( kind,
         List.fold_left
           (fun acc l ->
              acc + List.assoc kind (Network.fault_counts l.wire.channel))
           0 t.links ))
    Fault.all_kinds

let total_session_crashes t =
  List.fold_left (fun acc l -> acc + Endpoint.crash_count l.endpoint) 0 t.links

let total_resumes t =
  List.fold_left
    (fun acc l ->
       acc + match l.session with Some ls -> ls.resumes | None -> 0)
    0 t.links

let total_checkpoints t =
  List.fold_left
    (fun acc l -> acc + Endpoint.checkpoints_taken l.endpoint)
    0 t.links

let total_replayed_messages t =
  List.fold_left
    (fun acc l -> acc + Endpoint.replayed_messages l.endpoint)
    0 t.links

type architecture =
  | Local_applet
  | Webcad
  | Javacad

let architecture_name = function
  | Local_applet -> "JHDL applet (local)"
  | Webcad -> "Web-CAD (remote server)"
  | Javacad -> "JavaCAD (RMI)"

(* RMI serialization: object headers, class descriptors, stubs. *)
let rmi_overhead_bytes = 420

type session_cost = {
  wall_seconds : float;
  network_seconds : float;
  compute_seconds : float;
  message_count : int;
  byte_count : int;
  retry_count : int;
  retransmitted_bytes : int;
  faults_injected : int;
}

let simulation_cost ~arch ~network ~endpoint ~cycles ~drive ~observe
    ?faults ?retry ?on_outputs () =
  let channel_params =
    match arch with
    | Local_applet -> Network.loopback
    | Webcad -> network
    | Javacad ->
      { network with
        Network.per_message_overhead_bytes =
          network.Network.per_message_overhead_bytes + rmi_overhead_bytes }
  in
  (* the local applet's loopback is a method call: nothing to inject *)
  let faults = match arch with Local_applet -> None | _ -> faults in
  let wire = make_wire ?faults ?retry channel_params in
  let compute = ref 0.0 in
  let exchange message =
    wire_exchange wire ~seq:(alloc_seq wire)
      ~peer:(fun packet ->
        if Endpoint.is_alive endpoint then
          Some (Endpoint.handle_packet endpoint packet)
        else None)
      ~on_crash:(fun () -> Endpoint.crash endpoint)
      message
  in
  for i = 0 to cycles - 1 do
    (match drive i with
     | [] -> ()
     | pairs ->
       (match exchange (Protocol.Set_inputs pairs) with
        | Protocol.Ack -> ()
        | _ -> invalid_arg "simulation_cost: set_inputs failed"));
    compute := !compute +. Endpoint.compute_seconds_per_cycle endpoint;
    (match exchange (Protocol.Cycle 1) with
     | Protocol.Ack -> ()
     | _ -> invalid_arg "simulation_cost: cycle failed");
    match observe with
    | [] -> ()
    | ports ->
      (match exchange (Protocol.Get_outputs ports) with
       | Protocol.Outputs_are pairs ->
         (match on_outputs with Some f -> f i pairs | None -> ())
       | _ -> invalid_arg "simulation_cost: get_outputs failed")
  done;
  let network_seconds = Network.elapsed_seconds wire.channel in
  { wall_seconds = network_seconds +. !compute;
    network_seconds;
    compute_seconds = !compute;
    message_count = Network.messages wire.channel;
    byte_count = Network.bytes_transferred wire.channel;
    retry_count = wire.retry_count;
    retransmitted_bytes = wire.retransmitted_bytes;
    faults_injected = Network.faults_injected wire.channel }
