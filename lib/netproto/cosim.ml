module Bits = Jhdl_logic.Bits
module Fault = Jhdl_faults.Fault

(* ------------------------------------------------------------------ *)
(* retry policy and the reliable-exchange engine                       *)
(* ------------------------------------------------------------------ *)

type retry_policy = {
  max_attempts : int;
  base_backoff_s : float;
  backoff_cap_s : float;
  exchange_timeout_s : float;
}

let default_retry =
  { max_attempts = 6;
    base_backoff_s = 0.05;
    backoff_cap_s = 2.0;
    exchange_timeout_s = 1.0 }

let no_retry = { default_retry with max_attempts = 1 }

exception Exchange_failed of string

(* A wire is a channel plus everything the reliable-exchange layer
   needs: the retry policy, the sender's sequence counter, and tallies
   of the recovery work actually performed. *)
type wire = {
  channel : Network.t;
  policy : retry_policy;
  mutable next_seq : int;
  mutable retry_count : int;
  mutable retransmitted_bytes : int;
}

let make_wire ?faults ?(retry = default_retry) params =
  { channel = Network.create ?faults params;
    policy = retry;
    next_seq = 0;
    retry_count = 0;
    retransmitted_bytes = 0 }

(* One request/reply exchange with recovery. Each attempt transmits the
   framed request; losses, detected corruptions and disconnects cost a
   timeout (charged to the simulated clock) and a capped exponential
   backoff before the retransmission. The peer dedupes by sequence
   number, so a retransmission after a lost *reply* replays the cached
   answer instead of re-executing — which is what keeps functional
   results byte-identical to a fault-free run. *)
let wire_exchange wire ~peer message =
  let seq = wire.next_seq in
  wire.next_seq <- (wire.next_seq + 1) land Protocol.max_seq;
  let request = Protocol.encode_packet ~seq message in
  let request_bytes = String.length request in
  let policy = wire.policy in
  let timeout () = Network.stall wire.channel policy.exchange_timeout_s in
  let rec attempt n =
    if n > policy.max_attempts then
      raise
        (Exchange_failed
           (Printf.sprintf "request seq %d lost after %d attempt(s)" seq
              policy.max_attempts));
    if n > 1 then begin
      let backoff =
        Float.min policy.backoff_cap_s
          (policy.base_backoff_s *. (2.0 ** float_of_int (n - 2)))
      in
      Network.stall wire.channel backoff;
      wire.retry_count <- wire.retry_count + 1;
      wire.retransmitted_bytes <- wire.retransmitted_bytes + request_bytes
    end;
    match Network.transmit wire.channel ~bytes:request_bytes with
    | Network.Dropped | Network.Disconnected ->
      timeout ();
      attempt (n + 1)
    | Network.Corrupted ->
      (* the damaged frame reaches the peer, whose CRC rejects it; the
         sender hears nothing and times out *)
      (match Protocol.decode_packet (Network.mangle wire.channel request) with
       | Ok packet -> deliver n packet
       | Error _ ->
         timeout ();
         attempt (n + 1))
    | Network.Delivered -> deliver n { Protocol.seq; payload = message }
  and deliver n packet =
    let reply_packet = peer packet in
    let reply_encoded =
      Protocol.encode_packet ~seq:reply_packet.Protocol.seq
        reply_packet.Protocol.payload
    in
    match Network.transmit wire.channel ~bytes:(String.length reply_encoded) with
    | Network.Delivered -> reply_packet.Protocol.payload
    | Network.Corrupted ->
      (match Protocol.decode_packet (Network.mangle wire.channel reply_encoded) with
       | Ok back -> back.Protocol.payload
       | Error _ ->
         timeout ();
         attempt (n + 1))
    | Network.Dropped | Network.Disconnected ->
      timeout ();
      attempt (n + 1)
  in
  attempt 1

(* ------------------------------------------------------------------ *)
(* co-simulation sessions                                              *)
(* ------------------------------------------------------------------ *)

type link = {
  endpoint : Endpoint.t;
  wire : wire;
}

type t = {
  mutable links : link list; (* attach order *)
}

let create () = { links = [] }

let attach t ?faults ?retry endpoint params =
  let name = Endpoint.name endpoint in
  if List.exists (fun l -> Endpoint.name l.endpoint = name) t.links then
    invalid_arg (Printf.sprintf "Cosim.attach: duplicate endpoint %s" name);
  t.links <- t.links @ [ { endpoint; wire = make_wire ?faults ?retry params } ]

let find t box =
  match List.find_opt (fun l -> Endpoint.name l.endpoint = box) t.links with
  | Some link -> link
  | None -> invalid_arg (Printf.sprintf "Cosim: no black box named %s" box)

let exchange link message =
  let name = Endpoint.name link.endpoint in
  let reply =
    try wire_exchange link.wire ~peer:(Endpoint.handle_packet link.endpoint) message
    with Exchange_failed reason ->
      raise (Exchange_failed (Printf.sprintf "%s: %s" name reason))
  in
  match reply with
  | Protocol.Protocol_error reason ->
    invalid_arg (Printf.sprintf "Cosim: %s: %s" name reason)
  | other -> other

let set_inputs t ~box pairs =
  let link = find t box in
  match exchange link (Protocol.Set_inputs pairs) with
  | Protocol.Ack -> ()
  | _ -> invalid_arg "Cosim.set_inputs: unexpected reply"

let cycle t =
  List.iter
    (fun link ->
       Network.add_compute link.wire.channel
         (Endpoint.compute_seconds_per_cycle link.endpoint);
       match exchange link (Protocol.Cycle 1) with
       | Protocol.Ack -> ()
       | _ -> invalid_arg "Cosim.cycle: unexpected reply")
    t.links

let reset t =
  List.iter
    (fun link ->
       match exchange link Protocol.Reset with
       | Protocol.Ack -> ()
       | _ -> invalid_arg "Cosim.reset: unexpected reply")
    t.links

let get_output t ~box port =
  let link = find t box in
  match exchange link (Protocol.Get_outputs [ port ]) with
  | Protocol.Outputs_are [ (_, v) ] -> v
  | _ -> invalid_arg "Cosim.get_output: unexpected reply"

let elapsed_seconds t =
  List.fold_left (fun acc l -> acc +. Network.elapsed_seconds l.wire.channel) 0.0 t.links

let total_messages t =
  List.fold_left (fun acc l -> acc + Network.messages l.wire.channel) 0 t.links

let total_bytes t =
  List.fold_left (fun acc l -> acc + Network.bytes_transferred l.wire.channel) 0 t.links

let total_retries t =
  List.fold_left (fun acc l -> acc + l.wire.retry_count) 0 t.links

let total_retransmitted_bytes t =
  List.fold_left (fun acc l -> acc + l.wire.retransmitted_bytes) 0 t.links

let total_faults_injected t =
  List.fold_left (fun acc l -> acc + Network.faults_injected l.wire.channel) 0 t.links

let fault_counts t =
  List.map
    (fun kind ->
       ( kind,
         List.fold_left
           (fun acc l ->
              acc + List.assoc kind (Network.fault_counts l.wire.channel))
           0 t.links ))
    Fault.all_kinds

type architecture =
  | Local_applet
  | Webcad
  | Javacad

let architecture_name = function
  | Local_applet -> "JHDL applet (local)"
  | Webcad -> "Web-CAD (remote server)"
  | Javacad -> "JavaCAD (RMI)"

(* RMI serialization: object headers, class descriptors, stubs. *)
let rmi_overhead_bytes = 420

type session_cost = {
  wall_seconds : float;
  network_seconds : float;
  compute_seconds : float;
  message_count : int;
  byte_count : int;
  retry_count : int;
  retransmitted_bytes : int;
  faults_injected : int;
}

let simulation_cost ~arch ~network ~endpoint ~cycles ~drive ~observe
    ?faults ?retry ?on_outputs () =
  let channel_params =
    match arch with
    | Local_applet -> Network.loopback
    | Webcad -> network
    | Javacad ->
      { network with
        Network.per_message_overhead_bytes =
          network.Network.per_message_overhead_bytes + rmi_overhead_bytes }
  in
  (* the local applet's loopback is a method call: nothing to inject *)
  let faults = match arch with Local_applet -> None | _ -> faults in
  let wire = make_wire ?faults ?retry channel_params in
  let compute = ref 0.0 in
  let exchange message =
    wire_exchange wire ~peer:(Endpoint.handle_packet endpoint) message
  in
  for i = 0 to cycles - 1 do
    (match drive i with
     | [] -> ()
     | pairs ->
       (match exchange (Protocol.Set_inputs pairs) with
        | Protocol.Ack -> ()
        | _ -> invalid_arg "simulation_cost: set_inputs failed"));
    compute := !compute +. Endpoint.compute_seconds_per_cycle endpoint;
    (match exchange (Protocol.Cycle 1) with
     | Protocol.Ack -> ()
     | _ -> invalid_arg "simulation_cost: cycle failed");
    match observe with
    | [] -> ()
    | ports ->
      (match exchange (Protocol.Get_outputs ports) with
       | Protocol.Outputs_are pairs ->
         (match on_outputs with Some f -> f i pairs | None -> ())
       | _ -> invalid_arg "simulation_cost: get_outputs failed")
  done;
  let network_seconds = Network.elapsed_seconds wire.channel in
  { wall_seconds = network_seconds +. !compute;
    network_seconds;
    compute_seconds = !compute;
    message_count = Network.messages wire.channel;
    byte_count = Network.bytes_transferred wire.channel;
    retry_count = wire.retry_count;
    retransmitted_bytes = wire.retransmitted_bytes;
    faults_injected = Network.faults_injected wire.channel }
