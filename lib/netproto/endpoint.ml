module Simulator = Jhdl_sim.Simulator
module Design = Jhdl_circuit.Design

(* Modeled cost of one evaluation pass in the client JVM. *)
let seconds_per_prim = 40.0e-9

type t = {
  endpoint_name : string;
  sim : Simulator.t;
  compute : float;
  (* at-most-once execution: a retransmitted request (same sequence
     number) must not clock the simulator again, so the last reply is
     kept and replayed *)
  mutable last_seq : int option;
  mutable last_reply : Protocol.message;
}

let of_simulator ~name sim =
  { endpoint_name = name;
    sim;
    compute = float_of_int (Simulator.prim_count sim) *. seconds_per_prim;
    last_seq = None;
    last_reply = Protocol.Ack }

let of_applet ~name applet =
  Option.map (of_simulator ~name) (Jhdl_applet.Applet.simulator applet)

let name t = t.endpoint_name
let compute_seconds_per_cycle t = t.compute

let handle t message =
  match message with
  | Protocol.Set_inputs pairs ->
    (* batch entry point: one combinational settle per message rather
       than one per port *)
    (match Simulator.set_inputs t.sim pairs with
     | () -> Protocol.Ack
     | exception Invalid_argument reason -> Protocol.Protocol_error reason)
  | Protocol.Cycle n ->
    Simulator.cycle ~n t.sim;
    Protocol.Ack
  | Protocol.Reset ->
    Simulator.reset t.sim;
    Protocol.Ack
  | Protocol.Get_outputs names ->
    (match
       List.map (fun port -> (port, Simulator.get_port t.sim port)) names
     with
     | pairs -> Protocol.Outputs_are pairs
     | exception Invalid_argument reason -> Protocol.Protocol_error reason)
  | Protocol.Outputs_are _ | Protocol.Ack ->
    Protocol.Protocol_error "unexpected reply message"
  | Protocol.Protocol_error _ as e -> e

let handle_packet t (packet : Protocol.packet) =
  match t.last_seq with
  | Some seq when seq = packet.Protocol.seq ->
    (* duplicate delivery or retransmission after a lost reply: replay
       the cached answer without touching the simulator *)
    { Protocol.seq; payload = t.last_reply }
  | Some _ | None ->
    let reply = handle t packet.Protocol.payload in
    t.last_seq <- Some packet.Protocol.seq;
    t.last_reply <- reply;
    { Protocol.seq = packet.Protocol.seq; payload = reply }
