module Simulator = Jhdl_sim.Simulator
module Snapshot = Jhdl_sim.Snapshot
module Design = Jhdl_circuit.Design
module Metrics = Jhdl_metrics.Metrics

(* Modeled cost of one evaluation pass in the client JVM. *)
let seconds_per_prim = 40.0e-9

let default_journal_cap = 64

(* Durable session state: what a crashed endpoint still has on disk.
   The checkpoint blob plus the write-ahead journal of every message
   applied since it together reconstruct the exact pre-crash simulator
   state — including the reply cache, since reads are journaled too. *)
type session = {
  session_id : string;
  mutable checkpoint : string;  (* snapshot blob *)
  mutable journal : (int * Protocol.message) list;  (* newest first *)
  mutable journal_len : int;
  mutable last_applied : int;  (* seq of the last journaled message, -1 none *)
  mutable checkpoints_taken : int;
  mutable replayed : int;  (* journal entries re-executed by restarts *)
}

type t = {
  endpoint_name : string;
  sim : Simulator.t;
  compute : float;
  journal_cap : int;
  (* at-most-once execution: a retransmitted request (same sequence
     number) must not clock the simulator again, so the last reply is
     kept and replayed *)
  mutable last_seq : int option;
  mutable last_reply : Protocol.message;
  mutable alive : bool;
  mutable session : session option;
  mutable crash_count : int;
  mutable heartbeats : int;
  (* durable-state size distributions; nil instruments unless a live
     registry was supplied at construction *)
  ep_checkpoint_bytes : Metrics.histogram;
  ep_journal_message_bytes : Metrics.histogram;
}

let of_simulator ?(journal_cap = default_journal_cap) ?(metrics = Metrics.nil)
    ~name sim =
  if journal_cap < 1 then
    invalid_arg "Endpoint.of_simulator: journal_cap must be positive";
  let metric m = name ^ "." ^ m in
  let t =
    { endpoint_name = name;
      sim;
      compute = float_of_int (Simulator.prim_count sim) *. seconds_per_prim;
      journal_cap;
      last_seq = None;
      last_reply = Protocol.Ack;
      alive = true;
      session = None;
      crash_count = 0;
      heartbeats = 0;
      ep_checkpoint_bytes = Metrics.histogram metrics (metric "checkpoint_bytes");
      ep_journal_message_bytes =
        Metrics.histogram metrics (metric "journal_message_bytes") }
  in
  Metrics.probe metrics (metric "crashes_total") (fun () -> t.crash_count);
  Metrics.probe metrics (metric "heartbeats_total") (fun () -> t.heartbeats);
  Metrics.probe metrics (metric "journal_entries") (fun () ->
      match t.session with None -> 0 | Some s -> s.journal_len);
  Metrics.probe metrics (metric "checkpoints_total") (fun () ->
      match t.session with None -> 0 | Some s -> s.checkpoints_taken);
  Metrics.probe metrics (metric "replayed_messages_total") (fun () ->
      match t.session with None -> 0 | Some s -> s.replayed);
  t

let of_applet ?journal_cap ?metrics ~name applet =
  Option.map
    (of_simulator ?journal_cap ?metrics ~name)
    (Jhdl_applet.Applet.simulator applet)

let name t = t.endpoint_name
let compute_seconds_per_cycle t = t.compute

let snapshot t =
  match Simulator.snapshot t.sim with
  | blob -> Ok blob
  | exception Snapshot.Error reason -> Error reason

let restore t blob =
  match Simulator.restore t.sim blob with
  | () -> Ok ()
  | exception Snapshot.Error reason -> Error reason

let take_checkpoint t session =
  match Simulator.snapshot t.sim with
  | blob ->
    Metrics.observe t.ep_checkpoint_bytes (String.length blob);
    session.checkpoint <- blob;
    session.journal <- [];
    session.journal_len <- 0;
    session.checkpoints_taken <- session.checkpoints_taken + 1;
    Protocol.Ack
  | exception Snapshot.Error reason -> Protocol.Protocol_error reason

let handle t message =
  match message with
  | Protocol.Set_inputs pairs ->
    (* batch entry point: one combinational settle per message rather
       than one per port *)
    (match Simulator.set_inputs t.sim pairs with
     | () -> Protocol.Ack
     | exception Invalid_argument reason -> Protocol.Protocol_error reason)
  | Protocol.Cycle n ->
    Simulator.cycle ~n t.sim;
    Protocol.Ack
  | Protocol.Reset ->
    Simulator.reset t.sim;
    Protocol.Ack
  | Protocol.Get_outputs names ->
    (match
       List.map (fun port -> (port, Simulator.get_port t.sim port)) names
     with
     | pairs -> Protocol.Outputs_are pairs
     | exception Invalid_argument reason -> Protocol.Protocol_error reason)
  | Protocol.Hello session_id ->
    let session =
      { session_id;
        checkpoint = "";
        journal = [];
        journal_len = 0;
        last_applied = -1;
        checkpoints_taken = 0;
        replayed = 0 }
    in
    (match take_checkpoint t session with
     | Protocol.Ack ->
       t.session <- Some session;
       Protocol.Ack
     | refusal -> refusal)
  | Protocol.Resume (session_id, _client_acked) ->
    (match t.session with
     | Some s when String.equal s.session_id session_id ->
       Protocol.Session_state s.last_applied
     | Some s ->
       Protocol.Protocol_error
         (Printf.sprintf "unknown session %s (serving %s)" session_id
            s.session_id)
     | None -> Protocol.Protocol_error ("no session to resume: " ^ session_id))
  | Protocol.Heartbeat ->
    t.heartbeats <- t.heartbeats + 1;
    Protocol.Ack
  | Protocol.Checkpoint ->
    (match t.session with
     | None -> Protocol.Protocol_error "checkpoint without a session"
     | Some s -> take_checkpoint t s)
  | Protocol.Outputs_are _ | Protocol.Ack | Protocol.Session_state _ ->
    Protocol.Protocol_error "unexpected reply message"
  | Protocol.Protocol_error _ as e -> e

(* Session-control messages are idempotent and deliberately bypass the
   single-entry dedup cache: a [Resume] exchange must not evict the
   cached reply of the data request the client is about to retransmit. *)
let is_session_control = function
  | Protocol.Hello _ | Protocol.Resume _ | Protocol.Heartbeat
  | Protocol.Checkpoint -> true
  | Protocol.Set_inputs _ | Protocol.Cycle _ | Protocol.Reset
  | Protocol.Get_outputs _ | Protocol.Outputs_are _ | Protocol.Ack
  | Protocol.Protocol_error _ | Protocol.Session_state _ -> false

(* Half-window comparison with wraparound: [seq] is stale when it lies
   (mod 2^16) strictly behind [last] by less than half the space. *)
let is_stale ~last seq =
  let d = (last - seq) land Protocol.max_seq in
  d > 0 && d < (Protocol.max_seq + 1) / 2

let journal_applied t seq payload =
  match t.session with
  | None -> ()
  | Some s ->
    Metrics.observe t.ep_journal_message_bytes (Protocol.size payload);
    s.journal <- (seq, payload) :: s.journal;
    s.journal_len <- s.journal_len + 1;
    s.last_applied <- seq;
    (* bounded write-ahead journal: overflow forces a checkpoint, which
       truncates it (the session exists, so the design snapshots) *)
    if s.journal_len > t.journal_cap then
      ignore (take_checkpoint t s : Protocol.message)

let handle_packet t (packet : Protocol.packet) =
  if not t.alive then
    invalid_arg
      (Printf.sprintf "Endpoint.handle_packet: %s has crashed" t.endpoint_name);
  let seq = packet.Protocol.seq in
  let payload = packet.Protocol.payload in
  match t.last_seq with
  | Some last when last = seq ->
    (* duplicate delivery or retransmission after a lost reply: replay
       the cached answer without touching the simulator *)
    { Protocol.seq; payload = t.last_reply }
  | Some last when is_stale ~last seq && not (is_session_control payload) ->
    (* a late duplicate from before the current exchange (e.g. across a
       Reset boundary) must never re-execute — refuse it instead *)
    { Protocol.seq;
      payload =
        Protocol.Protocol_error
          (Printf.sprintf "stale sequence %d (last applied %d)" seq last) }
  | Some _ | None ->
    let reply = handle t payload in
    if not (is_session_control payload) then begin
      journal_applied t seq payload;
      t.last_seq <- Some seq;
      t.last_reply <- reply
    end;
    { Protocol.seq; payload = reply }

(* ------------------------------------------------------------------ *)
(* Crash / restart.                                                    *)

let is_alive t = t.alive

let crash t =
  if t.alive then begin
    t.alive <- false;
    t.crash_count <- t.crash_count + 1
  end

let restart t =
  if t.alive then Ok 0
  else
    match t.session with
    | None -> Error "no session: endpoint state was lost with the crash"
    | Some s ->
      (match Simulator.restore t.sim s.checkpoint with
       | exception Snapshot.Error reason -> Error reason
       | () ->
         (* the volatile dedup cache died with the process; replaying the
            journal re-executes every applied message in order, leaving
            both the simulator and the cache exactly as before the crash *)
         t.last_seq <- None;
         t.last_reply <- Protocol.Ack;
         let entries = List.rev s.journal in
         List.iter
           (fun (seq, msg) ->
              let reply = handle t msg in
              t.last_seq <- Some seq;
              t.last_reply <- reply)
           entries;
         let n = List.length entries in
         s.replayed <- s.replayed + n;
         t.alive <- true;
         Ok n)

(* ------------------------------------------------------------------ *)
(* Introspection.                                                      *)

let session_id t = Option.map (fun s -> s.session_id) t.session
let journal_length t = match t.session with None -> 0 | Some s -> s.journal_len

let checkpoints_taken t =
  match t.session with None -> 0 | Some s -> s.checkpoints_taken

let replayed_messages t =
  match t.session with None -> 0 | Some s -> s.replayed

let crash_count t = t.crash_count
let heartbeats_received t = t.heartbeats
