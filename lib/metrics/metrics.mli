(** Dependency-free observability: counters, gauges, fixed-bucket
    histograms and a bounded ring-buffer event tracer, grouped into
    per-component registries.

    Update paths ([incr], [add], [set], [observe], [trace]) never
    allocate, so instrumented hot loops — including the simulation
    kernel's pinned zero-allocation steady-state cycle — stay
    allocation-free.  Instruments minted from the {!nil} registry are
    live records that nothing retains or renders, so call sites update
    them unconditionally and disabled overhead is a field write.

    Renderers follow the same conventions as [Lint]: aligned text and
    stable-field-order JSON with one metric per line.  Snapshots sort
    by name and quantiles come from fixed bucket bounds, so seeded
    deterministic runs produce byte-identical dumps. *)

type t
(** A named registry of instruments for one component. *)

type counter
(** Monotonic event count. *)

type gauge
(** Last-written level. *)

type histogram
(** Fixed-bucket value distribution with exact count/sum/max. *)

type tracer
(** Bounded ring buffer of recent events. *)

val create : string -> t
(** [create component] is a fresh live registry. *)

val nil : t
(** The no-op registry: instruments minted from it work but are never
    registered, rendered or retained. *)

val is_nil : t -> bool
val name : t -> string

val counter : t -> string -> counter
(** [counter t name] mints and registers a counter starting at 0.
    @raise Invalid_argument on a duplicate name in a live registry. *)

val gauge : t -> string -> gauge

val default_bounds : int array
(** 1-2-5 decades from 1 to 1_000_000 — suits microsecond latencies
    and byte sizes. *)

val histogram : ?bounds:int array -> t -> string -> histogram
(** [histogram t name] registers a histogram over [bounds] (ascending
    inclusive upper bounds; values above the last bound land in an
    overflow bucket whose quantile reports the observed max). *)

val probe : t -> string -> (unit -> int) -> unit
(** [probe t name read] registers a pull-based counter sampled at
    snapshot time — zero hot-path cost for state a component already
    tracks in its own mutable fields. *)

val incr : counter -> unit
val add : counter -> int -> unit
val count : counter -> int

val set : gauge -> int -> unit
val value : gauge -> int

val observe : histogram -> int -> unit

type summary = {
  count : int;
  sum : int;
  max : int; (** 0 when empty *)
  p50 : int; (** bucket upper bound reaching the quantile *)
  p95 : int;
}

val summary : histogram -> summary

(** {1 Tracing} *)

type span =
  | Point (** instantaneous event *)
  | Enter (** start of a typed span *)
  | Exit (** end of a typed span *)

type event = {
  ev_seq : int; (** 0-based position in the whole event stream *)
  ev_label : string;
  ev_span : span;
  ev_value : int;
}

val default_trace_capacity : int

val tracer : ?capacity:int -> t -> tracer
(** [tracer t] is a ring buffer holding the last [capacity] events
    (default {!default_trace_capacity}).  A tracer minted from {!nil}
    has capacity 0 and drops everything. *)

val trace : tracer -> ?span:span -> ?value:int -> string -> unit
(** Record an event; allocation-free (the label pointer is stored, so
    pass literals on hot paths).  Overwrites the oldest event when
    full. *)

val trace_total : tracer -> int
(** Events ever recorded, including overwritten ones. *)

val events : tracer -> event list
(** Retained events, oldest first. *)

val trace_to_text : ?last:int -> tracer -> string

(** {1 Snapshots and rendering} *)

type sample =
  | Counter_sample of int
  | Gauge_sample of int
  | Histogram_sample of summary

val snapshot : t -> (string * sample) list
(** Current values, sorted by metric name.  Probes are read here. *)

val to_text : t -> string
(** Aligned text: a [\[component\] n metric(s)] header then one
    [kind name value] line per metric. *)

val to_json : t -> string
(** Stable field order, one metric object per line. *)

val all_to_text : t list -> string
(** Concatenated {!to_text} of the live registries (nil skipped). *)

val all_to_json : t list -> string
