(* Dependency-free observability: counters, gauges, fixed-bucket
   histograms and a bounded ring-buffer event tracer, grouped into
   per-component registries.

   Design constraints, in order:

   1. Update paths never allocate.  [incr]/[add]/[set]/[observe] touch
      only mutable int fields and int-array slots; [trace] stores the
      caller's label pointer into a preallocated slot.  This is what
      lets the simulation kernel keep its pinned zero-allocation
      steady-state cycle with metrics attached.
   2. Disabled means free.  Instruments minted from the [nil] registry
      are real records, so call sites update them unconditionally (no
      branch, no option), but nothing retains or renders them.  A nil
      tracer has capacity zero and drops events on a single compare.
   3. Deterministic output.  Snapshots sort by metric name; quantiles
      come from fixed bucket bounds, not sampling; callers feed
      histograms from simulated clocks, so two seeded runs render
      byte-identical text/JSON. *)

type counter = { mutable c_count : int }

type gauge = { mutable g_value : int }

type histogram = {
  h_bounds : int array; (* ascending inclusive upper bounds *)
  h_buckets : int array; (* length = Array.length h_bounds + 1 (overflow) *)
  mutable h_count : int;
  mutable h_sum : int;
  mutable h_max : int;
}

type summary = {
  count : int;
  sum : int;
  max : int;
  p50 : int;
  p95 : int;
}

type instrument =
  | Counter of counter
  | Gauge of gauge
  | Histogram of histogram
  | Probe of (unit -> int)

type span =
  | Point
  | Enter
  | Exit

type event = {
  ev_seq : int; (* 0-based position in the whole event stream *)
  ev_label : string;
  ev_span : span;
  ev_value : int;
}

type tracer = {
  tr_cap : int;
  tr_labels : string array;
  tr_spans : span array;
  tr_values : int array;
  mutable tr_total : int; (* events ever recorded, incl. overwritten *)
}

type t = {
  reg_name : string;
  mutable reg_items : (string * instrument) list; (* newest first *)
  reg_nil : bool;
}

let create name = { reg_name = name; reg_items = []; reg_nil = false }
let nil = { reg_name = ""; reg_items = []; reg_nil = true }
let is_nil t = t.reg_nil
let name t = t.reg_name

let register t metric_name instrument =
  if not t.reg_nil then begin
    if List.mem_assoc metric_name t.reg_items then
      invalid_arg
        (Printf.sprintf "Metrics: duplicate metric %s.%s" t.reg_name
           metric_name);
    t.reg_items <- (metric_name, instrument) :: t.reg_items
  end

let counter t metric_name =
  let c = { c_count = 0 } in
  register t metric_name (Counter c);
  c

let gauge t metric_name =
  let g = { g_value = 0 } in
  register t metric_name (Gauge g);
  g

(* 1-2-5 decades: wide enough for microsecond latencies and blob byte
   sizes alike, coarse enough that bucket scans stay cheap *)
let default_bounds =
  [| 1; 2; 5; 10; 20; 50; 100; 200; 500; 1_000; 2_000; 5_000; 10_000;
     20_000; 50_000; 100_000; 200_000; 500_000; 1_000_000 |]

let histogram ?(bounds = default_bounds) t metric_name =
  let n = Array.length bounds in
  for i = 1 to n - 1 do
    if bounds.(i) <= bounds.(i - 1) then
      invalid_arg "Metrics.histogram: bounds must be strictly ascending"
  done;
  let h =
    { h_bounds = Array.copy bounds;
      h_buckets = Array.make (n + 1) 0;
      h_count = 0;
      h_sum = 0;
      h_max = min_int }
  in
  register t metric_name (Histogram h);
  h

let probe t metric_name read = register t metric_name (Probe read)

let incr c = c.c_count <- c.c_count + 1
let add c n = c.c_count <- c.c_count + n
let count c = c.c_count

let set g v = g.g_value <- v
let value g = g.g_value

(* tail recursion over int args: a [ref] loop index would be a minor
   allocation per call without flambda, and observe sits on hot paths *)
let rec bucket_index bounds n v i =
  if i < n && v > Array.unsafe_get bounds i then bucket_index bounds n v (i + 1)
  else i

let observe h v =
  let bounds = h.h_bounds in
  let i = bucket_index bounds (Array.length bounds) v 0 in
  h.h_buckets.(i) <- h.h_buckets.(i) + 1;
  h.h_count <- h.h_count + 1;
  h.h_sum <- h.h_sum + v;
  if v > h.h_max then h.h_max <- v

(* quantile: upper bound of the first bucket whose cumulative count
   reaches [q]; the overflow bucket reports the observed max *)
let quantile h q =
  if h.h_count = 0 then 0
  else begin
    let want =
      let scaled = float_of_int h.h_count *. q in
      let r = int_of_float (ceil scaled) in
      if r < 1 then 1 else r
    in
    let n = Array.length h.h_bounds in
    let acc = ref 0 and result = ref h.h_max in
    (try
       for i = 0 to n do
         acc := !acc + h.h_buckets.(i);
         if !acc >= want then begin
           result := (if i < n then h.h_bounds.(i) else h.h_max);
           raise Exit
         end
       done
     with Exit -> ());
    !result
  end

let summary h =
  { count = h.h_count;
    sum = h.h_sum;
    max = (if h.h_count = 0 then 0 else h.h_max);
    p50 = quantile h 0.5;
    p95 = quantile h 0.95 }

(* ------------------------------------------------------------------ *)
(* Tracer.                                                             *)

let default_trace_capacity = 256

let tracer ?(capacity = default_trace_capacity) t =
  if capacity < 0 then invalid_arg "Metrics.tracer: capacity must be >= 0";
  let cap = if t.reg_nil then 0 else capacity in
  { tr_cap = cap;
    tr_labels = Array.make cap "";
    tr_spans = Array.make cap Point;
    tr_values = Array.make cap 0;
    tr_total = 0 }

let trace tr ?(span = Point) ?(value = 0) label =
  if tr.tr_cap > 0 then begin
    let slot = tr.tr_total mod tr.tr_cap in
    Array.unsafe_set tr.tr_labels slot label;
    Array.unsafe_set tr.tr_spans slot span;
    Array.unsafe_set tr.tr_values slot value;
    tr.tr_total <- tr.tr_total + 1
  end

let trace_total tr = tr.tr_total

let events tr =
  if tr.tr_cap = 0 then []
  else begin
    let kept = min tr.tr_total tr.tr_cap in
    let first = tr.tr_total - kept in
    List.init kept (fun i ->
        let seq = first + i in
        let slot = seq mod tr.tr_cap in
        { ev_seq = seq;
          ev_label = tr.tr_labels.(slot);
          ev_span = tr.tr_spans.(slot);
          ev_value = tr.tr_values.(slot) })
  end

let span_to_string = function
  | Point -> "point"
  | Enter -> "enter"
  | Exit -> "exit"

let trace_to_text ?last tr =
  let all = events tr in
  let shown =
    match last with
    | None -> all
    | Some n ->
      let extra = List.length all - n in
      if extra <= 0 then all
      else List.filteri (fun i _ -> i >= extra) all
  in
  let buffer = Buffer.create 256 in
  Buffer.add_string buffer
    (Printf.sprintf "trace: %d event(s) recorded, showing last %d\n"
       tr.tr_total (List.length shown));
  List.iter
    (fun ev ->
       Buffer.add_string buffer
         (Printf.sprintf "  [%6d] %-5s %-28s %d\n" ev.ev_seq
            (span_to_string ev.ev_span)
            ev.ev_label ev.ev_value))
    shown;
  Buffer.contents buffer

(* ------------------------------------------------------------------ *)
(* Snapshots and renderers (conventions shared with Lint).             *)

type sample =
  | Counter_sample of int
  | Gauge_sample of int
  | Histogram_sample of summary

let snapshot t =
  t.reg_items
  |> List.rev_map (fun (metric_name, instrument) ->
      let sample =
        match instrument with
        | Counter c -> Counter_sample c.c_count
        | Gauge g -> Gauge_sample g.g_value
        | Probe read -> Counter_sample (read ())
        | Histogram h -> Histogram_sample (summary h)
      in
      (metric_name, sample))
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let to_text t =
  let items = snapshot t in
  let buffer = Buffer.create 512 in
  Buffer.add_string buffer
    (Printf.sprintf "[%s] %d metric(s)\n" t.reg_name (List.length items));
  List.iter
    (fun (metric_name, sample) ->
       let kind, rendered =
         match sample with
         | Counter_sample v -> ("counter", string_of_int v)
         | Gauge_sample v -> ("gauge", string_of_int v)
         | Histogram_sample s ->
           ( "histogram",
             Printf.sprintf "count=%d sum=%d p50=%d p95=%d max=%d" s.count
               s.sum s.p50 s.p95 s.max )
       in
       Buffer.add_string buffer
         (Printf.sprintf "  %-9s %-32s %s\n" kind metric_name rendered))
    items;
  Buffer.contents buffer

(* minimal JSON string escaping; metric names here are ASCII *)
let json_escape s =
  let buffer = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
       match c with
       | '"' -> Buffer.add_string buffer "\\\""
       | '\\' -> Buffer.add_string buffer "\\\\"
       | '\n' -> Buffer.add_string buffer "\\n"
       | '\t' -> Buffer.add_string buffer "\\t"
       | c when Char.code c < 32 ->
         Buffer.add_string buffer (Printf.sprintf "\\u%04x" (Char.code c))
       | c -> Buffer.add_char buffer c)
    s;
  Buffer.contents buffer

let json_string s = Printf.sprintf "\"%s\"" (json_escape s)

(* stable shape: fixed field names and order, one metric per line *)
let to_json t =
  let items = snapshot t in
  let buffer = Buffer.create 1024 in
  Buffer.add_string buffer "{\n";
  Buffer.add_string buffer
    (Printf.sprintf "  \"component\": %s,\n" (json_string t.reg_name));
  Buffer.add_string buffer "  \"metrics\": [";
  List.iteri
    (fun i (metric_name, sample) ->
       if i > 0 then Buffer.add_char buffer ',';
       Buffer.add_string buffer "\n    ";
       let rendered =
         match sample with
         | Counter_sample v ->
           Printf.sprintf "{\"name\": %s, \"type\": \"counter\", \"value\": %d}"
             (json_string metric_name) v
         | Gauge_sample v ->
           Printf.sprintf "{\"name\": %s, \"type\": \"gauge\", \"value\": %d}"
             (json_string metric_name) v
         | Histogram_sample s ->
           Printf.sprintf
             "{\"name\": %s, \"type\": \"histogram\", \"count\": %d, \
              \"sum\": %d, \"p50\": %d, \"p95\": %d, \"max\": %d}"
             (json_string metric_name) s.count s.sum s.p50 s.p95 s.max
       in
       Buffer.add_string buffer rendered)
    items;
  if items <> [] then Buffer.add_string buffer "\n  ";
  Buffer.add_string buffer "]\n}\n";
  Buffer.contents buffer

let all_to_text registries =
  String.concat "" (List.map to_text (List.filter (fun t -> not t.reg_nil) registries))

let all_to_json registries =
  String.concat ""
    (List.map to_json (List.filter (fun t -> not t.reg_nil) registries))
