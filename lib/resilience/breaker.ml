module Prng = Jhdl_faults.Prng
module Metrics = Jhdl_metrics.Metrics

type state =
  | Closed
  | Open
  | Half_open

let state_name = function
  | Closed -> "closed"
  | Open -> "open"
  | Half_open -> "half-open"

type config = {
  failure_threshold : int;
  open_for_s : float;
  probe_jitter : float;
  half_open_successes : int;
}

let default_config =
  { failure_threshold = 3;
    open_for_s = 2.0;
    probe_jitter = 0.25;
    half_open_successes = 2 }

type bm = {
  bm_opened : Metrics.counter;
  bm_transitions : Metrics.counter;
  bm_probes : Metrics.counter;
}

type t = {
  breaker_name : string;
  cfg : config;
  rng : Prng.t;
  mutable st : state;
  mutable consecutive_failures : int;
  mutable probe_successes : int;
  mutable probe_at : float; (* next probe time while open *)
  mutable opened_count : int;
  mutable transition_log : (float * state) list; (* newest first *)
  bm : bm;
}

let create ?(config = default_config) ?(metrics = Metrics.nil) ~name ~seed () =
  if config.failure_threshold < 1 then
    invalid_arg "Breaker.create: failure_threshold must be positive";
  if config.half_open_successes < 1 then
    invalid_arg "Breaker.create: half_open_successes must be positive";
  if config.open_for_s <= 0.0 then
    invalid_arg "Breaker.create: open_for_s must be positive";
  if config.probe_jitter < 0.0 || config.probe_jitter >= 1.0 then
    invalid_arg "Breaker.create: probe_jitter must be in [0, 1)";
  let bm =
    { bm_opened = Metrics.counter metrics (name ^ ".breaker_opened_total");
      bm_transitions =
        Metrics.counter metrics (name ^ ".breaker_transitions_total");
      bm_probes = Metrics.counter metrics (name ^ ".breaker_probes_total") }
  in
  let t =
    { breaker_name = name;
      cfg = config;
      rng = Prng.create seed;
      st = Closed;
      consecutive_failures = 0;
      probe_successes = 0;
      probe_at = 0.0;
      opened_count = 0;
      transition_log = [];
      bm }
  in
  Metrics.probe metrics (name ^ ".breaker_state") (fun () ->
      match t.st with Closed -> 0 | Half_open -> 1 | Open -> 2);
  t

let name t = t.breaker_name
let config t = t.cfg
let state t = t.st

let transition t ~now st =
  if t.st <> st then begin
    t.st <- st;
    t.transition_log <- (now, st) :: t.transition_log;
    Metrics.incr t.bm.bm_transitions
  end

(* probe delay: open_for_s * (1 ± probe_jitter), drawn from the seeded
   stream so replays schedule identical probes *)
let schedule_probe t ~now =
  let jitter =
    t.cfg.probe_jitter *. ((2.0 *. Prng.float t.rng) -. 1.0)
  in
  t.probe_at <- now +. (t.cfg.open_for_s *. (1.0 +. jitter))

let trip t ~now =
  t.opened_count <- t.opened_count + 1;
  Metrics.incr t.bm.bm_opened;
  t.probe_successes <- 0;
  schedule_probe t ~now;
  transition t ~now Open

let allow t ~now =
  match t.st with
  | Closed | Half_open -> true
  | Open ->
    if now >= t.probe_at then begin
      transition t ~now Half_open;
      Metrics.incr t.bm.bm_probes;
      true
    end
    else false

let retry_after_s t ~now =
  match t.st with
  | Closed | Half_open -> None
  | Open -> Some (Float.max 0.0 (t.probe_at -. now))

let on_success t ~now =
  match t.st with
  | Closed -> t.consecutive_failures <- 0
  | Open ->
    (* a success while open means the caller bypassed [allow]; treat it
       as a probe result *)
    transition t ~now Half_open;
    t.probe_successes <- 1;
    if t.probe_successes >= t.cfg.half_open_successes then begin
      t.consecutive_failures <- 0;
      transition t ~now Closed
    end
  | Half_open ->
    t.probe_successes <- t.probe_successes + 1;
    if t.probe_successes >= t.cfg.half_open_successes then begin
      t.consecutive_failures <- 0;
      transition t ~now Closed
    end

let on_failure t ~now =
  match t.st with
  | Closed ->
    t.consecutive_failures <- t.consecutive_failures + 1;
    if t.consecutive_failures >= t.cfg.failure_threshold then trip t ~now
  | Half_open -> trip t ~now
  | Open -> schedule_probe t ~now

let transitions t = List.length t.transition_log
let times_opened t = t.opened_count
let history t = List.rev t.transition_log
