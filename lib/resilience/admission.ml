module License = Jhdl_applet.License
module Metrics = Jhdl_metrics.Metrics

type request_class =
  | Browse
  | Jar_download
  | Elaborate
  | Cosim_exchange

let all_classes = [ Browse; Jar_download; Elaborate; Cosim_exchange ]

let class_name = function
  | Browse -> "browse"
  | Jar_download -> "download"
  | Elaborate -> "elaborate"
  | Cosim_exchange -> "cosim"

type brownout_level =
  | Full_service
  | Serve_stale
  | Catalog_only
  | Reject_all

let brownout_name = function
  | Full_service -> "full-service"
  | Serve_stale -> "serve-stale"
  | Catalog_only -> "catalog-only"
  | Reject_all -> "reject-all"

type shed_reason =
  | Queue_full
  | Deadline_expired
  | Brownout_rejected
  | Tier_shed
  | Breaker_open

let all_reasons =
  [ Queue_full; Deadline_expired; Brownout_rejected; Tier_shed; Breaker_open ]

let shed_reason_name = function
  | Queue_full -> "queue-full"
  | Deadline_expired -> "deadline-expired"
  | Brownout_rejected -> "brownout-rejected"
  | Tier_shed -> "tier-shed"
  | Breaker_open -> "breaker-open"

type class_config = {
  queue_cap : int;
  deadline_budget_s : float;
}

type config = {
  browse : class_config;
  download : class_config;
  elaborate : class_config;
  cosim : class_config;
  max_inflight : int;
  serve_stale_at : float;
  catalog_only_at : float;
  reject_at : float;
  retry_after_s : float;
}

let default_config =
  { browse = { queue_cap = 64; deadline_budget_s = 5.0 };
    download = { queue_cap = 32; deadline_budget_s = 30.0 };
    elaborate = { queue_cap = 8; deadline_budget_s = 60.0 };
    cosim = { queue_cap = 32; deadline_budget_s = 10.0 };
    max_inflight = 16;
    serve_stale_at = 0.5;
    catalog_only_at = 0.75;
    reject_at = 0.9;
    retry_after_s = 1.0 }

let class_config config = function
  | Browse -> config.browse
  | Jar_download -> config.download
  | Elaborate -> config.elaborate
  | Cosim_exchange -> config.cosim

type ticket = {
  id : int;
  cls : request_class;
  tier : License.tier;
  user : string;
  submitted_at : float;
  deadline : float;
}

type shed = {
  shed_ticket : ticket;
  shed_reason : shed_reason;
  retry_after_s : float option;
}

(* Passive customers brown out first, the vendor last. *)
let tier_rank = function
  | License.Passive -> 0
  | License.Evaluator -> 1
  | License.Licensed -> 2
  | License.Vendor -> 3

type am = {
  am_admitted : Metrics.counter;
  am_shed : Metrics.counter;
  am_shed_reason : (shed_reason * Metrics.counter) list;
  am_queue_wait_ms : Metrics.histogram;
}

type t = {
  cfg : config;
  (* one FIFO per class, head = oldest *)
  mutable queues : (request_class * ticket list) list;
  mutable next_id : int;
  mutable submitted : int;
  mutable admitted : int;
  mutable started : int;
  mutable completed : int;
  mutable inflight : ticket list;
  mutable sheds : shed list; (* newest first *)
  am : am;
}

let create ?(config = default_config) ?(metrics = Metrics.nil) () =
  List.iter
    (fun cls ->
       if (class_config config cls).queue_cap < 1 then
         invalid_arg
           (Printf.sprintf "Admission.create: %s queue_cap must be positive"
              (class_name cls)))
    all_classes;
  if config.max_inflight < 1 then
    invalid_arg "Admission.create: max_inflight must be positive";
  if
    not
      (config.serve_stale_at <= config.catalog_only_at
      && config.catalog_only_at <= config.reject_at)
  then
    invalid_arg "Admission.create: brownout ladder thresholds must be ordered";
  let am =
    { am_admitted = Metrics.counter metrics "admitted_total";
      am_shed = Metrics.counter metrics "shed_total";
      am_shed_reason =
        List.map
          (fun r ->
             ( r,
               Metrics.counter metrics
                 ("shed_" ^ shed_reason_name r ^ "_total") ))
          all_reasons;
      am_queue_wait_ms = Metrics.histogram metrics "queue_wait_ms" }
  in
  let t =
    { cfg = config;
      queues = List.map (fun c -> (c, [])) all_classes;
      next_id = 0;
      submitted = 0;
      admitted = 0;
      started = 0;
      completed = 0;
      inflight = [];
      sheds = [];
      am }
  in
  List.iter
    (fun cls ->
       Metrics.probe metrics ("queue_depth_" ^ class_name cls) (fun () ->
           List.length (List.assoc cls t.queues)))
    all_classes;
  Metrics.probe metrics "inflight" (fun () -> List.length t.inflight);
  Metrics.probe metrics "brownout_level" (fun () ->
      let occupied =
        List.fold_left (fun acc (_, q) -> acc + List.length q) 0 t.queues
      in
      let cap =
        List.fold_left
          (fun acc c -> acc + (class_config t.cfg c).queue_cap)
          0 all_classes
      in
      let f = float_of_int occupied /. float_of_int cap in
      if f >= t.cfg.reject_at then 3
      else if f >= t.cfg.catalog_only_at then 2
      else if f >= t.cfg.serve_stale_at then 1
      else 0);
  t

let config t = t.cfg
let queue t cls = List.assoc cls t.queues

let set_queue t cls q =
  t.queues <- List.map (fun (c, old) -> (c, if c = cls then q else old)) t.queues

let queue_depth t cls = List.length (queue t cls)

let occupancy t =
  let occupied =
    List.fold_left (fun acc (_, q) -> acc + List.length q) 0 t.queues
  in
  let cap =
    List.fold_left
      (fun acc c -> acc + (class_config t.cfg c).queue_cap)
      0 all_classes
  in
  float_of_int occupied /. float_of_int cap

let brownout t =
  let f = occupancy t in
  if f >= t.cfg.reject_at then Reject_all
  else if f >= t.cfg.catalog_only_at then Catalog_only
  else if f >= t.cfg.serve_stale_at then Serve_stale
  else Full_service

let record_shed t ticket reason retry_after_s =
  let shed = { shed_ticket = ticket; shed_reason = reason; retry_after_s } in
  t.sheds <- shed :: t.sheds;
  Metrics.incr t.am.am_shed;
  Metrics.incr (List.assoc reason t.am.am_shed_reason);
  shed

let mint t ~now ~cls ~tier ~user ?deadline_s () =
  let deadline =
    match deadline_s with
    | Some s -> now +. s
    | None ->
      let budget = (class_config t.cfg cls).deadline_budget_s in
      if budget <= 0.0 then infinity else now +. budget
  in
  let ticket =
    { id = t.next_id; cls; tier; user; submitted_at = now; deadline }
  in
  t.next_id <- t.next_id + 1;
  t.submitted <- t.submitted + 1;
  ticket

(* the gate every submission passes: ladder first, then the explicit
   deadline, then queue capacity with tier preemption *)
let gate t ~now ticket =
  let retry = Some t.cfg.retry_after_s in
  let level = brownout t in
  let browned_out =
    match (level, ticket.cls) with
    | Reject_all, _ -> true
    | Catalog_only, (Jar_download | Elaborate | Cosim_exchange) -> true
    | Catalog_only, Browse -> false
    | (Full_service | Serve_stale), _ -> false
  in
  if browned_out then Error (record_shed t ticket Brownout_rejected retry)
  else if ticket.deadline <= now then
    Error (record_shed t ticket Deadline_expired None)
  else Ok ()

let enqueue t ~now ticket =
  match gate t ~now ticket with
  | Error _ as e -> e
  | Ok () ->
    let q = queue t ticket.cls in
    let cap = (class_config t.cfg ticket.cls).queue_cap in
    if List.length q < cap then begin
      set_queue t ticket.cls (q @ [ ticket ]);
      t.admitted <- t.admitted + 1;
      Metrics.incr t.am.am_admitted;
      Ok ticket
    end
    else begin
      (* full queue: preempt the lowest-tier (oldest among ties) queued
         request if it ranks strictly below the newcomer *)
      let victim =
        List.fold_left
          (fun acc candidate ->
             match acc with
             | None -> Some candidate
             | Some best ->
               if tier_rank candidate.tier < tier_rank best.tier then
                 Some candidate
               else acc)
          None q
      in
      match victim with
      | Some victim when tier_rank victim.tier < tier_rank ticket.tier ->
        let _ =
          record_shed t victim Tier_shed (Some t.cfg.retry_after_s)
        in
        set_queue t ticket.cls
          (List.filter (fun tk -> tk.id <> victim.id) q @ [ ticket ]);
        t.admitted <- t.admitted + 1;
        Metrics.incr t.am.am_admitted;
        Ok ticket
      | _ ->
        Error (record_shed t ticket Queue_full (Some t.cfg.retry_after_s))
    end

let submit t ~now ~cls ~tier ~user ?deadline_s () =
  enqueue t ~now (mint t ~now ~cls ~tier ~user ?deadline_s ())

let begin_service t ~now ticket =
  t.started <- t.started + 1;
  t.inflight <- ticket :: t.inflight;
  Metrics.observe t.am.am_queue_wait_ms
    (int_of_float ((now -. ticket.submitted_at) *. 1e3))

let start t ~now =
  if List.length t.inflight >= t.cfg.max_inflight then None
  else begin
    (* global submission order: the oldest head across every class *)
    let rec pick () =
      let head =
        List.fold_left
          (fun acc (_, q) ->
             match (q, acc) with
             | [], _ -> acc
             | tk :: _, None -> Some tk
             | tk :: _, Some best -> if tk.id < best.id then Some tk else acc)
          None t.queues
      in
      match head with
      | None -> None
      | Some tk ->
        set_queue t tk.cls (List.tl (queue t tk.cls));
        if tk.deadline <= now then begin
          let _ = record_shed t tk Deadline_expired None in
          pick ()
        end
        else begin
          begin_service t ~now tk;
          Some tk
        end
    in
    pick ()
  end

let admit_now t ~now ~cls ~tier ~user ?deadline_s () =
  let ticket = mint t ~now ~cls ~tier ~user ?deadline_s () in
  let retry = Some t.cfg.retry_after_s in
  match gate t ~now ticket with
  | Error _ as e -> e
  | Ok () ->
    if queue_depth t cls > 0 || List.length t.inflight >= t.cfg.max_inflight
    then Error (record_shed t ticket Queue_full retry)
    else begin
      t.admitted <- t.admitted + 1;
      Metrics.incr t.am.am_admitted;
      begin_service t ~now ticket;
      Ok ticket
    end

let take_inflight t ticket what =
  if List.exists (fun tk -> tk.id = ticket.id) t.inflight then
    t.inflight <- List.filter (fun tk -> tk.id <> ticket.id) t.inflight
  else
    invalid_arg
      (Printf.sprintf "Admission.%s: ticket %d is not in flight" what
         ticket.id)

let complete t ~now:_ ticket =
  take_inflight t ticket "complete";
  t.completed <- t.completed + 1

let give_up t ~now:_ ticket reason ?retry_after_s () =
  take_inflight t ticket "give_up";
  ignore (record_shed t ticket reason retry_after_s)

type stats = {
  submitted : int;
  admitted : int;
  started : int;
  completed : int;
  queued : int;
  inflight : int;
  shed_by_reason : (shed_reason * int) list;
}

let shed_log t = List.rev t.sheds
let shed_total t = List.length t.sheds

let stats (t : t) =
  { submitted = t.submitted;
    admitted = t.admitted;
    started = t.started;
    completed = t.completed;
    queued =
      List.fold_left (fun acc (_, q) -> acc + List.length q) 0 t.queues;
    inflight = List.length t.inflight;
    shed_by_reason =
      List.map
        (fun r ->
           ( r,
             List.length
               (List.filter (fun s -> s.shed_reason = r) t.sheds) ))
        all_reasons }

let accounting_closes t =
  let s = stats t in
  s.submitted = s.queued + s.inflight + s.completed + shed_total t
