module Admission = Jhdl_resilience.Admission
module Breaker = Jhdl_resilience.Breaker
module Server = Jhdl_webserver.Server
module Session_manager = Jhdl_webserver.Session_manager
module Catalog = Jhdl_applet.Catalog
module License = Jhdl_applet.License
module Download = Jhdl_bundle.Download
module Cosim = Jhdl_netproto.Cosim
module Network = Jhdl_netproto.Network
module Endpoint = Jhdl_netproto.Endpoint
module Fault = Jhdl_faults.Fault
module Prng = Jhdl_faults.Prng
module Metrics = Jhdl_metrics.Metrics
module Cell = Jhdl_circuit.Cell
module Wire = Jhdl_circuit.Wire
module Design = Jhdl_circuit.Design
module Types = Jhdl_circuit.Types
module Simulator = Jhdl_sim.Simulator
module Counter = Jhdl_modgen.Counter

let log_src = Logs.Src.create "jhdl.chaos" ~doc:"chaos scenario scheduler"

module Log = (val Logs.src_log log_src : Logs.LOG)

(* ------------------------------------------------------------------ *)
(* scenario grammar                                                    *)
(* ------------------------------------------------------------------ *)

type event =
  | Crash_burst of int
  | Fault_spike of float
  | Slow_clients of float
  | Quota_storm of int
  | Republish

let event_name = function
  | Crash_burst n -> Printf.sprintf "crash-burst(%d)" n
  | Fault_spike r -> Printf.sprintf "fault-spike(%.2f)" r
  | Slow_clients s -> Printf.sprintf "slow-clients(%.2fs)" s
  | Quota_storm n -> Printf.sprintf "quota-storm(%d)" n
  | Republish -> "republish"

type phase = {
  label : string;
  duration_s : float;
  load_rps : float;
  events : event list;
}

type scenario = {
  scenario_name : string;
  scenario_doc : string;
  phases : phase list;
}

let calm label duration_s load_rps =
  { label; duration_s; load_rps; events = [] }

let scenarios =
  [ { scenario_name = "smoke";
      scenario_doc = "sub-second pinned-seed storm: every event at once";
      phases =
        [ calm "baseline" 2.0 8.0;
          { label = "storm";
            duration_s = 2.0;
            load_rps = 30.0;
            events =
              [ Fault_spike 0.25; Crash_burst 2; Quota_storm 9; Republish ] };
          calm "recovery" 4.0 8.0 ] };
    { scenario_name = "crash-burst";
      scenario_doc = "endpoint processes die repeatedly mid-cosim";
      phases =
        [ calm "baseline" 3.0 8.0;
          { label = "storm";
            duration_s = 3.0;
            load_rps = 10.0;
            events = [ Crash_burst 5 ] };
          calm "recovery" 4.0 8.0 ] };
    { scenario_name = "loss-spike";
      scenario_doc = "download path loses and corrupts under load";
      phases =
        [ calm "baseline" 3.0 8.0;
          { label = "storm";
            duration_s = 4.0;
            load_rps = 12.0;
            events = [ Fault_spike 0.35 ] };
          calm "recovery" 4.0 8.0 ] };
    { scenario_name = "slow-clients";
      scenario_doc = "trickling clients stall service while load spikes";
      phases =
        [ calm "baseline" 3.0 8.0;
          { label = "storm";
            duration_s = 4.0;
            load_rps = 40.0;
            events = [ Slow_clients 0.15 ] };
          calm "recovery" 4.0 8.0 ] };
    { scenario_name = "quota-storm";
      scenario_doc = "a burst of users exhausts the session quota";
      phases =
        [ calm "baseline" 3.0 8.0;
          { label = "storm";
            duration_s = 3.0;
            load_rps = 10.0;
            events = [ Quota_storm 24 ] };
          calm "recovery" 4.0 8.0 ] };
    { scenario_name = "republish-load";
      scenario_doc = "the vendor republishes while the link degrades";
      phases =
        [ calm "baseline" 3.0 8.0;
          { label = "storm";
            duration_s = 4.0;
            load_rps = 30.0;
            events = [ Republish; Fault_spike 0.15 ] };
          calm "recovery" 4.0 8.0 ] } ]

let scenario_names () = List.map (fun s -> s.scenario_name) scenarios

let find_scenario name =
  List.find_opt (fun s -> String.equal s.scenario_name name) scenarios

let sweep ?label ~load_rps ~fault_rate () =
  let name =
    match label with
    | Some l -> l
    | None -> Printf.sprintf "sweep-%.0frps-%.2floss" load_rps fault_rate
  in
  { scenario_name = name;
    scenario_doc = "parametric load x fault-rate storm (bench R1)";
    phases =
      [ calm "baseline" 3.0 8.0;
        { label = "storm";
          duration_s = 4.0;
          load_rps;
          events =
            (if fault_rate > 0.0 then [ Fault_spike fault_rate ] else []) };
        calm "recovery" 4.0 8.0 ] }

(* ------------------------------------------------------------------ *)
(* reports                                                             *)
(* ------------------------------------------------------------------ *)

type invariant = {
  inv_name : string;
  inv_pass : bool;
  inv_detail : string;
}

type phase_tally = {
  pt_label : string;
  pt_offered : int;
  pt_ok : int;
  pt_shed : int;
  pt_failed : int;
}

type report = {
  rep_scenario : string;
  rep_seed : int;
  offered : int;
  ok : int;
  failed : int;
  shed_by_reason : (Admission.shed_reason * int) list;
  phase_tallies : phase_tally list;
  baseline_goodput : float;
  recovery_goodput : float;
  p95_queue_wait_ms : float;
  breaker_opened : int;
  cosim_breaker_opened : int;
  resumes : int;
  session_crashes : int;
  sessions_opened : int;
  sessions_reaped : int;
  sessions_preserved : int;
  sessions_lost : int;
  quota_rejections : int;
  invariants : invariant list;
}

let passed report = List.for_all (fun i -> i.inv_pass) report.invariants

(* ------------------------------------------------------------------ *)
(* the world under test                                                *)
(* ------------------------------------------------------------------ *)

let ip_name = "VirtexKCMMultiplier"
let service_interval = 0.05 (* the server serves 20 requests per second *)

(* admission tuned so storms genuinely shed: short deadline budgets,
   bounded queues, the default brownout ladder *)
let chaos_admission_config =
  { Admission.default_config with
    Admission.browse = { Admission.queue_cap = 16; deadline_budget_s = 0.5 };
    download = { Admission.queue_cap = 32; deadline_budget_s = 1.0 };
    elaborate = { Admission.queue_cap = 4; deadline_budget_s = 10.0 };
    cosim = { Admission.queue_cap = 16; deadline_budget_s = 1.0 } }

let dl_breaker_config =
  { Breaker.failure_threshold = 3;
    open_for_s = 1.0;
    probe_jitter = 0.25;
    half_open_successes = 2 }

let sm_config =
  { Session_manager.heartbeat_timeout_s = 3.0;
    idle_timeout_s = 10.0;
    max_sessions_per_user = 2 }

(* the customer mix: every tier represented, so tier-aware shedding has
   victims and survivors *)
let users =
  [ ("pas-1", License.Passive);
    ("pas-2", License.Passive);
    ("eval-1", License.Evaluator);
    ("eval-2", License.Evaluator);
    ("lic-1", License.Licensed);
    ("lic-2", License.Licensed) ]

let counter_endpoint ~name =
  let top = Cell.root ~name:"chaos_top" () in
  let clk = Wire.create top ~name:"clk" 1 in
  let q = Wire.create top ~name:"q" 8 in
  let _ = Counter.up_counter top ~clk ~q () in
  let d = Design.create top in
  Design.add_port d "clk" Types.Input clk;
  Design.add_port d "q" Types.Output q;
  let clock =
    match Design.find_port d "clk" with
    | Some p -> p.Design.port_wire
    | None -> assert false
  in
  Endpoint.of_simulator ~name (Simulator.create ~clock d)

type world = {
  seed : int;
  rng_mix : Prng.t; (* request-class draws *)
  rng_user : Prng.t; (* which customer arrives *)
  server : Server.t;
  dl_breaker : Breaker.t;
  adm : Admission.t;
  sm : Session_manager.t;
  cosim : Cosim.t;
  cs_breaker : Breaker.t;
  storm_endpoint : Endpoint.t;
  steady_keys : string list;
  phase_bounds : (float * float * string) list; (* (start, end], label *)
  (* per-phase fault posture, reset as each phase opens *)
  mutable faults_base : Fault.config option;
  mutable policy : Download.fetch_policy option;
  mutable stall_s : float;
  mutable pending_crashes : int;
  (* engine state *)
  mutable next_service_at : float;
  mutable req_index : int;
  mutable waits_ms : float list;
  mutable ok_times : float list; (* submitted_at of successful requests *)
  mutable failed_times : float list;
}

let make_world ?(metrics = Metrics.nil) ~seed scenario =
  let rng = Prng.create seed in
  let rng_mix = Prng.split rng in
  let rng_user = Prng.split rng in
  let dl_breaker =
    Breaker.create ~config:dl_breaker_config ~metrics ~name:"download"
      ~seed:(seed + 1) ()
  in
  (* a tiny browser-cache cap keeps the download path hot: revisits
     re-fetch jars instead of hitting a warm cache, so fault spikes
     reach the wire (and the breaker) on every request *)
  let server =
    Server.create ~vendor:"chaos-vendor" ~cache_cap:1 ~breaker:dl_breaker
      ~metrics ()
  in
  let _ = Server.publish server Catalog.kcm in
  List.iter (fun (user, tier) -> Server.register_user server ~user ~tier) users;
  let adm = Admission.create ~config:chaos_admission_config ~metrics () in
  let sm = Session_manager.create ~config:sm_config ~metrics () in
  let cosim = Cosim.create () in
  let cs_breaker = Breaker.create ~metrics ~name:"cosim" ~seed:(seed + 2) () in
  let dut = counter_endpoint ~name:"dut" in
  Cosim.attach cosim
    ~faults:{ Fault.none with Fault.drop_rate = 0.05; seed = seed + 3 }
    ~session:
      { Cosim.resume_attempts = 3; checkpoint_every = 8; heartbeat_every = 0 }
    ~breaker:cs_breaker ~metrics dut Network.campus;
  let storm_endpoint = counter_endpoint ~name:"storm" in
  (* two paying customers hold steady supervised sessions for the whole
     run; the conservation invariant must find them preserved *)
  let steady_keys =
    List.filter_map
      (fun user ->
         match
           Session_manager.open_session sm ~user ~now:0.0 storm_endpoint
         with
         | Ok key -> Some key
         | Error _ -> None)
      [ "lic-1"; "lic-2" ]
  in
  let phase_bounds =
    let _, bounds =
      List.fold_left
        (fun (t0, acc) p ->
           (t0 +. p.duration_s, (t0, t0 +. p.duration_s, p.label) :: acc))
        (0.0, []) scenario.phases
    in
    List.rev bounds
  in
  { seed;
    rng_mix;
    rng_user;
    server;
    dl_breaker;
    adm;
    sm;
    cosim;
    cs_breaker;
    storm_endpoint;
    steady_keys;
    phase_bounds;
    faults_base = None;
    policy = None;
    stall_s = 0.0;
    pending_crashes = 0;
    next_service_at = service_interval;
    req_index = 0;
    waits_ms = [];
    ok_times = [];
    failed_times = [] }

(* per-request fault config: the spike's rates with a seed derived from
   the request index, so one request's retry count never shifts
   another's faults — and the whole storm replays from [seed] *)
let request_faults w =
  match w.faults_base with
  | None -> None
  | Some base -> Some { base with Fault.seed = (w.seed * 7919) + w.req_index }

let draw_class w =
  match Prng.int w.rng_mix 10 with
  | 0 | 1 | 2 | 3 | 4 | 5 | 6 -> Admission.Jar_download
  | 7 | 8 -> Admission.Browse
  | _ -> Admission.Cosim_exchange

let draw_user w = List.nth users (Prng.int w.rng_user (List.length users))

(* dispatch one started ticket against the real stack *)
let dispatch w ~now (ticket : Admission.ticket) =
  w.waits_ms <- ((now -. ticket.Admission.submitted_at) *. 1e3) :: w.waits_ms;
  let ok () = w.ok_times <- ticket.Admission.submitted_at :: w.ok_times in
  let failed () =
    w.failed_times <- ticket.Admission.submitted_at :: w.failed_times
  in
  match ticket.Admission.cls with
  | Admission.Browse ->
    ignore (Server.catalog w.server);
    Admission.complete w.adm ~now ticket;
    ok ()
  | Admission.Elaborate ->
    (match Server.publish_checked w.server Catalog.kcm with
     | Ok _ -> ok ()
     | Error _ -> failed ());
    Admission.complete w.adm ~now ticket
  | Admission.Cosim_exchange ->
    if w.pending_crashes > 0 then begin
      w.pending_crashes <- w.pending_crashes - 1;
      Cosim.crash_at w.cosim ~box:"dut" ~exchange:1
    end;
    (match Cosim.cycle w.cosim with
     | () -> ok ()
     | exception Cosim.Exchange_failed _ -> failed ());
    Admission.complete w.adm ~now ticket
  | Admission.Jar_download ->
    (match
       Server.serve_admitted w.server ~admission:w.adm ~ticket ~now ~ip_name
         ~link:Download.dsl_1m ?faults:(request_faults w) ?policy:w.policy ()
     with
     | Ok _ -> ok ()
     | Error { Server.rej_shed = Some _; _ } ->
       (* given up inside the server with a typed reason; it is in the
          shed log, not the failure tally *)
       ()
     | Error _ -> failed ())

let run_services w ~until =
  while w.next_service_at <= until do
    let snow = w.next_service_at in
    (match Admission.start w.adm ~now:snow with
     | Some ticket -> dispatch w ~now:snow ticket
     | None -> ());
    w.next_service_at <- snow +. service_interval +. w.stall_s
  done

let apply_events w ~now phase =
  List.iter
    (fun ev ->
       Log.info (fun m -> m "phase %s: %s" phase.label (event_name ev));
       match ev with
       | Fault_spike rate ->
         w.faults_base <-
           Some
             { Fault.none with
               Fault.drop_rate = rate;
               corrupt_rate = rate *. 0.5;
               seed = 0 };
         (* a saturated path does not get browser-grade retries *)
         w.policy <- Some Download.single_attempt
       | Slow_clients stall -> w.stall_s <- stall
       | Crash_burst n -> w.pending_crashes <- w.pending_crashes + n
       | Quota_storm n ->
         (* three storm users hammer open_session and then never
            heartbeat: quota rejections now, reaps later *)
         for i = 0 to n - 1 do
           let user = Printf.sprintf "storm-%d" (i mod 3) in
           ignore
             (Session_manager.try_open_session w.sm ~user ~now
                w.storm_endpoint)
         done
       | Republish ->
         (match
            Admission.submit w.adm ~now ~cls:Admission.Elaborate
              ~tier:License.Vendor ~user:"vendor" ()
          with
          | Ok _ -> ()
          | Error _ -> ()))
    phase.events

let run_phase w ~phase_start phase =
  (* each phase resets the fault posture; events re-arm it *)
  w.faults_base <- None;
  w.policy <- None;
  w.stall_s <- 0.0;
  apply_events w ~now:phase_start phase;
  let n =
    max 1 (int_of_float (Float.round (phase.duration_s *. phase.load_rps)))
  in
  let interval = phase.duration_s /. float_of_int n in
  for i = 0 to n - 1 do
    let now = phase_start +. (interval *. float_of_int (i + 1)) in
    ignore (Session_manager.tick w.sm ~now);
    List.iter
      (fun key -> ignore (Session_manager.heartbeat w.sm ~now key))
      w.steady_keys;
    run_services w ~until:now;
    let cls = draw_class w in
    let user, tier = draw_user w in
    w.req_index <- w.req_index + 1;
    ignore (Admission.submit w.adm ~now ~cls ~tier ~user ())
  done;
  phase_start +. phase.duration_s

(* after the last phase: keep the service clock running until every
   queued request was served or shed (deadlines clear stragglers) *)
let drain w ~from =
  let now = ref from in
  let guard = ref 0 in
  let open_work () =
    let st = Admission.stats w.adm in
    st.Admission.queued + st.Admission.inflight > 0
  in
  while open_work () && !guard < 100_000 do
    incr guard;
    now := !now +. service_interval;
    run_services w ~until:!now
  done

(* ------------------------------------------------------------------ *)
(* invariants                                                          *)
(* ------------------------------------------------------------------ *)

let inv name pass detail =
  { inv_name = name; inv_pass = pass; inv_detail = detail }

let accounting_invariant w ~offered ~ok ~failed =
  let st = Admission.stats w.adm in
  let shed = Admission.shed_total w.adm in
  let pass =
    Admission.accounting_closes w.adm
    && st.Admission.queued = 0
    && st.Admission.inflight = 0
    && st.Admission.submitted = offered
    && ok + failed + shed = offered
  in
  inv "accounting-closes" pass
    (Printf.sprintf
       "submitted=%d ok=%d failed=%d shed=%d queued=%d inflight=%d"
       st.Admission.submitted ok failed shed st.Admission.queued
       st.Admission.inflight)

let conservation_invariant ~sm_stats ~reaped
    ~(shutdown : Session_manager.shutdown_report) =
  let preserved = List.length shutdown.Session_manager.preserved in
  let lost = List.length shutdown.Session_manager.lost in
  let pass = sm_stats.Session_manager.opened = reaped + preserved + lost in
  inv "sessions-conserved" pass
    (Printf.sprintf "opened=%d reaped=%d preserved=%d lost=%d"
       sm_stats.Session_manager.opened reaped preserved lost)

(* every Open episode must end within the probe budget (plus the grace
   of one serving gap); the run must not end with a stuck-open circuit *)
let breaker_invariant name b ~grace =
  let cfg = Breaker.config b in
  let budget =
    (cfg.Breaker.open_for_s *. (1.0 +. cfg.Breaker.probe_jitter)) +. grace
  in
  let rec episodes = function
    | (t_open, Breaker.Open) :: rest ->
      (match rest with
       | (t_next, _) :: _ -> t_next -. t_open <= budget && episodes rest
       | [] -> false)
    | _ :: rest -> episodes rest
    | [] -> true
  in
  let pass = Breaker.state b <> Breaker.Open && episodes (Breaker.history b) in
  inv
    (Printf.sprintf "breaker-%s-recovers" name)
    pass
    (Printf.sprintf "opened=%d final=%s budget=%.2fs" (Breaker.times_opened b)
       (Breaker.state_name (Breaker.state b))
       budget)

let goodput_invariant ~baseline ~recovery =
  let pass = baseline <= 0.0 || recovery >= 0.9 *. baseline in
  inv "goodput-recovered" pass
    (Printf.sprintf "baseline=%.3f recovery=%.3f floor=%.3f" baseline recovery
       (0.9 *. baseline))

(* ------------------------------------------------------------------ *)
(* run                                                                 *)
(* ------------------------------------------------------------------ *)

let percentile_95 samples =
  match List.sort compare samples with
  | [] -> 0.0
  | sorted ->
    let n = List.length sorted in
    List.nth sorted (int_of_float (0.95 *. float_of_int (n - 1)))

let count_in times ~lo ~hi =
  List.length (List.filter (fun t -> t > lo && t <= hi) times)

let run ?metrics ~seed scenario =
  let w = make_world ?metrics ~seed scenario in
  let t_end =
    List.fold_left (fun t0 phase -> run_phase w ~phase_start:t0 phase) 0.0
      scenario.phases
  in
  drain w ~from:t_end;
  let shutdown = Session_manager.shutdown w.sm in
  let sm_stats = Session_manager.stats w.sm in
  let reaped = List.length (Session_manager.reap_report w.sm) in
  let st = Admission.stats w.adm in
  let shed_log = Admission.shed_log w.adm in
  let ok = List.length w.ok_times in
  let failed = List.length w.failed_times in
  let offered = st.Admission.submitted in
  let shed_times =
    List.map (fun s -> s.Admission.shed_ticket.Admission.submitted_at) shed_log
  in
  let phase_tallies =
    List.map
      (fun (lo, hi, label) ->
         let shed = count_in shed_times ~lo ~hi in
         let ok = count_in w.ok_times ~lo ~hi in
         let failed = count_in w.failed_times ~lo ~hi in
         { pt_label = label;
           pt_offered = ok + failed + shed;
           pt_ok = ok;
           pt_shed = shed;
           pt_failed = failed })
      w.phase_bounds
  in
  let goodput_of ~lo ~hi =
    let ok = count_in w.ok_times ~lo ~hi in
    let total =
      ok + count_in w.failed_times ~lo ~hi + count_in shed_times ~lo ~hi
    in
    if total = 0 then 1.0 else float_of_int ok /. float_of_int total
  in
  let baseline_goodput =
    match w.phase_bounds with
    | (lo, hi, _) :: _ -> goodput_of ~lo ~hi
    | [] -> 1.0
  in
  let recovery_goodput =
    (* the steady state after recovery: the back half of the final calm
       phase, past the breaker's last probe *)
    match List.rev w.phase_bounds with
    | (lo, hi, _) :: _ -> goodput_of ~lo:((lo +. hi) /. 2.0) ~hi
    | [] -> 1.0
  in
  let invariants =
    [ accounting_invariant w ~offered ~ok ~failed;
      conservation_invariant ~sm_stats ~reaped ~shutdown;
      breaker_invariant "download" w.dl_breaker ~grace:2.0;
      breaker_invariant "cosim" w.cs_breaker ~grace:2.0;
      goodput_invariant ~baseline:baseline_goodput ~recovery:recovery_goodput
    ]
  in
  { rep_scenario = scenario.scenario_name;
    rep_seed = seed;
    offered;
    ok;
    failed;
    shed_by_reason = st.Admission.shed_by_reason;
    phase_tallies;
    baseline_goodput;
    recovery_goodput;
    p95_queue_wait_ms = percentile_95 w.waits_ms;
    breaker_opened = Breaker.times_opened w.dl_breaker;
    cosim_breaker_opened = Breaker.times_opened w.cs_breaker;
    resumes = Cosim.total_resumes w.cosim;
    session_crashes = Cosim.total_session_crashes w.cosim;
    sessions_opened = sm_stats.Session_manager.opened;
    sessions_reaped = reaped;
    sessions_preserved = List.length shutdown.Session_manager.preserved;
    sessions_lost = List.length shutdown.Session_manager.lost;
    quota_rejections = sm_stats.Session_manager.quota_rejections;
    invariants }

let report_to_text r =
  let buf = Buffer.create 512 in
  let line fmt =
    Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt
  in
  line "chaos %s (seed %d)" r.rep_scenario r.rep_seed;
  line "  offered %d | ok %d | failed %d | shed %d" r.offered r.ok r.failed
    (List.fold_left (fun acc (_, n) -> acc + n) 0 r.shed_by_reason);
  List.iter
    (fun (reason, n) ->
       if n > 0 then
         line "    shed %-17s %d" (Admission.shed_reason_name reason) n)
    r.shed_by_reason;
  List.iter
    (fun pt ->
       line "  phase %-10s offered %3d | ok %3d | shed %3d | failed %3d"
         pt.pt_label pt.pt_offered pt.pt_ok pt.pt_shed pt.pt_failed)
    r.phase_tallies;
  line "  goodput baseline %.3f -> recovery %.3f | p95 queue wait %.1f ms"
    r.baseline_goodput r.recovery_goodput r.p95_queue_wait_ms;
  line
    "  breaker: download opened %d, cosim opened %d | crashes %d, resumes %d"
    r.breaker_opened r.cosim_breaker_opened r.session_crashes r.resumes;
  line
    "  sessions: opened %d, reaped %d, preserved %d, lost %d, quota-rejected %d"
    r.sessions_opened r.sessions_reaped r.sessions_preserved r.sessions_lost
    r.quota_rejections;
  List.iter
    (fun i ->
       line "  %s %-20s %s"
         (if i.inv_pass then "PASS" else "FAIL")
         i.inv_name i.inv_detail)
    r.invariants;
  Buffer.contents buf
