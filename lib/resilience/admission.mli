(** Admission control for the delivery path.

    The vendor's server is the single machine that must survive
    misbehaving traffic (the paper's architecture runs elaboration and
    co-simulation vendor-side), so every request passes an admission
    controller before it costs anything: bounded per-class queues,
    deadline budgets with shed-on-expiry, tier-aware load shedding
    (lower {!Jhdl_applet.License.tier}s shed first) and a brownout
    ladder that degrades service in steps instead of falling over.

    Time is the caller's ([~now], seconds on any consistent clock), the
    same discipline as {!Jhdl_webserver.Session_manager}: admission
    decisions are a pure function of the request sequence and the
    clock, so overload runs replay deterministically.

    Accounting is typed and closed: every submitted request is, at any
    moment, queued, in flight, completed, or shed with a
    {!shed_reason} — {!accounting_closes} checks the identity and the
    chaos suite asserts it after every storm. *)

(** The four request classes of the delivery path. *)
type request_class =
  | Browse  (** catalog listing: cheap, last to be shed *)
  | Jar_download  (** serving an applet page and its jar set *)
  | Elaborate  (** publish / republish: lint-gated elaboration *)
  | Cosim_exchange  (** black-box co-simulation traffic *)

val all_classes : request_class list
val class_name : request_class -> string

(** The brownout ladder, in degradation order. *)
type brownout_level =
  | Full_service
  | Serve_stale
      (** downloads may be answered from the user's browser cache even
          when the cached component version is stale *)
  | Catalog_only  (** only [Browse] is admitted *)
  | Reject_all  (** everything is shed with a retry-after hint *)

val brownout_name : brownout_level -> string

type shed_reason =
  | Queue_full  (** the class queue was at capacity *)
  | Deadline_expired  (** the request's deadline passed while it waited *)
  | Brownout_rejected  (** the ladder had shed this class entirely *)
  | Tier_shed  (** preempted from the queue by a higher-tier request *)
  | Breaker_open
      (** refused by an open circuit breaker after admission (recorded
          here so the typed accounting still closes) *)

val all_reasons : shed_reason list
val shed_reason_name : shed_reason -> string

type class_config = {
  queue_cap : int;  (** bounded queue length; at least 1 *)
  deadline_budget_s : float;
      (** default deadline budget for the class; 0 disables deadlines *)
}

type config = {
  browse : class_config;
  download : class_config;
  elaborate : class_config;
  cosim : class_config;
  max_inflight : int;  (** concurrent started requests; at least 1 *)
  serve_stale_at : float;  (** occupancy fraction entering [Serve_stale] *)
  catalog_only_at : float;  (** occupancy fraction entering [Catalog_only] *)
  reject_at : float;  (** occupancy fraction entering [Reject_all] *)
  retry_after_s : float;  (** hint attached to overload rejections *)
}

val default_config : config
val class_config : config -> request_class -> class_config

(** An admitted request. The ticket is the unit of accounting: it must
    eventually reach {!complete} or {!give_up}. *)
type ticket = {
  id : int;  (** global submission order *)
  cls : request_class;
  tier : Jhdl_applet.License.tier;
  user : string;
  submitted_at : float;
  deadline : float;  (** absolute; [infinity] when deadlines are off *)
}

(** One shed request, with its typed reason and the retry hint the
    rejection carried. *)
type shed = {
  shed_ticket : ticket;
  shed_reason : shed_reason;
  retry_after_s : float option;
}

type t

(** A live [metrics] registry gains [admitted_total], [shed_total],
    per-reason [shed_*_total] counters, a [queue_wait_ms] histogram
    (observed when a request starts service), per-class
    [queue_depth_*] probes, an [inflight] probe and a [brownout_level]
    probe (0 = full service .. 3 = reject all). Raises
    [Invalid_argument] on non-positive queue capacities or
    [max_inflight], or a non-monotonic brownout ladder. *)
val create : ?config:config -> ?metrics:Jhdl_metrics.Metrics.t -> unit -> t

val config : t -> config
val queue_depth : t -> request_class -> int

(** [occupancy t] — total queued over total queue capacity, in [0, 1]. *)
val occupancy : t -> float

(** [brownout t] — the ladder rung the current occupancy selects. *)
val brownout : t -> brownout_level

(** [submit t ~now ~cls ~tier ~user ?deadline_s ()] — enqueue one
    request. [deadline_s] overrides the class's default budget.
    Sheds (with a retry-after hint) when the ladder has dropped the
    class, when the deadline budget is already non-positive, or when
    the class queue is full — unless a strictly lower-tier request is
    queued in the same class, in which case that request is preempted
    ([Tier_shed]) and this one takes its place: paying customers are
    the last to brown out. *)
val submit :
  t ->
  now:float ->
  cls:request_class ->
  tier:Jhdl_applet.License.tier ->
  user:string ->
  ?deadline_s:float ->
  unit ->
  (ticket, shed) result

(** [start t ~now] — dequeue the next request to serve, in global
    submission order across classes, honoring [max_inflight]. Requests
    whose deadline passed while queued are shed ([Deadline_expired])
    and skipped. Observes the queue-wait histogram for the returned
    ticket. [None] when every queue is empty or the inflight cap is
    reached. *)
val start : t -> now:float -> ticket option

(** [admit_now t ~now ~cls ~tier ~user ?deadline_s ()] — the
    synchronous path ({!Jhdl_webserver.Server.user_request}): submit
    and immediately start, bypassing the queue when it is empty.
    Sheds like {!submit}; additionally sheds [Queue_full] when the
    inflight cap is reached, and will not jump ahead of an existing
    backlog (backlogged classes shed the newcomer instead). *)
val admit_now :
  t ->
  now:float ->
  cls:request_class ->
  tier:Jhdl_applet.License.tier ->
  user:string ->
  ?deadline_s:float ->
  unit ->
  (ticket, shed) result

(** [complete t ~now ticket] — the request finished (successfully or
    with an application error); closes its accounting. Raises
    [Invalid_argument] for tickets that are not in flight. *)
val complete : t -> now:float -> ticket -> unit

(** [give_up t ~now ticket reason ?retry_after_s ()] — a started
    request was refused downstream (e.g. by an open breaker): shed it
    with a typed reason so the accounting closes. *)
val give_up :
  t ->
  now:float ->
  ticket ->
  shed_reason ->
  ?retry_after_s:float ->
  unit ->
  unit

type stats = {
  submitted : int;
  admitted : int;  (** accepted into a queue (or straight to service) *)
  started : int;
  completed : int;
  queued : int;  (** waiting right now *)
  inflight : int;  (** started but not yet completed *)
  shed_by_reason : (shed_reason * int) list;  (** [all_reasons] order *)
}

val stats : t -> stats
val shed_total : t -> int

(** [shed_log t] — every shed request, oldest first. *)
val shed_log : t -> shed list

(** [accounting_closes t] — the conservation identity every storm must
    preserve: [submitted = queued + inflight + completed + shed]. *)
val accounting_closes : t -> bool
