(** Chaos scenario scheduler for the delivery stack.

    A scenario is a timed sequence of {!phase}s — each a duration, an
    offered load, and a set of fault {!event}s — played against a real
    world: a {!Jhdl_webserver.Server} with a download circuit breaker,
    an {!Jhdl_resilience.Admission} controller (queued dispatch at a
    fixed service rate, so overload genuinely backs up), a
    {!Jhdl_webserver.Session_manager} under heartbeat supervision, and
    a live co-simulation link with its own breaker and crash-safe
    session layer.

    Everything is deterministic: the clock is simulated, every random
    choice draws from a {!Jhdl_faults.Prng} stream derived from the run
    seed, and per-request fault seeds are derived from the request
    index — so [run ~seed] replays bit-for-bit, and
    {!report_to_text} of two same-seed runs compares byte-equal.

    After the storm the engine checks the recovery invariants the
    design doc tabulates (DESIGN §14): typed accounting closes, no
    session vanishes unreported, breakers recover within their probe
    budget, and goodput returns to at least 90% of the no-fault
    baseline. *)

module Admission = Jhdl_resilience.Admission
module Breaker = Jhdl_resilience.Breaker

(** {1 Scenario grammar} *)

type event =
  | Crash_burst of int
      (** endpoint process deaths injected into the co-simulation link
          during the phase (the session layer must resume each) *)
  | Fault_spike of float
      (** download-path loss/corruption at this rate, with
          single-attempt fetches (a saturated CDN does not retry) *)
  | Slow_clients of float
      (** each request holds the server this many extra seconds
          (trickling clients shrink effective service capacity) *)
  | Quota_storm of int
      (** this many session-open attempts from a burst of storm
          users, who then never heartbeat again *)
  | Republish
      (** an [Elaborate] republication of the catalog rides the load *)

val event_name : event -> string

type phase = {
  label : string;
  duration_s : float;
  load_rps : float;  (** offered request rate during the phase *)
  events : event list;  (** applied as the phase opens *)
}

type scenario = {
  scenario_name : string;
  scenario_doc : string;
  phases : phase list;
      (** convention: first phase calm (baseline), last phase calm
          (recovery) — the goodput invariant compares the two *)
}

(** The named scenarios: ["smoke"] (sub-second, every event at once),
    ["crash-burst"], ["loss-spike"], ["slow-clients"], ["quota-storm"],
    ["republish-load"]. *)
val scenarios : scenario list

val scenario_names : unit -> string list
val find_scenario : string -> scenario option

(** [sweep ~load_rps ~fault_rate ()] — the parametric bench scenario
    (section R1): calm baseline, a storm phase offering [load_rps]
    under a [fault_rate] loss spike, calm recovery. *)
val sweep : ?label:string -> load_rps:float -> fault_rate:float -> unit ->
  scenario

(** {1 Reports} *)

type invariant = {
  inv_name : string;
  inv_pass : bool;
  inv_detail : string;
}

type phase_tally = {
  pt_label : string;
  pt_offered : int;
  pt_ok : int;  (** completed successfully *)
  pt_shed : int;  (** shed with a typed reason *)
  pt_failed : int;  (** admitted but failed downstream *)
}

type report = {
  rep_scenario : string;
  rep_seed : int;
  offered : int;
  ok : int;
  failed : int;
  shed_by_reason : (Admission.shed_reason * int) list;
      (** [Admission.all_reasons] order *)
  phase_tallies : phase_tally list;
  baseline_goodput : float;  (** ok fraction of the first (calm) phase *)
  recovery_goodput : float;
      (** ok fraction of the second half of the last (calm) phase —
          the steady state after the breaker's final probe closed *)
  p95_queue_wait_ms : float;
  breaker_opened : int;  (** download breaker trips *)
  cosim_breaker_opened : int;
  resumes : int;  (** co-simulation resume handshakes *)
  session_crashes : int;
  sessions_opened : int;
  sessions_reaped : int;
  sessions_preserved : int;
  sessions_lost : int;
  quota_rejections : int;
  invariants : invariant list;
}

(** [run ?metrics ~seed scenario] — play the scenario against a fresh
    world and audit the invariants. Same seed, same report. *)
val run : ?metrics:Jhdl_metrics.Metrics.t -> seed:int -> scenario -> report

(** [passed report] — every invariant held. *)
val passed : report -> bool

(** [report_to_text report] — deterministic rendering: tallies, the
    per-phase table, and one PASS/FAIL line per invariant. *)
val report_to_text : report -> string
