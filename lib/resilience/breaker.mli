(** Circuit breakers for the delivery path.

    A breaker sits in front of a dependency that can fail repeatedly
    under a fault storm — the jar download path
    ({!Jhdl_bundle.Download.fetch_jars}), the server's request
    handling, a co-simulation channel — and converts cascades of slow
    failures into fast, typed refusals: after [failure_threshold]
    consecutive failures the breaker {e opens}; while open, calls are
    refused with a retry-after hint; after a seeded probe delay it
    admits a probe ({e half-open}); [half_open_successes] consecutive
    probe successes close it again, and any probe failure re-opens it.

    Probe scheduling is deterministic: the delay is
    [open_for_s * (1 ± probe_jitter)] with the jitter drawn from a
    {!Jhdl_faults.Prng} stream seeded at {!create}, so a chaos run
    replays its breaker transitions bit-for-bit. Time is the caller's
    ([~now]), as everywhere in the supervision stack. *)

type state =
  | Closed
  | Open
  | Half_open

val state_name : state -> string

type config = {
  failure_threshold : int;  (** consecutive failures that trip the breaker *)
  open_for_s : float;  (** base probe delay while open *)
  probe_jitter : float;
      (** seeded jitter as a fraction of [open_for_s], in [0, 1) *)
  half_open_successes : int;  (** probe successes needed to close *)
}

(** [default_config] — trips after 3 consecutive failures, probes after
    2 s ± 25%, closes after 2 probe successes. *)
val default_config : config

type t

(** [create ?config ?metrics ~name ~seed ()] — a closed breaker. A live
    [metrics] registry gains, under [<name>.] prefixes:
    [breaker_opened_total], [breaker_transitions_total],
    [breaker_probes_total] counters and a [breaker_state] probe
    (0 closed, 1 half-open, 2 open). Raises [Invalid_argument] on a
    non-positive threshold or success count, non-positive [open_for_s],
    or jitter outside [0, 1). *)
val create :
  ?config:config ->
  ?metrics:Jhdl_metrics.Metrics.t ->
  name:string ->
  seed:int ->
  unit ->
  t

val name : t -> string
val config : t -> config
val state : t -> state

(** [allow t ~now] — may a call proceed? [Closed] and [Half_open]
    always allow; [Open] refuses until the probe is due, at which point
    the breaker transitions to [Half_open] and allows the probe. *)
val allow : t -> now:float -> bool

(** [retry_after_s t ~now] — seconds until the next probe is due;
    [None] unless the breaker is open. *)
val retry_after_s : t -> now:float -> float option

val on_success : t -> now:float -> unit
val on_failure : t -> now:float -> unit

(** [transitions t] — state changes since creation. *)
val transitions : t -> int

(** [times_opened t] — how often the breaker tripped. *)
val times_opened : t -> int

(** [history t] — every state transition as [(when, new state)],
    oldest first. Deterministic under a fixed seed; the chaos
    invariants read recovery times off it. *)
val history : t -> (float * state) list
