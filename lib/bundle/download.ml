module Fault = Jhdl_faults.Fault
module M = Jhdl_metrics.Metrics

type link = {
  bandwidth_bits_per_s : float;
  latency_s : float;
}

let modem_56k = { bandwidth_bits_per_s = 56_000.0; latency_s = 0.150 }
let isdn_128k = { bandwidth_bits_per_s = 128_000.0; latency_s = 0.060 }
let dsl_1m = { bandwidth_bits_per_s = 1_000_000.0; latency_s = 0.030 }
let lan_10m = { bandwidth_bits_per_s = 10_000_000.0; latency_s = 0.005 }
let lan_100m = { bandwidth_bits_per_s = 100_000_000.0; latency_s = 0.001 }

let link_name link =
  if link.bandwidth_bits_per_s < 100_000.0 then "56k modem"
  else if link.bandwidth_bits_per_s < 500_000.0 then "128k ISDN"
  else if link.bandwidth_bits_per_s < 5_000_000.0 then "1M DSL"
  else if link.bandwidth_bits_per_s < 50_000_000.0 then "10M LAN"
  else "100M LAN"

(* connection setup + request/response: two round trips *)
let setup_seconds link = 4.0 *. link.latency_s

let payload_seconds link bytes = bytes *. 8.0 /. link.bandwidth_bits_per_s

let jar_seconds link jar =
  let bytes = float_of_int (Jar.compressed_size jar) in
  setup_seconds link +. payload_seconds link bytes

let jars_seconds link jars =
  List.fold_left (fun acc j -> acc +. jar_seconds link j) 0.0 jars

let update_seconds link ~changed () = jars_seconds link changed

(* ------------------------------------------------------------------ *)
(* faulty fetches with retry and byte-offset resume                    *)
(* ------------------------------------------------------------------ *)

type fetch_policy = {
  max_attempts : int;
  base_backoff_s : float;
  backoff_cap_s : float;
}

let default_fetch_policy =
  { max_attempts = 5; base_backoff_s = 0.5; backoff_cap_s = 8.0 }

let single_attempt = { default_fetch_policy with max_attempts = 1 }

type fetch = {
  fetch_jar : Jar.t;
  delivered : bool;
  attempts : int;
  bytes_on_wire : int;
  fetch_seconds : float;
}

(* One jar over a faulty HTTP link. Each attempt pays the connection
   setup; [Drop]/[Disconnect] kill the transfer at a seeded-random byte
   offset and the next attempt issues a Range request resuming there;
   [Corrupt] is only detected by the archive checksum after the full
   payload arrived, so it restarts from byte zero; [Latency_spike]
   stretches the setup. Retries wait a capped exponential backoff. *)
let fetch_jar ~injector ~spike_s ~policy link jar =
  let total = Jar.compressed_size jar in
  let seconds = ref 0.0 in
  let bytes_on_wire = ref 0 in
  let offset = ref 0 in
  let rec attempt n =
    if n > policy.max_attempts then
      { fetch_jar = jar;
        delivered = false;
        attempts = policy.max_attempts;
        bytes_on_wire = !bytes_on_wire;
        fetch_seconds = !seconds }
    else begin
      if n > 1 then
        seconds :=
          !seconds
          +. Float.min policy.backoff_cap_s
               (policy.base_backoff_s *. (2.0 ** float_of_int (n - 2)));
      seconds := !seconds +. setup_seconds link;
      let remaining = total - !offset in
      match Option.map Fault.draw injector |> Option.join with
      | None | Some Fault.Duplicate ->
        (* HTTP responses do not duplicate; delivered clean *)
        seconds := !seconds +. payload_seconds link (float_of_int remaining);
        bytes_on_wire := !bytes_on_wire + remaining;
        { fetch_jar = jar;
          delivered = true;
          attempts = n;
          bytes_on_wire = !bytes_on_wire;
          fetch_seconds = !seconds }
      | Some Fault.Latency_spike ->
        seconds :=
          !seconds +. spike_s +. payload_seconds link (float_of_int remaining);
        bytes_on_wire := !bytes_on_wire + remaining;
        { fetch_jar = jar;
          delivered = true;
          attempts = n;
          bytes_on_wire = !bytes_on_wire;
          fetch_seconds = !seconds }
      | Some Fault.Drop | Some Fault.Disconnect | Some Fault.Session_crash ->
        (* died mid-transfer (a crashed server looks like a dropped
           connection to HTTP): the bytes that made it are kept and the
           next attempt resumes at the new offset *)
        let fraction =
          match injector with Some i -> Fault.fraction i | None -> 0.0
        in
        let got = int_of_float (float_of_int remaining *. fraction) in
        seconds := !seconds +. payload_seconds link (float_of_int got);
        bytes_on_wire := !bytes_on_wire + got;
        offset := !offset + got;
        attempt (n + 1)
      | Some Fault.Corrupt ->
        (* whole payload arrived but the archive checksum rejects it:
           all of it was wasted and resume is impossible *)
        seconds := !seconds +. payload_seconds link (float_of_int remaining);
        bytes_on_wire := !bytes_on_wire + remaining;
        offset := 0;
        attempt (n + 1)
    end
  in
  attempt 1

(* Instruments minted once per registry ([fetch_jars] runs per request,
   so it cannot register names itself without colliding). *)
type metrics = {
  m_fetched : M.counter;
  m_delivered : M.counter;
  m_failed : M.counter;
  m_attempts : M.counter;
  m_bytes : M.counter;
  m_jar_ms : M.histogram; (* per-jar transfer time, milliseconds *)
}

let metrics registry =
  { m_fetched = M.counter registry "jars_fetched_total";
    m_delivered = M.counter registry "jars_delivered_total";
    m_failed = M.counter registry "jars_failed_total";
    m_attempts = M.counter registry "fetch_attempts_total";
    m_bytes = M.counter registry "fetch_bytes_total";
    m_jar_ms = M.histogram registry "jar_fetch_ms" }

let observe_fetch m f =
  M.incr m.m_fetched;
  M.incr (if f.delivered then m.m_delivered else m.m_failed);
  M.add m.m_attempts f.attempts;
  M.add m.m_bytes f.bytes_on_wire;
  M.observe m.m_jar_ms (int_of_float (f.fetch_seconds *. 1e3))

let fetch_jars ?faults ?(policy = default_fetch_policy) ?metrics link jars =
  let injector = Option.map Fault.injector faults in
  let spike_s =
    match faults with Some c -> c.Fault.latency_spike_s | None -> 0.0
  in
  (* each jar gets its own split stream so its draws cannot disturb the
     next jar's, whatever its retry count was *)
  List.map
    (fun jar ->
       let injector = Option.map Fault.split injector in
       let fetch = fetch_jar ~injector ~spike_s ~policy link jar in
       (match metrics with Some m -> observe_fetch m fetch | None -> ());
       fetch)
    jars

let fetch_total_seconds fetches =
  List.fold_left (fun acc f -> acc +. f.fetch_seconds) 0.0 fetches

let fetch_total_bytes fetches =
  List.fold_left (fun acc f -> acc + f.bytes_on_wire) 0 fetches

let fetch_failures fetches =
  List.filter_map
    (fun f -> if f.delivered then None else Some f.fetch_jar)
    fetches

let fetch_attempts fetches =
  List.fold_left (fun acc f -> acc + f.attempts) 0 fetches
