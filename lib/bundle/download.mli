(** Applet download-time model.

    "Since the binaries are loaded by the browser the first time the web
    page is accessed, large binaries may require an unreasonable amount of
    time and network bandwidth" (Section 4.4). Time to fetch a jar set
    over HTTP/1.0-style transfers: one round trip of latency per file
    plus payload over bandwidth. *)

type link = {
  bandwidth_bits_per_s : float;
  latency_s : float;  (** one-way propagation *)
}

(** Named link presets used by the benches. *)
val modem_56k : link

val isdn_128k : link
val dsl_1m : link
val lan_10m : link
val lan_100m : link

val link_name : link -> string

(** [jar_seconds link jar] — time for one jar: TCP-ish setup (2 RTTs)
    plus compressed payload over bandwidth. *)
val jar_seconds : link -> Jar.t -> float

(** [jars_seconds link jars] — sequential HTTP/1.0 fetches. *)
val jars_seconds : link -> Jar.t list -> float

(** [update_seconds link ~changed ()] — bytes actually transferred on a
    revisit after a vendor update: the browser cache keeps unchanged
    jars, so only [changed] is re-fetched (the paper's "customers always
    access the latest revisions" advantage, priced). *)
val update_seconds : link -> changed:Jar.t list -> unit -> float

(** {1 Faulty links: retried, resumable fetches}

    The consumer links of Table 1 lose connections mid-transfer. A
    [fetch] models one jar over such a link: drops and disconnects kill
    the transfer at a seeded-random byte offset and the retry resumes
    there (HTTP Range); corruption is only caught by the archive
    checksum after the whole payload arrived, so it restarts from zero;
    latency spikes stretch the connection setup. Deterministic: same
    fault seed, same outcome. *)

type fetch_policy = {
  max_attempts : int;  (** total tries per jar, including the first *)
  base_backoff_s : float;  (** wait before the first retry *)
  backoff_cap_s : float;  (** backoff doubles per retry up to this cap *)
}

(** [default_fetch_policy] — 5 attempts, 0.5 s base backoff capped at
    8 s (browser-ish). *)
val default_fetch_policy : fetch_policy

(** [single_attempt] — no retries: the first fault fails the jar. *)
val single_attempt : fetch_policy

type fetch = {
  fetch_jar : Jar.t;
  delivered : bool;  (** arrived intact within [max_attempts] *)
  attempts : int;
  bytes_on_wire : int;
      (** everything transferred, including dead partial payloads —
          [>= compressed_size] when retries happened *)
  fetch_seconds : float;  (** setup + payload + backoff, all attempts *)
}

(** Download instruments, minted once per registry (a per-call mint
    would collide on names): jar/delivery/failure/attempt/byte counters
    plus a per-jar transfer-time histogram in milliseconds. *)
type metrics

(** [metrics registry] registers [jars_fetched_total],
    [jars_delivered_total], [jars_failed_total], [fetch_attempts_total],
    [fetch_bytes_total] and [jar_fetch_ms] on [registry]. *)
val metrics : Jhdl_metrics.Metrics.t -> metrics

(** [fetch_jars ?faults ?policy ?metrics link jars] — fetch a jar set
    sequentially. Each jar draws from its own split of the fault seed,
    so one jar's retry count never shifts another's faults. Without
    [faults] this degenerates to {!jars_seconds}'s timing with every jar
    delivered. [metrics] is updated once per jar fetched. *)
val fetch_jars :
  ?faults:Jhdl_faults.Fault.config ->
  ?policy:fetch_policy ->
  ?metrics:metrics ->
  link ->
  Jar.t list ->
  fetch list

val fetch_total_seconds : fetch list -> float
val fetch_total_bytes : fetch list -> int

(** [fetch_failures fetches] — jars that never arrived. *)
val fetch_failures : fetch list -> Jar.t list

val fetch_attempts : fetch list -> int
