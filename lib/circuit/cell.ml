open Types

type t = cell

let make ~name ~kind ~parent =
  let cell_name =
    match parent with None -> name | Some p -> unique_name p name
  in
  let c =
    { cell_id = next_cell_id ();
      cell_name;
      kind;
      parent;
      children = [];
      port_bindings = [];
      owned_wires = [];
      properties = [];
      rloc = None;
      names = Hashtbl.create 16 }
  in
  (match parent with
   | None -> ()
   | Some p -> p.children <- c :: p.children);
  c

let root ~name ?type_name () =
  let type_name = Option.value type_name ~default:name in
  make ~name ~kind:(Composite { type_name }) ~parent:None

let check_scope_is_composite ~what parent =
  match parent.kind with
  | Composite _ -> ()
  | Primitive _ ->
    invalid_arg (Printf.sprintf "Cell.%s: parent is a primitive instance" what)

let bind_ports c ports =
  List.iter
    (fun (formal, dir, actual) ->
       c.port_bindings <- { formal; dir; actual } :: c.port_bindings)
    ports

let composite parent ~name ?type_name ~ports () =
  check_scope_is_composite ~what:"composite" parent;
  let type_name = Option.value type_name ~default:name in
  let c = make ~name ~kind:(Composite { type_name }) ~parent:(Some parent) in
  bind_ports c ports;
  c

(* Connecting a primitive port registers one terminal per bit on the
   underlying nets; outputs claim the driver slot, inputs append a sink.
   A second output terminal is a construction error unless the caller
   opts into recording the contention for the design-rule checker. *)
let connect_terminals ?(allow_contention = false) inst ~dir ~port (w : wire) =
  Array.iteri
    (fun i n ->
       let term = { term_cell = inst; term_port = port; term_bit = i } in
       match dir with
       | Input -> n.sinks <- term :: n.sinks
       | Output ->
         (match n.driver with
          | Some prev when not allow_contention ->
            invalid_arg
              (Printf.sprintf
                 "Cell: net %s bit %d already driven by %s.%s; second driver %s.%s"
                 (match n.source_wire with
                  | Some sw -> sw.wire_name
                  | None -> string_of_int n.net_id)
                 n.source_bit prev.term_cell.cell_name prev.term_port
                 inst.cell_name port)
          | Some _ -> n.extra_drivers <- term :: n.extra_drivers
          | None -> n.driver <- Some term))
    w.nets

let prim parent ?name ?allow_contention p ~conns =
  check_scope_is_composite ~what:"prim" parent;
  let base = Option.value name ~default:(String.lowercase_ascii (Prim.name p)) in
  let inst = make ~name:base ~kind:(Primitive p) ~parent:(Some parent) in
  let expected = Prim.port_names p in
  let outputs = Prim.output_ports p in
  let seen = Hashtbl.create 8 in
  List.iter
    (fun (port, w) ->
       if not (List.mem port expected) then
         invalid_arg
           (Printf.sprintf "Cell.prim: %s has no port %s" (Prim.name p) port);
       if Hashtbl.mem seen port then
         invalid_arg (Printf.sprintf "Cell.prim: port %s connected twice" port);
       Hashtbl.replace seen port ();
       if Array.length w.nets <> 1 then
         invalid_arg
           (Printf.sprintf "Cell.prim: port %s of %s needs a 1-bit wire, got %d"
              port (Prim.name p) (Array.length w.nets));
       let dir = if List.mem port outputs then Output else Input in
       connect_terminals ?allow_contention inst ~dir ~port w;
       inst.port_bindings <- { formal = port; dir; actual = w } :: inst.port_bindings)
    conns;
  List.iter
    (fun port ->
       if not (Hashtbl.mem seen port) then
         invalid_arg
           (Printf.sprintf "Cell.prim: port %s of %s left unconnected" port
              (Prim.name p)))
    expected;
  inst

let black_box parent ?name ~model_name ~make_behavior ~ports () =
  check_scope_is_composite ~what:"black_box" parent;
  let p = Prim.Black_box { model_name; make_behavior } in
  let base = Option.value name ~default:(String.lowercase_ascii model_name) in
  let inst = make ~name:base ~kind:(Primitive p) ~parent:(Some parent) in
  List.iter
    (fun (port, dir, w) ->
       connect_terminals inst ~dir ~port w;
       inst.port_bindings <- { formal = port; dir; actual = w } :: inst.port_bindings)
    ports;
  inst

let name c = c.cell_name
let id c = c.cell_id

let rec path c =
  match c.parent with
  | None -> c.cell_name
  | Some p -> path p ^ "/" ^ c.cell_name

let parent c = c.parent
let children c = List.rev c.children
let port_bindings c = List.rev c.port_bindings

let owned_wires c =
  List.filter (fun w -> not w.wire_is_view) (List.rev c.owned_wires)

let is_primitive c =
  match c.kind with Primitive _ -> true | Composite _ -> false

let prim_of c =
  match c.kind with Primitive p -> Some p | Composite _ -> None

let type_name c =
  match c.kind with
  | Composite { type_name } -> type_name
  | Primitive p -> Prim.name p

let set_property c key value =
  c.properties <- (key, value) :: List.remove_assoc key c.properties

let get_property c key = List.assoc_opt key c.properties
let properties c = List.rev c.properties
let set_rloc c ~row ~col = c.rloc <- Some (row, col)
let rloc c = c.rloc
let clear_rloc c = c.rloc <- None

let rec iter_rec f c =
  f c;
  List.iter (iter_rec f) (children c)

let fold_prims f acc c =
  let acc = ref acc in
  iter_rec (fun c -> if is_primitive c then acc := f !acc c) c;
  !acc

let find_child c name =
  List.find_opt (fun child -> String.equal child.cell_name name) c.children

let find_path c p =
  let segments = String.split_on_char '/' p in
  let rec go c = function
    | [] -> Some c
    | seg :: rest ->
      (match find_child c seg with None -> None | Some child -> go child rest)
  in
  go c (List.filter (fun s -> s <> "") segments)

let equal a b = a.cell_id = b.cell_id

let pp fmt c =
  Format.fprintf fmt "%s:%s" (path c) (type_name c)
