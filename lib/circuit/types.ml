type dir =
  | Input
  | Output

type net = {
  net_id : int;
  mutable driver : terminal option;
  mutable extra_drivers : terminal list;
      (* further output terminals claiming an already-driven net;
         contention recorded for the design-rule checker *)
  mutable sinks : terminal list;
  mutable source_wire : wire option;
  mutable source_bit : int;
}

and terminal = {
  term_cell : cell;
  term_port : string;
  term_bit : int;
}

and wire = {
  wire_id : int;
  wire_name : string;
  wire_owner : cell;
  nets : net array;
  wire_is_view : bool;
}

and cell = {
  cell_id : int;
  cell_name : string;
  kind : kind;
  parent : cell option;
  mutable children : cell list;
  mutable port_bindings : port_binding list;
  mutable owned_wires : wire list;
  mutable properties : (string * string) list;
  mutable rloc : (int * int) option;
  names : (string, int) Hashtbl.t;
}

and kind =
  | Composite of { mutable type_name : string }
  | Primitive of Prim.t

and port_binding = {
  formal : string;
  dir : dir;
  actual : wire;
}

let counter () =
  let n = ref 0 in
  fun () ->
    incr n;
    !n

let next_net_id = counter ()
let next_wire_id = counter ()
let next_cell_id = counter ()

let unique_name cell base =
  match Hashtbl.find_opt cell.names base with
  | None ->
    Hashtbl.replace cell.names base 0;
    base
  | Some n ->
    let rec pick k =
      let candidate = Printf.sprintf "%s_%d" base k in
      if Hashtbl.mem cell.names candidate then pick (k + 1)
      else begin
        Hashtbl.replace cell.names base k;
        Hashtbl.replace cell.names candidate 0;
        candidate
      end
    in
    pick (n + 1)
