open Types

type t = wire

let create owner ?(name = "w") width =
  if width < 1 then invalid_arg "Wire.create: width must be >= 1";
  (match owner.kind with
   | Composite _ -> ()
   | Primitive _ -> invalid_arg "Wire.create: owner is a primitive instance");
  let wire_name = unique_name owner name in
  let nets =
    Array.init width (fun i ->
      { net_id = next_net_id ();
        driver = None;
        extra_drivers = [];
        sinks = [];
        source_wire = None;
        source_bit = i })
  in
  let w =
    { wire_id = next_wire_id (); wire_name; wire_owner = owner; nets;
      wire_is_view = false }
  in
  Array.iter (fun n -> n.source_wire <- Some w) nets;
  owner.owned_wires <- w :: owner.owned_wires;
  w

let name w = w.wire_name
let owner w = w.wire_owner
let width w = Array.length w.nets

let rec cell_path c =
  match c.parent with
  | None -> c.cell_name
  | Some p -> cell_path p ^ "/" ^ c.cell_name

let full_name w = cell_path w.wire_owner ^ "/" ^ w.wire_name

let net w i =
  if i < 0 || i >= Array.length w.nets then
    invalid_arg
      (Printf.sprintf "Wire.net: bit %d of %d-bit wire %s" i
         (Array.length w.nets) w.wire_name);
  w.nets.(i)

let nets w = w.nets

let view ~owner ~name nets =
  { wire_id = next_wire_id ();
    wire_name = name;
    wire_owner = owner;
    nets;
    wire_is_view = true }

let bit w i =
  let n = net w i in
  view ~owner:w.wire_owner
    ~name:(Printf.sprintf "%s[%d]" w.wire_name i)
    [| n |]

let slice w ~lo ~hi =
  if lo < 0 || hi >= Array.length w.nets || lo > hi then
    invalid_arg
      (Printf.sprintf "Wire.slice: [%d:%d] of %d-bit wire %s" hi lo
         (Array.length w.nets) w.wire_name);
  view ~owner:w.wire_owner
    ~name:(Printf.sprintf "%s[%d:%d]" w.wire_name hi lo)
    (Array.sub w.nets lo (hi - lo + 1))

let concat hi lo =
  view ~owner:lo.wire_owner
    ~name:(Printf.sprintf "{%s,%s}" hi.wire_name lo.wire_name)
    (Array.append lo.nets hi.nets)

let is_view w = w.wire_is_view
let equal a b = a.wire_id = b.wire_id
let pp fmt w = Format.fprintf fmt "%s<%d>" w.wire_name (width w)
