open Types

type source = {
  inst : cell;
  prim : Prim.t;
  in_ports : (string * net array) list;
  out_ports : (string * net array) list;
}

let source_of c =
  match c.kind with
  | Composite _ -> None
  | Primitive prim ->
    let ins = ref [] and outs = ref [] in
    List.iter
      (fun b ->
         match b.dir with
         | Input -> ins := (b.formal, b.actual.nets) :: !ins
         | Output -> outs := (b.formal, b.actual.nets) :: !outs)
      c.port_bindings;
    Some { inst = c; prim; in_ports = !ins; out_ports = !outs }

let sources_of_root root =
  List.rev
    (Cell.fold_prims
       (fun acc c ->
          match source_of c with Some s -> s :: acc | None -> acc)
       [] root)

(* Ports whose value combinationally affects the primitive's outputs.
   Register-style elements only pass asynchronous controls through;
   memories pass their asynchronous read address. *)
let comb_input_ports = function
  | Prim.Lut init ->
    List.init (Jhdl_logic.Lut_init.inputs init) (Printf.sprintf "I%d")
  | Prim.Ff { async_clear; _ } -> if async_clear then [ "CLR" ] else []
  | Prim.Muxcy -> [ "S"; "DI"; "CI" ]
  | Prim.Xorcy -> [ "LI"; "CI" ]
  | Prim.Mult_and -> [ "I0"; "I1" ]
  | Prim.Srl16 _ -> [ "A0"; "A1"; "A2"; "A3" ]
  | Prim.Ram16x1 _ -> [ "A0"; "A1"; "A2"; "A3" ]
  | Prim.Buf | Prim.Inv -> [ "I" ]
  | Prim.Gnd | Prim.Vcc -> []
  | Prim.Black_box _ -> [] (* special-cased: all declared inputs *)

let comb_inputs s =
  match s.prim with
  | Prim.Black_box _ -> List.map fst s.in_ports
  | p -> comb_input_ports p

exception Cycle of cell list

(* Canonical membership of the combinational cycles among the nodes Kahn
   could not process: the non-trivial strongly connected components of
   the stuck subgraph (Kosaraju), reported in hierarchy order. *)
let canonical_cycle nodes stuck_key successors node_key =
  let stuck = List.filter (fun n -> stuck_key n) nodes in
  let stuck_ids = Hashtbl.create 16 in
  List.iter (fun n -> Hashtbl.replace stuck_ids (node_key n) ()) stuck;
  let succs_of n =
    Option.value (Hashtbl.find_opt successors (node_key n)) ~default:[]
    |> List.filter (fun m -> Hashtbl.mem stuck_ids (node_key m))
  in
  (* forward DFS finish order *)
  let visited = Hashtbl.create 16 in
  let finish = ref [] in
  let rec dfs n =
    if not (Hashtbl.mem visited (node_key n)) then begin
      Hashtbl.replace visited (node_key n) ();
      List.iter dfs (succs_of n);
      finish := n :: !finish
    end
  in
  List.iter dfs stuck;
  (* transpose adjacency *)
  let preds = Hashtbl.create 16 in
  List.iter
    (fun n ->
       List.iter
         (fun m ->
            Hashtbl.replace preds (node_key m)
              (n :: Option.value (Hashtbl.find_opt preds (node_key m)) ~default:[]))
         (succs_of n))
    stuck;
  let component = Hashtbl.create 16 in
  let comp_counter = ref 0 in
  let rec assign n c =
    if not (Hashtbl.mem component (node_key n)) then begin
      Hashtbl.replace component (node_key n) c;
      List.iter
        (fun m -> assign m c)
        (Option.value (Hashtbl.find_opt preds (node_key n)) ~default:[])
    end
  in
  List.iter
    (fun n ->
       if not (Hashtbl.mem component (node_key n)) then begin
         incr comp_counter;
         assign n !comp_counter
       end)
    !finish;
  let comp_size = Hashtbl.create 16 in
  List.iter
    (fun n ->
       let c = Hashtbl.find component (node_key n) in
       Hashtbl.replace comp_size c
         (1 + Option.value (Hashtbl.find_opt comp_size c) ~default:0))
    stuck;
  let self_loop n = List.exists (fun m -> node_key m = node_key n) (succs_of n) in
  List.filter
    (fun n ->
       let c = Hashtbl.find component (node_key n) in
       Hashtbl.find comp_size c > 1 || self_loop n)
    stuck

(* Kahn levelization over combinational edges. The construction and
   traversal order is part of the contract: the compiled simulator's
   rank numbering (and therefore its differential tests against the
   reference interpreter) depend on it. *)
let levelize nodes =
  let driver_node = Hashtbl.create 256 in
  List.iter
    (fun node ->
       List.iter
         (fun (_, nets) ->
            Array.iter (fun n -> Hashtbl.replace driver_node n.net_id node) nets)
         node.out_ports)
    nodes;
  let node_key node = node.inst.cell_id in
  let in_degree = Hashtbl.create 256 in
  let successors = Hashtbl.create 256 in
  List.iter (fun node -> Hashtbl.replace in_degree (node_key node) 0) nodes;
  List.iter
    (fun node ->
       List.iter
         (fun port ->
            match List.assoc_opt port node.in_ports with
            | None -> ()
            | Some nets ->
              Array.iter
                (fun n ->
                   match Hashtbl.find_opt driver_node n.net_id with
                   | None -> ()
                   | Some producer ->
                     Hashtbl.replace in_degree (node_key node)
                       (Hashtbl.find in_degree (node_key node) + 1);
                     Hashtbl.replace successors (node_key producer)
                       (node
                        :: Option.value
                          (Hashtbl.find_opt successors (node_key producer))
                          ~default:[]))
                nets)
         (comb_inputs node))
    nodes;
  let queue = Queue.create () in
  let level = Hashtbl.create 256 in
  List.iter
    (fun node ->
       if Hashtbl.find in_degree (node_key node) = 0 then begin
         Hashtbl.replace level (node_key node) 0;
         Queue.add node queue
       end)
    nodes;
  let order = ref [] in
  let processed = ref 0 in
  let max_level = ref 0 in
  while not (Queue.is_empty queue) do
    let node = Queue.pop queue in
    order := node :: !order;
    incr processed;
    let lv = Hashtbl.find level (node_key node) in
    max_level := max !max_level lv;
    List.iter
      (fun succ ->
         let d = Hashtbl.find in_degree (node_key succ) - 1 in
         Hashtbl.replace in_degree (node_key succ) d;
         let prev = Option.value (Hashtbl.find_opt level (node_key succ)) ~default:0 in
         Hashtbl.replace level (node_key succ) (max prev (lv + 1));
         if d = 0 then Queue.add succ queue)
      (Option.value (Hashtbl.find_opt successors (node_key node)) ~default:[])
  done;
  if !processed <> List.length nodes then begin
    let cyclic =
      canonical_cycle nodes
        (fun n -> Hashtbl.find in_degree (node_key n) > 0)
        successors node_key
    in
    raise (Cycle (List.map (fun n -> n.inst) cyclic))
  end;
  let order = Array.of_list (List.rev !order) in
  let level_of = Array.map (fun n -> Hashtbl.find level (node_key n)) order in
  order, level_of, !max_level

let find_cycle root =
  match levelize (sources_of_root root) with
  | _ -> None
  | exception Cycle cells -> Some cells
