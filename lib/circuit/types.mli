(** Shared structural types of the circuit data structure.

    These types are mutually recursive, so they live together here; the
    {!Wire}, {!Cell} and {!Design} modules provide the operations. The
    representation is deliberately transparent — the paper's central point
    is an {e open API} to the circuit structure, on which viewers,
    netlisters, estimators and other application-specific tools are built.

    A {e net} is an atomic electrical node (one bit). A {e wire} is a named
    vector of nets created within a cell scope, as in JHDL's
    [new Wire(this, width)]. A {e cell} is a node of the design hierarchy:
    either a composite cell containing children, or a primitive instance
    described by {!Prim.t}. Primitive port connections register
    driver/sink terminals on nets; composite cells bind formal ports to
    wires of their parent scope without creating terminals, since JHDL
    wires connect straight through levels of hierarchy. *)

type dir =
  | Input
  | Output

type net = {
  net_id : int;
  mutable driver : terminal option;
  mutable extra_drivers : terminal list;
      (** output terminals beyond the first on a contended net; only
          populated through {!Cell.prim}'s [allow_contention] escape
          hatch, and reported by {!Design.validate} *)
  mutable sinks : terminal list;
  mutable source_wire : wire option;
      (** wire that created this net, for naming; set at wire creation *)
  mutable source_bit : int;
}

and terminal = {
  term_cell : cell;  (** always a primitive instance *)
  term_port : string;
  term_bit : int;  (** bit index within the port *)
}

and wire = {
  wire_id : int;
  wire_name : string;
  wire_owner : cell;
  nets : net array;  (** index 0 = LSB *)
  wire_is_view : bool;  (** true for slices/concats; not a declared signal *)
}

and cell = {
  cell_id : int;
  cell_name : string;  (** unique among siblings *)
  kind : kind;
  parent : cell option;
  mutable children : cell list;  (** reverse creation order *)
  mutable port_bindings : port_binding list;  (** reverse creation order *)
  mutable owned_wires : wire list;  (** reverse creation order *)
  mutable properties : (string * string) list;
  mutable rloc : (int * int) option;  (** relative placement (row, col) *)
  names : (string, int) Hashtbl.t;  (** name manager for this scope *)
}

and kind =
  | Composite of { mutable type_name : string }
      (** [type_name] groups instances sharing one definition in
          hierarchical netlists *)
  | Primitive of Prim.t

and port_binding = {
  formal : string;
  dir : dir;
  actual : wire;
}

(** Fresh unique ids for nets, wires and cells. *)
val next_net_id : unit -> int

val next_wire_id : unit -> int
val next_cell_id : unit -> int

(** [unique_name cell base] returns [base] if unused in [cell]'s scope,
    otherwise [base_1], [base_2], ... and records the result. *)
val unique_name : cell -> string -> string
