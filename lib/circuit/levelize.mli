(** Canonical combinational-graph walk over primitive instances.

    Every layer that needs the combinational dependency structure of a
    design — the design-rule checker, both simulator kernels, the static
    timing estimator and the lint engine — used to rebuild it with its
    own notion of which primitive ports are combinational, and each
    reported a different cell list for the same combinational loop. This
    module is the single shared definition: one port table, one Kahn
    levelization, one canonical cycle report.

    The canonical cycle report lists exactly the instances that lie on a
    combinational cycle (the members of non-trivial strongly connected
    components of the combinational graph), in hierarchy order. *)

open Types

(** A primitive instance viewed as a graph node: its input and output
    port bindings expanded to net arrays. *)
type source = {
  inst : cell;
  prim : Prim.t;
  in_ports : (string * net array) list;
  out_ports : (string * net array) list;
}

(** [source_of c] is [None] for composite cells. *)
val source_of : cell -> source option

(** [sources_of_root root] — every primitive instance under [root], in
    hierarchy order. *)
val sources_of_root : cell -> source list

(** Ports whose value combinationally affects the primitive's outputs.
    Black boxes are special-cased by {!comb_inputs}: all declared
    inputs. *)
val comb_input_ports : Prim.t -> string list

val comb_inputs : source -> string list

exception
  Cycle of cell list
      (** the canonical cycle membership: instances on combinational
          cycles, in hierarchy order *)

(** [levelize sources] — Kahn levelization over combinational edges.
    Returns [(order, level_of, max_level)]: nodes in topological order,
    the level of each node of [order], and the maximum level. Raises
    {!Cycle} when the combinational graph is cyclic. *)
val levelize : source list -> source array * int array * int

(** [find_cycle root] — [Some cells] (canonical membership, hierarchy
    order) when the combinational graph under [root] has a cycle. *)
val find_cycle : cell -> cell list option
