open Types

type port = {
  port_name : string;
  port_dir : dir;
  port_wire : Wire.t;
}

type t = {
  design_root : cell;
  mutable design_ports : port list; (* reverse order *)
}

let create root =
  (match root.parent with
   | None -> ()
   | Some _ -> invalid_arg "Design.create: cell is not a root");
  { design_root = root; design_ports = [] }

let root d = d.design_root
let name d = d.design_root.cell_name

let add_port d port_name port_dir port_wire =
  if not (Cell.equal port_wire.wire_owner d.design_root) then
    invalid_arg
      (Printf.sprintf "Design.add_port: wire %s not owned by the root cell"
         port_wire.wire_name);
  if port_wire.wire_is_view then
    invalid_arg "Design.add_port: wire is a slice/concat view";
  if List.exists (fun p -> String.equal p.port_name port_name) d.design_ports
  then invalid_arg (Printf.sprintf "Design.add_port: duplicate port %s" port_name);
  d.design_ports <- { port_name; port_dir; port_wire } :: d.design_ports

let ports d = List.rev d.design_ports
let inputs d = List.filter (fun p -> p.port_dir = Input) (ports d)
let outputs d = List.filter (fun p -> p.port_dir = Output) (ports d)

let find_port d n =
  List.find_opt (fun p -> String.equal p.port_name n) d.design_ports

type violation =
  | Undriven_net of { wire : string; bit : int; sink_count : int }
  | Contended_net of { wire : string; bit : int; drivers : string list }
  | Dangling_driver of { wire : string; bit : int }
  | Combinational_loop of { cells : string list }
  | Port_wire_not_root of { port : string }

let pp_violation fmt = function
  | Undriven_net { wire; bit; sink_count } ->
    Format.fprintf fmt "undriven net %s[%d] with %d sink(s)" wire bit sink_count
  | Contended_net { wire; bit; drivers } ->
    Format.fprintf fmt "net %s[%d] driven by %d sources: %s" wire bit
      (List.length drivers)
      (String.concat ", " drivers)
  | Dangling_driver { wire; bit } ->
    Format.fprintf fmt "driven net %s[%d] has no sinks" wire bit
  | Combinational_loop { cells } ->
    Format.fprintf fmt "combinational loop through: %s"
      (String.concat " -> " cells)
  | Port_wire_not_root { port } ->
    Format.fprintf fmt "port %s wire is not a root wire" port

let net_label n =
  match n.source_wire with
  | Some w -> Wire.full_name w
  | None -> Printf.sprintf "net#%d" n.net_id

let all_nets d =
  let seen = Hashtbl.create 256 in
  let acc = ref [] in
  Cell.iter_rec
    (fun c ->
       List.iter
         (fun w ->
            if not w.wire_is_view then
              Array.iter
                (fun n ->
                   if not (Hashtbl.mem seen n.net_id) then begin
                     Hashtbl.replace seen n.net_id ();
                     acc := n :: !acc
                   end)
                w.nets)
         (List.rev c.owned_wires))
    d.design_root;
  List.rev !acc

let all_prims d =
  List.rev (Cell.fold_prims (fun acc c -> c :: acc) [] d.design_root)

(* Cycle detection delegates to the shared levelization walk so the
   validator, the simulators and the timing estimator all report the same
   canonical cell set for a given loop. *)
let find_comb_loop d =
  Option.map (List.map Cell.path) (Levelize.find_cycle d.design_root)

let term_label t =
  Printf.sprintf "%s.%s" (Cell.path t.term_cell) t.term_port

let validate d =
  let violations = ref [] in
  let add v = violations := v :: !violations in
  List.iter
    (fun p ->
       if not (Cell.equal p.port_wire.wire_owner d.design_root) then
         add (Port_wire_not_root { port = p.port_name }))
    (ports d);
  let input_nets = Hashtbl.create 64 in
  let output_nets = Hashtbl.create 64 in
  List.iter
    (fun p ->
       let table = if p.port_dir = Input then input_nets else output_nets in
       Array.iter (fun n -> Hashtbl.replace table n.net_id ()) p.port_wire.nets)
    (ports d);
  List.iter
    (fun n ->
       (match n.driver with
        | None ->
          if n.sinks <> [] && not (Hashtbl.mem input_nets n.net_id) then
            add
              (Undriven_net
                 { wire = net_label n;
                   bit = n.source_bit;
                   sink_count = List.length n.sinks })
        | Some drv ->
          if n.sinks = [] && not (Hashtbl.mem output_nets n.net_id) then
            add (Dangling_driver { wire = net_label n; bit = n.source_bit });
          (* Multiple drivers: extra output terminals recorded through the
             allow_contention escape hatch, or an internal driver fighting
             the top-level input port bound to the same net. *)
          let drivers =
            (if Hashtbl.mem input_nets n.net_id then [ "top-level input port" ]
             else [])
            @ List.map term_label (drv :: List.rev n.extra_drivers)
          in
          if List.length drivers > 1 then
            add
              (Contended_net
                 { wire = net_label n; bit = n.source_bit; drivers })))
    (all_nets d);
  (match find_comb_loop d with
   | None -> ()
   | Some cells -> add (Combinational_loop { cells }));
  List.rev !violations

let errors d =
  List.filter
    (function
      | Dangling_driver _ -> false
      | Undriven_net _ | Contended_net _ | Combinational_loop _
      | Port_wire_not_root _ -> true)
    (validate d)

type stats = {
  composite_cells : int;
  primitive_instances : int;
  nets : int;
  declared_wires : int;
  max_depth : int;
  prims_by_type : (string * int) list;
}

let stats d =
  let composites = ref 0 and prims = ref 0 and wires = ref 0 in
  let by_type = Hashtbl.create 16 in
  let max_depth = ref 0 in
  let rec depth c = match c.parent with None -> 0 | Some p -> 1 + depth p in
  Cell.iter_rec
    (fun c ->
       (match c.kind with
        | Composite _ -> incr composites
        | Primitive p ->
          incr prims;
          let key = Prim.name p in
          Hashtbl.replace by_type key
            (1 + Option.value (Hashtbl.find_opt by_type key) ~default:0));
       wires := !wires + List.length (Cell.owned_wires c);
       max_depth := max !max_depth (depth c))
    d.design_root;
  { composite_cells = !composites;
    primitive_instances = !prims;
    nets = List.length (all_nets d);
    declared_wires = !wires;
    max_depth = !max_depth;
    prims_by_type =
      Hashtbl.fold (fun k v acc -> (k, v) :: acc) by_type []
      |> List.sort (fun (a, _) (b, _) -> String.compare a b) }

let pp_stats fmt s =
  Format.fprintf fmt
    "@[<v>cells: %d composite, %d primitive@,nets: %d (from %d wires)@,depth: %d@,%a@]"
    s.composite_cells s.primitive_instances s.nets s.declared_wires s.max_depth
    (Format.pp_print_list ~pp_sep:Format.pp_print_cut (fun fmt (t, n) ->
       Format.fprintf fmt "  %-10s %d" t n))
    s.prims_by_type
