(** A design: a root cell plus its external interface.

    Top-level ports declare which root-scope wires the outside world (a
    testbench, the simulator, or a netlist's entity interface) drives and
    observes. *)

type t

type port = {
  port_name : string;
  port_dir : Types.dir;
  port_wire : Wire.t;
}

(** [create root] wraps a root cell created with {!Cell.root}. *)
val create : Cell.t -> t

val root : t -> Cell.t
val name : t -> string

(** [add_port d name dir wire] declares a top-level port. The wire must be
    owned by the root cell and not be a view. *)
val add_port : t -> string -> Types.dir -> Wire.t -> unit

val ports : t -> port list
val inputs : t -> port list
val outputs : t -> port list
val find_port : t -> string -> port option

(** Design-rule violations found by {!validate}. *)
type violation =
  | Undriven_net of { wire : string; bit : int; sink_count : int }
      (** a net with sinks but no driver and no top-level input binding *)
  | Contended_net of { wire : string; bit : int; drivers : string list }
      (** a net with more than one driving source: extra output terminals
          recorded via {!Cell.prim}'s [allow_contention], or an internal
          driver on a net also bound to a top-level input port *)
  | Dangling_driver of { wire : string; bit : int }
      (** a driven net with no sinks and no top-level output binding;
          reported as a warning-level violation *)
  | Combinational_loop of { cells : string list }
      (** instance paths forming a cycle through combinational logic *)
  | Port_wire_not_root of { port : string }

(** [validate d] returns all violations ([] means clean). *)
val validate : t -> violation list

val pp_violation : Format.formatter -> violation -> unit

(** [errors d] is [validate d] without [Dangling_driver] warnings. *)
val errors : t -> violation list

type stats = {
  composite_cells : int;
  primitive_instances : int;
  nets : int;
  declared_wires : int;
  max_depth : int;
  prims_by_type : (string * int) list;  (** sorted by name *)
}

val stats : t -> stats
val pp_stats : Format.formatter -> stats -> unit

(** [all_prims d] lists every primitive instance, in hierarchy order. *)
val all_prims : t -> Cell.t list

(** [all_nets d] lists every net reachable from declared wires of the
    design, without duplicates, in creation order. *)
val all_nets : t -> Types.net list
