(** Cells: nodes of the design hierarchy.

    A composite cell groups children and declares formal ports bound to
    wires of its parent scope, exactly like a JHDL class constructor that
    receives parent wires. A primitive instance is a leaf carrying a
    {!Prim.t}; connecting its ports registers driver/sink terminals on the
    underlying nets, which is what the simulator and the design-rule
    checker consume. *)

type t = Types.cell

(** [root ~name ()] creates a top-level composite cell. [type_name]
    defaults to [name]. *)
val root : name:string -> ?type_name:string -> unit -> t

(** [composite parent ~name ~ports] creates a child composite cell. Each
    port binds a formal name and direction to an actual wire of the
    enclosing scope. The instance name is made unique among siblings.
    [type_name] defaults to [name] and identifies the cell definition in
    hierarchical netlists. *)
val composite :
  t ->
  name:string ->
  ?type_name:string ->
  ports:(string * Types.dir * Wire.t) list ->
  unit ->
  t

(** [prim parent ~name p ~conns] instances primitive [p]. [conns] binds
    each primitive port to a wire; widths must match (standard primitives
    have 1-bit ports). Directions are taken from {!Prim.output_ports}.
    Raises [Invalid_argument] on unknown or missing ports, width
    mismatches, or when an output port's net already has a driver — unless
    [allow_contention] is set, in which case the extra output terminal is
    recorded on the net's [extra_drivers] list for {!Design.validate} and
    the lint engine to report. *)
val prim :
  t ->
  ?name:string ->
  ?allow_contention:bool ->
  Prim.t ->
  conns:(string * Wire.t) list ->
  t

(** [black_box parent ~name ~model_name ~make_behavior ~ports] instances a
    behavioural black box with explicitly-directed, possibly wide ports. *)
val black_box :
  t ->
  ?name:string ->
  model_name:string ->
  make_behavior:(unit -> Prim.behavior) ->
  ports:(string * Types.dir * Wire.t) list ->
  unit ->
  t

val name : t -> string
val id : t -> int

(** [path c] is the hierarchical instance path, e.g. ["top/fir/kcm0"]. *)
val path : t -> string

val parent : t -> t option

(** [children c] in creation order. *)
val children : t -> t list

(** [port_bindings c] in creation order. *)
val port_bindings : t -> Types.port_binding list

(** [owned_wires c] in creation order, declared wires only (no views). *)
val owned_wires : t -> Wire.t list

val is_primitive : t -> bool

(** [prim_of c] is the primitive descriptor of a leaf instance. *)
val prim_of : t -> Prim.t option

(** [type_name c] is the definition name for composites, the library cell
    name for primitives. *)
val type_name : t -> string

(** Properties are free-form string pairs attached to any cell (the paper
    uses them for technology mapping constraints and we additionally use
    them for watermarks). [set_property] replaces an existing key. *)
val set_property : t -> string -> string -> unit

val get_property : t -> string -> string option
val properties : t -> (string * string) list

(** Relative placement, JHDL-style: (row, col) within the parent macro. *)
val set_rloc : t -> row:int -> col:int -> unit

val rloc : t -> (int * int) option

(** [clear_rloc c] removes the placement attribute (used by the
    placement ablation to strip a pre-placed macro). *)
val clear_rloc : t -> unit

(** [iter_rec f c] applies [f] to [c] and every descendant, parents before
    children. *)
val iter_rec : (t -> unit) -> t -> unit

(** [fold_prims f acc c] folds over all primitive instances below (and
    including) [c]. *)
val fold_prims : ('a -> t -> 'a) -> 'a -> t -> 'a

(** [find_child c name] looks up a direct child by instance name. *)
val find_child : t -> string -> t option

(** [find_path c path] resolves a ["a/b/c"] instance path below [c]. *)
val find_path : t -> string -> t option

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
