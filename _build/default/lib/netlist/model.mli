(** Flattened netlist model: the data interchange API.

    This is the paper's "open API for converting a JHDL circuit object into
    a user-defined data interchange format" (Section 2.2). A design is
    flattened to primitive instances with hierarchical names; each writer
    (EDIF, VHDL, Verilog — or a user-defined format) renders this model.
    Placement attributes and LUT INITs are carried as instance
    attributes. *)

type attribute = {
  attr_name : string;  (** e.g. ["INIT"], ["RLOC"] *)
  attr_value : string;
}

type connection = {
  conn_port : string;  (** formal port on the library cell *)
  conn_dir : Jhdl_circuit.Types.dir;
  conn_net : int;  (** index into the model's net array *)
}

type instance = {
  inst_name : string;  (** flattened hierarchical name *)
  inst_lib_cell : string;  (** library cell, e.g. ["LUT4"], ["FDCE"] *)
  inst_prim : Jhdl_circuit.Prim.t;
  inst_conns : connection list;
  inst_attrs : attribute list;
}

type net_info = {
  net_name : string;
  net_index : int;
  driver_instance : int option;  (** index into instances *)
  sink_count : int;
}

type port_info = {
  p_name : string;
  p_dir : Jhdl_circuit.Types.dir;
  p_width : int;
  p_nets : int array;  (** net index per bit, LSB first *)
}

type t = {
  design_name : string;
  ports : port_info list;
  nets : net_info array;
  instances : instance array;
}

(** [of_design d] flattens [d]. Nets with neither terminals nor a port
    binding are dropped. Names are hierarchical paths joined with ['/'];
    writers legalize them per output format. *)
val of_design : Jhdl_circuit.Design.t -> t

(** [lib_cells m] is the sorted list of distinct library cells used, with
    their port lists [(name, dir)] — what a writer needs to emit component
    or cell declarations. Black-box ports are taken from the first
    instance encountered. *)
val lib_cells : t -> (string * (string * Jhdl_circuit.Types.dir) list) list

(** [instance_count m] and [net_count m]. *)
val instance_count : t -> int

val net_count : t -> int
