(** The interchange formats JHDL supports, as a first-class choice for
    applet configuration (the vendor picks which formats a licensed
    customer may export). *)

type t =
  | Edif
  | Vhdl
  | Verilog

val all : t list
val to_string : t -> string

(** [of_string s] accepts case-insensitive names and common file
    extensions ("edif"/"edn", "vhdl"/"vhd", "verilog"/"v"). *)
val of_string : string -> t option

val file_extension : t -> string

(** [write fmt model] renders [model] in the chosen format. *)
val write : t -> Model.t -> string

val pp : Format.formatter -> t -> unit
