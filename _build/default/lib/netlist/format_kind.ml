type t =
  | Edif
  | Vhdl
  | Verilog

let all = [ Edif; Vhdl; Verilog ]

let to_string = function
  | Edif -> "EDIF"
  | Vhdl -> "VHDL"
  | Verilog -> "Verilog"

let of_string s =
  match String.lowercase_ascii s with
  | "edif" | "edn" -> Some Edif
  | "vhdl" | "vhd" -> Some Vhdl
  | "verilog" | "v" -> Some Verilog
  | _ -> None

let file_extension = function
  | Edif -> "edn"
  | Vhdl -> "vhd"
  | Verilog -> "v"

let write fmt model =
  match fmt with
  | Edif -> Edif.to_string model
  | Vhdl -> Vhdl.to_string model
  | Verilog -> Verilog.to_string model

let pp fmt_ t = Format.pp_print_string fmt_ (to_string t)
