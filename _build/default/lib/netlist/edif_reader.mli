(** EDIF reader: a small s-expression parser plus extraction of the
    netlist skeleton from EDIF 2.0.0 text.

    Exists so the test suite (and a receiving customer's flow) can check
    a generated netlist structurally — parse it back, count instances and
    nets, recover INIT properties — rather than trusting the writer. *)

type sexp =
  | Atom of string
  | List of sexp list

(** [parse s] — [Error message] on malformed input (with position). *)
val parse : string -> (sexp, string) result

type summary = {
  design_name : string;
  library_cells : string list;  (** declared technology cells, sorted *)
  instance_count : int;
  net_count : int;
  port_count : int;  (** external ports of the design cell *)
  init_properties : (string * string) list;
      (** (instance, INIT value) pairs, in document order *)
}

(** [summarize sexp] — walks a parsed EDIF document. [Error _] when the
    document does not have the expected shape. *)
val summarize : sexp -> (summary, string) result

(** [read s] = parse then summarize. *)
val read : string -> (summary, string) result
