open Jhdl_circuit.Types
module Cell = Jhdl_circuit.Cell
module Wire = Jhdl_circuit.Wire
module Design = Jhdl_circuit.Design
module Prim = Jhdl_circuit.Prim
module Lut_init = Jhdl_logic.Lut_init
module Bit = Jhdl_logic.Bit

type attribute = {
  attr_name : string;
  attr_value : string;
}

type connection = {
  conn_port : string;
  conn_dir : dir;
  conn_net : int;
}

type instance = {
  inst_name : string;
  inst_lib_cell : string;
  inst_prim : Prim.t;
  inst_conns : connection list;
  inst_attrs : attribute list;
}

type net_info = {
  net_name : string;
  net_index : int;
  driver_instance : int option;
  sink_count : int;
}

type port_info = {
  p_name : string;
  p_dir : dir;
  p_width : int;
  p_nets : int array;
}

type t = {
  design_name : string;
  ports : port_info list;
  nets : net_info array;
  instances : instance array;
}

(* Path of a cell relative to the design root ("" for the root itself). *)
let relative_path root c =
  let full = Cell.path c and root_name = Cell.name root in
  if String.equal full root_name then ""
  else String.sub full (String.length root_name + 1)
         (String.length full - String.length root_name - 1)

let net_base_name root n =
  match n.source_wire with
  | None -> Printf.sprintf "net%d" n.net_id
  | Some w ->
    let owner_path = relative_path root w.wire_owner in
    let base =
      if owner_path = "" then w.wire_name else owner_path ^ "/" ^ w.wire_name
    in
    if Array.length w.nets = 1 then base
    else Printf.sprintf "%s[%d]" base n.source_bit

let prim_attributes prim =
  match prim with
  | Prim.Lut init -> [ { attr_name = "INIT"; attr_value = Lut_init.to_hex init } ]
  | Prim.Srl16 { init } | Prim.Ram16x1 { init } ->
    [ { attr_name = "INIT"; attr_value = Printf.sprintf "%04X" init } ]
  | Prim.Ff { init; _ } ->
    [ { attr_name = "INIT";
        attr_value = (match init with Bit.One -> "1" | Bit.Zero | Bit.X | Bit.Z -> "0") } ]
  | Prim.Muxcy | Prim.Xorcy | Prim.Mult_and | Prim.Buf | Prim.Inv | Prim.Gnd
  | Prim.Vcc | Prim.Black_box _ -> []

let of_design d =
  let root = Design.root d in
  (* keep nets that touch a primitive or a top-level port *)
  let port_net_ids = Hashtbl.create 64 in
  List.iter
    (fun p ->
       Array.iter
         (fun n -> Hashtbl.replace port_net_ids n.net_id ())
         (Wire.nets p.Design.port_wire))
    (Design.ports d);
  let keep n =
    n.driver <> None || n.sinks <> [] || Hashtbl.mem port_net_ids n.net_id
  in
  let kept_nets = List.filter keep (Design.all_nets d) in
  let net_index = Hashtbl.create 256 in
  List.iteri (fun i n -> Hashtbl.replace net_index n.net_id i) kept_nets;
  let prims = Design.all_prims d in
  let inst_index = Hashtbl.create 256 in
  List.iteri (fun i c -> Hashtbl.replace inst_index c.cell_id i) prims;
  let instance_of c =
    match Cell.prim_of c with
    | None -> assert false
    | Some prim ->
      let conns =
        List.concat_map
          (fun b ->
             let w = b.actual in
             let wide = Array.length w.nets > 1 in
             Array.to_list w.nets
             |> List.mapi (fun i n ->
               { conn_port =
                   (if wide then Printf.sprintf "%s[%d]" b.formal i else b.formal);
                 conn_dir = b.dir;
                 conn_net = Hashtbl.find net_index n.net_id }))
          (Cell.port_bindings c)
      in
      { inst_name = relative_path root c;
        inst_lib_cell = Prim.name prim;
        inst_prim = prim;
        inst_conns = conns;
        inst_attrs =
          prim_attributes prim
          @ (match Cell.rloc c with
             | Some (r, col) ->
               [ { attr_name = "RLOC"; attr_value = Printf.sprintf "R%dC%d" r col } ]
             | None -> [])
          @ List.map
              (fun (k, v) -> { attr_name = k; attr_value = v })
              (Cell.properties c) }
  in
  let instances = Array.of_list (List.map instance_of prims) in
  let nets =
    Array.of_list
      (List.mapi
         (fun i n ->
            { net_name = net_base_name root n;
              net_index = i;
              driver_instance =
                Option.bind n.driver (fun t ->
                  Hashtbl.find_opt inst_index t.term_cell.cell_id);
              sink_count = List.length n.sinks })
         kept_nets)
  in
  let ports =
    List.map
      (fun p ->
         { p_name = p.Design.port_name;
           p_dir = p.Design.port_dir;
           p_width = Wire.width p.Design.port_wire;
           p_nets =
             Array.map
               (fun n -> Hashtbl.find net_index n.net_id)
               (Wire.nets p.Design.port_wire) })
      (Design.ports d)
  in
  { design_name = Cell.name root; ports; nets; instances }

let lib_cells m =
  let table = Hashtbl.create 16 in
  Array.iter
    (fun inst ->
       if not (Hashtbl.mem table inst.inst_lib_cell) then begin
         let ports =
           match inst.inst_prim with
           | Prim.Black_box _ ->
             List.map (fun c -> (c.conn_port, c.conn_dir)) inst.inst_conns
           | p ->
             let outs = Prim.output_ports p in
             List.map
               (fun name ->
                  (name, if List.mem name outs then Output else Input))
               (Prim.port_names p)
         in
         Hashtbl.replace table inst.inst_lib_cell ports
       end)
    m.instances;
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) table []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let instance_count m = Array.length m.instances
let net_count m = Array.length m.nets
