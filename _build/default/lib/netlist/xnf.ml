open Jhdl_circuit.Types

(* XNF is line-oriented:
     LCANET, 6
     PROG, writer, version
     SYM, <instance>, <libcell>, <params>
     PIN, <port>, <I|O>, <net>
     END
     EXT, <net>, <I|O>        -- external pads
     EOF                                                        *)

let to_string (m : Model.t) =
  let b = Buffer.create 4096 in
  let ids = Ident.create Ident.Edif in
  let id s = Ident.legalize ids s in
  let add fmt = Printf.ksprintf (fun s -> Buffer.add_string b s) fmt in
  add "LCANET, 6\n";
  add "PROG, JHDL-OCaml, 1.0, \"%s\"\n" m.Model.design_name;
  add "PART, XCV300-4-BG432\n";
  Array.iter
    (fun inst ->
       let params =
         List.map
           (fun a -> Printf.sprintf "%s=%s" a.Model.attr_name a.Model.attr_value)
           inst.Model.inst_attrs
       in
       add "SYM, %s, %s%s\n"
         (id ("i/" ^ inst.Model.inst_name))
         inst.Model.inst_lib_cell
         (match params with
          | [] -> ""
          | ps -> ", " ^ String.concat ", " ps);
       List.iter
         (fun c ->
            add "    PIN, %s, %s, %s\n" c.Model.conn_port
              (match c.Model.conn_dir with Input -> "I" | Output -> "O")
              (id ("n/" ^ m.Model.nets.(c.Model.conn_net).Model.net_name)))
         inst.Model.inst_conns;
       add "END\n")
    m.Model.instances;
  List.iter
    (fun p ->
       Array.iteri
         (fun bit net ->
            let pad_name =
              if p.Model.p_width = 1 then p.Model.p_name
              else Printf.sprintf "%s<%d>" p.Model.p_name bit
            in
            add "EXT, %s, %s, , %s\n"
              (id ("n/" ^ m.Model.nets.(net).Model.net_name))
              (match p.Model.p_dir with Input -> "I" | Output -> "O")
              pad_name)
         p.Model.p_nets)
    m.Model.ports;
  add "EOF\n";
  Buffer.contents b

let of_design d = to_string (Model.of_design d)
