(** Identifier legalization for netlist formats.

    Flattened names contain ['/'], ['['], [']'] and may collide after
    sanitizing; a legalizer rewrites them into the target format's
    identifier syntax and keeps the mapping stable and collision-free
    within one netlist. *)

type t

(** Which syntax to legalize for. *)
type style =
  | Edif  (** letters, digits, underscore; must start with a letter *)
  | Vhdl  (** VHDL-93 basic identifiers; reserved words avoided *)
  | Verilog  (** Verilog simple identifiers; reserved words avoided *)

val create : style -> t

(** [legalize t name] returns the legal identifier for [name], allocating
    one on first use; the same input always maps to the same output and
    distinct inputs never collide. *)
val legalize : t -> string -> string

(** [mapping t] lists [(original, legalized)] pairs in first-use order. *)
val mapping : t -> (string * string) list
