open Jhdl_circuit.Types

let header_libraries = "VIRTEX"

(* One buffer-based emitter with explicit indentation; EDIF is an
   s-expression format so nesting discipline is the whole game. *)
type emitter = {
  buffer : Buffer.t;
  mutable indent : int;
}

let line e fmt =
  Printf.ksprintf
    (fun s ->
       Buffer.add_string e.buffer (String.make (2 * e.indent) ' ');
       Buffer.add_string e.buffer s;
       Buffer.add_char e.buffer '\n')
    fmt

let enter e fmt =
  Printf.ksprintf
    (fun s ->
       line e "%s" s;
       e.indent <- e.indent + 1)
    fmt

let leave e =
  e.indent <- e.indent - 1;
  line e ")"

let dir_keyword = function Input -> "INPUT" | Output -> "OUTPUT"

let to_string (m : Model.t) =
  let e = { buffer = Buffer.create 4096; indent = 0 } in
  let ids = Ident.create Ident.Edif in
  let id s = Ident.legalize ids s in
  let design_id = id m.Model.design_name in
  enter e "(edif %s" design_id;
  line e "(edifVersion 2 0 0)";
  line e "(edifLevel 0)";
  line e "(keywordMap (keywordLevel 0))";
  enter e "(status (written (timeStamp 2002 6 10 0 0 0)";
  line e "(program \"JHDL-OCaml\" (version \"1.0\"))))";
  e.indent <- e.indent - 1;
  (* library of technology cells *)
  enter e "(library %s" header_libraries;
  line e "(edifLevel 0)";
  line e "(technology (numberDefinition))";
  List.iter
    (fun (cell_name, ports) ->
       enter e "(cell %s (cellType GENERIC)" (id cell_name);
       enter e "(view view_1 (viewType NETLIST)";
       enter e "(interface";
       List.iter
         (fun (port, dir) ->
            line e "(port %s (direction %s))" (id port) (dir_keyword dir))
         ports;
       leave e;
       leave e;
       leave e)
    (Model.lib_cells m);
  leave e;
  (* the design library holding the single flattened cell *)
  enter e "(library work";
  line e "(edifLevel 0)";
  line e "(technology (numberDefinition))";
  enter e "(cell %s (cellType GENERIC)" design_id;
  enter e "(view view_1 (viewType NETLIST)";
  enter e "(interface";
  List.iter
    (fun p ->
       if p.Model.p_width = 1 then
         line e "(port %s (direction %s))" (id p.Model.p_name)
           (dir_keyword p.Model.p_dir)
       else
         line e "(port (array %s %d) (direction %s))" (id p.Model.p_name)
           p.Model.p_width (dir_keyword p.Model.p_dir))
    m.Model.ports;
  leave e;
  enter e "(contents";
  Array.iter
    (fun inst ->
       enter e "(instance %s" (id ("i/" ^ inst.Model.inst_name));
       line e "(viewRef view_1 (cellRef %s (libraryRef %s)))"
         (id inst.Model.inst_lib_cell) header_libraries;
       List.iter
         (fun a ->
            line e "(property %s (string \"%s\"))" a.Model.attr_name
              a.Model.attr_value)
         inst.Model.inst_attrs;
       leave e)
    m.Model.instances;
  (* nets: port refs to instances plus, where applicable, the external
     interface ports *)
  let port_refs_of_net = Array.make (Array.length m.Model.nets) [] in
  Array.iteri
    (fun inst_idx inst ->
       List.iter
         (fun c ->
            port_refs_of_net.(c.Model.conn_net) <-
              (inst_idx, c.Model.conn_port) :: port_refs_of_net.(c.Model.conn_net))
         inst.Model.inst_conns)
    m.Model.instances;
  let external_refs = Array.make (Array.length m.Model.nets) [] in
  List.iter
    (fun p ->
       Array.iteri
         (fun bit net ->
            external_refs.(net) <-
              (p.Model.p_name, p.Model.p_width, bit) :: external_refs.(net))
         p.Model.p_nets)
    m.Model.ports;
  Array.iter
    (fun n ->
       let idx = n.Model.net_index in
       if port_refs_of_net.(idx) <> [] || external_refs.(idx) <> [] then begin
         enter e "(net %s" (id ("n/" ^ n.Model.net_name));
         enter e "(joined";
         List.iter
           (fun (inst_idx, port) ->
              let inst = m.Model.instances.(inst_idx) in
              line e "(portRef %s (instanceRef %s))" (id port)
                (id ("i/" ^ inst.Model.inst_name)))
           (List.rev port_refs_of_net.(idx));
         List.iter
           (fun (pname, pwidth, bit) ->
              if pwidth = 1 then line e "(portRef %s)" (id pname)
              else line e "(portRef (member %s %d))" (id pname) (pwidth - 1 - bit))
           (List.rev external_refs.(idx));
         leave e;
         leave e
       end)
    m.Model.nets;
  leave e;
  leave e;
  leave e;
  leave e;
  line e "(design %s (cellRef %s (libraryRef work)))" design_id design_id;
  leave e;
  Buffer.contents e.buffer

let of_design d = to_string (Model.of_design d)
