(** Structural Verilog-2001 netlist writer.

    The third interchange format the paper lists ("effort is being made to
    support other netlist formats such as Verilog"). One module per
    design, wire declarations per net, primitive instantiations with
    INIT/RLOC as attribute comments and defparams. *)

val to_string : Model.t -> string
val of_design : Jhdl_circuit.Design.t -> string
