(** Structural VHDL-93 netlist writer.

    Emits an entity for the design, component declarations for each
    library cell used, one signal per internal net, and one instantiation
    per primitive with INIT/RLOC rendered as instance attributes, the
    style JHDL's VHDL netlister produced for import into conventional
    synthesis flows. *)

val to_string : Model.t -> string
val of_design : Jhdl_circuit.Design.t -> string
