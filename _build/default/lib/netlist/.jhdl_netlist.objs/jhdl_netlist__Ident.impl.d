lib/netlist/ident.ml: Buffer Hashtbl List Printf String
