lib/netlist/model.mli: Jhdl_circuit
