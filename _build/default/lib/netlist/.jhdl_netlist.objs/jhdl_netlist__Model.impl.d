lib/netlist/model.ml: Array Hashtbl Jhdl_circuit Jhdl_logic List Option Printf String
