lib/netlist/format_kind.mli: Format Model
