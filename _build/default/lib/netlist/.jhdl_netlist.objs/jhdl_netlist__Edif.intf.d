lib/netlist/edif.mli: Jhdl_circuit Model
