lib/netlist/xnf.mli: Jhdl_circuit Model
