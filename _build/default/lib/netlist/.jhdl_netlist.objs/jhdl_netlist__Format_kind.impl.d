lib/netlist/format_kind.ml: Edif Format String Verilog Vhdl
