lib/netlist/edif_reader.mli:
