lib/netlist/vhdl.mli: Jhdl_circuit Model
