lib/netlist/verilog.mli: Jhdl_circuit Model
