lib/netlist/edif_reader.ml: List Printf Result String
