lib/netlist/ident.mli:
