lib/netlist/verilog.ml: Array Buffer Ident Jhdl_circuit List Model Printf String
