lib/netlist/vhdl.ml: Array Buffer Ident Jhdl_circuit List Model Printf String
