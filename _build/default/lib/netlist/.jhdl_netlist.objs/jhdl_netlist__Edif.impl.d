lib/netlist/edif.ml: Array Buffer Ident Jhdl_circuit List Model Printf String
