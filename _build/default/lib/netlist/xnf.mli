(** Xilinx Netlist Format (XNF) writer.

    The paper notes that "user-defined textual or binary interchange
    formats can be created by exploiting this API" (Section 2.2). XNF —
    the line-oriented pre-EDIF Xilinx format every 2002-era flow still
    accepted — is implemented here as exactly such a user-defined writer:
    ~80 lines over {!Model}, with no access to anything the EDIF/VHDL
    writers don't also use. *)

val to_string : Model.t -> string
val of_design : Jhdl_circuit.Design.t -> string
