type sexp =
  | Atom of string
  | List of sexp list

exception Parse_error of string

(* Recursive-descent s-expression parser; atoms are bare words or
   double-quoted strings. *)
let parse s =
  let n = String.length s in
  let pos = ref 0 in
  let error message =
    raise (Parse_error (Printf.sprintf "%s at offset %d" message !pos))
  in
  let rec skip_ws () =
    if !pos < n then
      match s.[!pos] with
      | ' ' | '\t' | '\n' | '\r' ->
        incr pos;
        skip_ws ()
      | '(' | ')' | '"' | '!' .. '~' | _ -> ()
  in
  let atom () =
    let start = !pos in
    let rec go () =
      if !pos < n then
        match s.[!pos] with
        | ' ' | '\t' | '\n' | '\r' | '(' | ')' -> ()
        | _ ->
          incr pos;
          go ()
    in
    go ();
    if !pos = start then error "empty atom";
    Atom (String.sub s start (!pos - start))
  in
  let quoted () =
    incr pos;
    let start = !pos in
    let rec go () =
      if !pos >= n then error "unterminated string"
      else if s.[!pos] = '"' then ()
      else begin
        incr pos;
        go ()
      end
    in
    go ();
    let content = String.sub s start (!pos - start) in
    incr pos;
    Atom content
  in
  let rec expr () =
    skip_ws ();
    if !pos >= n then error "unexpected end of input"
    else
      match s.[!pos] with
      | '(' ->
        incr pos;
        let items = ref [] in
        let rec items_loop () =
          skip_ws ();
          if !pos >= n then error "unterminated list"
          else if s.[!pos] = ')' then incr pos
          else begin
            items := expr () :: !items;
            items_loop ()
          end
        in
        items_loop ();
        List (List.rev !items)
      | ')' -> error "unexpected )"
      | '"' -> quoted ()
      | _ -> atom ()
  in
  match
    let e = expr () in
    skip_ws ();
    if !pos <> n then error "trailing content";
    e
  with
  | e -> Ok e
  | exception Parse_error message -> Error message

type summary = {
  design_name : string;
  library_cells : string list;
  instance_count : int;
  net_count : int;
  port_count : int;
  init_properties : (string * string) list;
}

let keyword = function
  | List (Atom k :: _) -> Some (String.lowercase_ascii k)
  | List _ | Atom _ -> None

let children_with k items =
  List.filter (fun e -> keyword e = Some k) items

let rec find_all k sexp acc =
  match sexp with
  | Atom _ -> acc
  | List items ->
    let acc =
      if keyword sexp = Some k then sexp :: acc else acc
    in
    List.fold_left (fun acc item -> find_all k item acc) acc items

let summarize sexp =
  match sexp with
  | List (Atom edif :: Atom design_name :: rest)
    when String.lowercase_ascii edif = "edif" ->
    let libraries = children_with "library" rest in
    let tech_cells, design_instances, design_nets, design_ports =
      List.fold_left
        (fun (cells, insts, nets, ports) library ->
           match library with
           | List (_ :: Atom lib_name :: body) ->
             let cell_nodes = children_with "cell" body in
             if String.lowercase_ascii lib_name = "work" then begin
               let instances =
                 List.fold_left (fun acc c -> find_all "instance" c acc) []
                   cell_nodes
               in
               let net_nodes =
                 List.fold_left (fun acc c -> find_all "net" c acc) []
                   cell_nodes
               in
               let port_nodes =
                 List.concat_map
                   (fun c ->
                      List.fold_left
                        (fun acc iface -> find_all "port" iface acc)
                        []
                        (find_all "interface" c []))
                   cell_nodes
               in
               (cells,
                insts + List.length instances,
                nets + List.length net_nodes,
                ports + List.length port_nodes)
             end
             else
               let names =
                 List.filter_map
                   (fun c ->
                      match c with
                      | List (_ :: Atom name :: _) -> Some name
                      | List _ | Atom _ -> None)
                   cell_nodes
               in
               (names @ cells, insts, nets, ports)
           | List _ | Atom _ -> (cells, insts, nets, ports))
        ([], 0, 0, 0) libraries
    in
    let init_properties =
      List.rev (find_all "instance" sexp [])
      |> List.filter_map (fun inst ->
        match inst with
        | List (_ :: Atom inst_name :: body) ->
          List.find_map
            (fun prop ->
               match prop with
               | List [ Atom p; Atom key; List [ Atom _; Atom value ] ]
                 when String.lowercase_ascii p = "property" && key = "INIT" ->
                 Some (inst_name, value)
               | List _ | Atom _ -> None)
            body
        | List _ | Atom _ -> None)
    in
    Ok
      { design_name;
        library_cells = List.sort String.compare tech_cells;
        instance_count = design_instances;
        net_count = design_nets;
        port_count = design_ports;
        init_properties }
  | List _ | Atom _ -> Error "not an (edif ...) document"

let read s = Result.bind (parse s) summarize
