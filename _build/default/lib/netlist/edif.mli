(** EDIF 2.0.0 netlist writer.

    Produces the flat EDIF netlist the paper's applet displays behind its
    Netlist button: one cell per design, external ports, library-cell
    declarations for the Virtex primitives used, instances carrying INIT
    and RLOC properties, and nets with their port references. *)

(** [to_string model] renders the whole netlist. *)
val to_string : Model.t -> string

(** [of_design d] is [to_string (Model.of_design d)]. *)
val of_design : Jhdl_circuit.Design.t -> string
