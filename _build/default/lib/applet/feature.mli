(** The IP-evaluation tools an executable may contain (Section 3.2's
    list: structural circuit viewer, executable simulation model,
    programmatic circuit generator interface, layout view, circuit
    netlisting — plus the estimator every configuration carries in
    Figure 2). *)

type t =
  | Generator_interface  (** parameter form + Build button *)
  | Estimator  (** area/timing estimates *)
  | Schematic_viewer  (** structure + hierarchy browsing *)
  | Layout_viewer  (** RLOC floorplan view *)
  | Simulator_tool  (** Cycle/Reset simulation *)
  | Waveform_viewer  (** recorded history display *)
  | Netlister  (** netlist export (formats set by the license) *)

val all : t list
val name : t -> string
val equal : t -> t -> bool

(** [components features] — the jar components an applet built from
    [features] must download ({!Jhdl_bundle.Partition}); every applet
    needs the base classes, the technology library and the applet glue,
    viewers add the viewer jar. *)
val components : t list -> Jhdl_bundle.Partition.component list
