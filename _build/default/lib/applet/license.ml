module Metering = Jhdl_security.Metering
module Format_kind = Jhdl_netlist.Format_kind

type tier =
  | Passive
  | Evaluator
  | Licensed
  | Vendor

type t = {
  tier : tier;
  features : Feature.t list;
  formats : Format_kind.t list;
  limits : (Metering.action * int) list;
  watermark : bool;
}

let tier_name = function
  | Passive -> "passive"
  | Evaluator -> "evaluator"
  | Licensed -> "licensed"
  | Vendor -> "vendor"

let all_tiers = [ Passive; Evaluator; Licensed; Vendor ]

let of_tier tier =
  match tier with
  | Passive ->
    { tier;
      features = [ Feature.Generator_interface; Feature.Estimator ];
      formats = [];
      limits = [ (Metering.Build, 20) ];
      watermark = false }
  | Evaluator ->
    { tier;
      features =
        [ Feature.Generator_interface; Feature.Estimator;
          Feature.Schematic_viewer; Feature.Simulator_tool;
          Feature.Waveform_viewer ];
      formats = [];
      limits = [ (Metering.Build, 100); (Metering.Simulate, 1000) ];
      watermark = false }
  | Licensed ->
    { tier;
      features =
        [ Feature.Generator_interface; Feature.Estimator;
          Feature.Schematic_viewer; Feature.Layout_viewer;
          Feature.Simulator_tool; Feature.Waveform_viewer; Feature.Netlister ];
      formats = Format_kind.all;
      limits = [ (Metering.Netlist_export, 50) ];
      watermark = true }
  | Vendor ->
    { tier;
      features = Feature.all;
      formats = Format_kind.all;
      limits = [];
      watermark = false }

let grants t f = List.exists (Feature.equal f) t.features

let feature_matrix () =
  let buffer = Buffer.create 512 in
  let add fmt = Printf.ksprintf (fun s -> Buffer.add_string buffer s) fmt in
  add "%-22s" "feature";
  List.iter (fun tier -> add " %-10s" (tier_name tier)) all_tiers;
  add "\n";
  List.iter
    (fun f ->
       add "%-22s" (Feature.name f);
       List.iter
         (fun tier ->
            add " %-10s" (if grants (of_tier tier) f then "yes" else "-"))
         all_tiers;
       add "\n")
    Feature.all;
  add "%-22s" "netlist formats";
  List.iter
    (fun tier ->
       let formats = (of_tier tier).formats in
       add " %-10s"
         (if formats = [] then "-"
          else String.concat "/" (List.map Format_kind.to_string formats)))
    all_tiers;
  add "\n";
  Buffer.contents buffer
