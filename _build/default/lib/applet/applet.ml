module Bits = Jhdl_logic.Bits
module Design = Jhdl_circuit.Design
module Types = Jhdl_circuit.Types
module Simulator = Jhdl_sim.Simulator
module Estimate = Jhdl_estimate.Estimate
module Format_kind = Jhdl_netlist.Format_kind
module Model = Jhdl_netlist.Model
module Hierarchy = Jhdl_viewer.Hierarchy
module Schematic = Jhdl_viewer.Schematic
module Floorplan = Jhdl_viewer.Floorplan
module Waveform = Jhdl_viewer.Waveform
module Vcd = Jhdl_viewer.Vcd
module Metering = Jhdl_security.Metering
module Tb = Jhdl_sim.Testbench
module Watermark = Jhdl_security.Watermark

type command =
  | Show_form
  | Set_param of string * string
  | Build
  | Estimate
  | View_schematic of string option
  | View_hierarchy
  | View_layout
  | Set_input of string * string
  | Cycle of int
  | Reset
  | Get_output of string
  | View_waveform
  | Export_vcd
  | Self_test
  | Netlist of string
  | Show_license
  | Help

let command_to_string = function
  | Show_form -> "form"
  | Set_param (name, value) -> Printf.sprintf "set %s = %s" name value
  | Build -> "build"
  | Estimate -> "estimate"
  | View_schematic None -> "schematic"
  | View_schematic (Some path) -> Printf.sprintf "schematic %s" path
  | View_hierarchy -> "hierarchy"
  | View_layout -> "layout"
  | Set_input (port, value) -> Printf.sprintf "input %s = %s" port value
  | Cycle n -> Printf.sprintf "cycle %d" n
  | Reset -> "reset"
  | Get_output port -> Printf.sprintf "output %s" port
  | View_waveform -> "waveform"
  | Export_vcd -> "vcd"
  | Self_test -> "selftest"
  | Netlist fmt -> Printf.sprintf "netlist %s" fmt
  | Show_license -> "license"
  | Help -> "help"

type built_state = {
  built : Ip_module.built;
  assignment : (string * Ip_module.param_value) list;
  sim : Simulator.t option;
  mutable watermarked : bool;
}

type t = {
  applet_ip : Ip_module.t;
  applet_license : License.t;
  user : string;
  meter : Metering.t;
  mutable params : (string * Ip_module.param_value) list;
  mutable state : built_state option;
}

let create ~ip ~license ~user ?meter () =
  let meter =
    match meter with
    | Some meter -> meter
    | None -> Metering.create ~limits:license.License.limits
  in
  { applet_ip = ip;
    applet_license = license;
    user;
    meter;
    params = Ip_module.defaults ip;
    state = None }

let ip t = t.applet_ip
let license t = t.applet_license
let features t = t.applet_license.License.features
let jar_components t = Feature.components (features t)
let built_design t = Option.map (fun s -> s.built.Ip_module.design) t.state
let simulator t = Option.bind t.state (fun s -> s.sim)
let latency t = Option.map (fun s -> s.built.Ip_module.latency) t.state

let granted t f = License.grants t.applet_license f

let require t f k =
  if granted t f then k ()
  else
    Error
      (Printf.sprintf "the %s is not included in your %s applet" (Feature.name f)
         (License.tier_name t.applet_license.License.tier))

let require_built t k =
  match t.state with
  | Some state -> k state
  | None -> Error "no circuit built yet: set parameters and run `build`"

let meter t action k =
  match Metering.record t.meter ~user:t.user action with
  | Ok _remaining -> k ()
  | Error used ->
    Error
      (Printf.sprintf "license limit reached for %s (%d used)"
         (Metering.action_name action) used)

(* Input values: binary with 0b prefix, else decimal (negative allowed). *)
let parse_bits ~width s =
  let s = String.trim s in
  if String.length s >= 2 && s.[0] = '0' && (s.[1] = 'b' || s.[1] = 'B') then begin
    let v = Bits.of_string s in
    if Bits.width v <> width then
      Error (Printf.sprintf "%d bits given for a %d-bit port" (Bits.width v) width)
    else Ok v
  end
  else
    match int_of_string_opt s with
    | Some v -> Ok (Bits.of_int ~width v)
    | None -> Error (Printf.sprintf "cannot parse value %s" s)

let do_build t () =
  match Ip_module.validate t.applet_ip t.params with
  | Error message -> Error message
  | Ok assignment ->
    t.params <- assignment;
    (match t.applet_ip.Ip_module.build assignment with
     | exception Invalid_argument message -> Error ("generator: " ^ message)
     | built ->
       let sim =
         if granted t Feature.Simulator_tool then begin
           let clock =
             Option.bind built.Ip_module.clock_port (fun name ->
               Option.map
                 (fun p -> p.Design.port_wire)
                 (Design.find_port built.Ip_module.design name))
           in
           let sim = Simulator.create ?clock built.Ip_module.design in
           if granted t Feature.Waveform_viewer then
             List.iter
               (fun p ->
                  Simulator.watch sim ~label:p.Design.port_name
                    p.Design.port_wire)
               (Design.ports built.Ip_module.design);
           Some sim
         end
         else None
       in
       t.state <- Some { built; assignment; sim; watermarked = false };
       let stats = Design.stats built.Ip_module.design in
       let lines =
         [ Printf.sprintf "built %s with %s" t.applet_ip.Ip_module.ip_name
             (String.concat ", "
                (List.map
                   (fun (n, v) ->
                      Printf.sprintf "%s=%s" n (Ip_module.param_to_string v))
                   assignment));
           Printf.sprintf "%d primitive instances, %d nets, latency %d cycle(s)"
             stats.Design.primitive_instances stats.Design.nets
             built.Ip_module.latency ]
         @ built.Ip_module.notes
       in
       Ok (String.concat "\n" lines))

let require_sim state k =
  match state.sim with
  | Some sim -> k sim
  | None -> Error "simulator not linked into this applet"

let exec t command =
  match command with
  | Help ->
    let lines =
      [ "commands: form, set <param> = <value>, build" ]
      @ (if granted t Feature.Estimator then [ "  estimate" ] else [])
      @ (if granted t Feature.Schematic_viewer then
           [ "  schematic [path], hierarchy" ]
         else [])
      @ (if granted t Feature.Layout_viewer then [ "  layout" ] else [])
      @ (if granted t Feature.Simulator_tool then
           [ "  input <port> = <value>, cycle <n>, reset, output <port>" ]
         else [])
      @ (if granted t Feature.Waveform_viewer then [ "  waveform" ] else [])
      @ (if granted t Feature.Netlister then
           [ Printf.sprintf "  netlist <%s>"
               (String.concat "|"
                  (List.map Format_kind.to_string
                     t.applet_license.License.formats)) ]
         else [])
      @ [ "  license, help" ]
    in
    Ok (String.concat "\n" lines)
  | Show_license ->
    Ok
      (Printf.sprintf "user %s, %s license\ntools: %s\nusage:\n%s" t.user
         (License.tier_name t.applet_license.License.tier)
         (String.concat ", " (List.map Feature.name (features t)))
         (Metering.report t.meter))
  | Show_form ->
    require t Feature.Generator_interface (fun () ->
      let current =
        List.map
          (fun (n, v) ->
             Printf.sprintf "  %s = %s" n (Ip_module.param_to_string v))
          t.params
      in
      Ok
        (Ip_module.form t.applet_ip
         ^ "current values:\n"
         ^ String.concat "\n" current))
  | Set_param (name, text) ->
    require t Feature.Generator_interface (fun () ->
      match List.assoc_opt name t.applet_ip.Ip_module.params with
      | None -> Error (Printf.sprintf "unknown parameter %s" name)
      | Some kind ->
        (match Ip_module.parse_param kind text with
         | Error message -> Error message
         | Ok value ->
           t.params <- (name, value) :: List.remove_assoc name t.params;
           Ok (Printf.sprintf "%s = %s" name (Ip_module.param_to_string value))))
  | Build ->
    require t Feature.Generator_interface (fun () ->
      meter t Metering.Build (do_build t))
  | Estimate ->
    require t Feature.Estimator (fun () ->
      require_built t (fun state ->
        (* generators carry RLOCs, so estimate with placement-aware nets *)
        Ok
          (Estimate.to_string
             (Estimate.of_design ~use_placement:true
                state.built.Ip_module.design))))
  | View_schematic focus ->
    require t Feature.Schematic_viewer (fun () ->
      require_built t (fun state ->
        let design = state.built.Ip_module.design in
        match focus with
        | None -> Ok (Schematic.render (Design.root design))
        | Some path ->
          (match Jhdl_circuit.Cell.find_path (Design.root design) path with
           | Some cell -> Ok (Schematic.render cell)
           | None -> Error (Printf.sprintf "no cell at path %s" path))))
  | View_hierarchy ->
    require t Feature.Schematic_viewer (fun () ->
      require_built t (fun state ->
        Ok (Hierarchy.render_design state.built.Ip_module.design)))
  | View_layout ->
    require t Feature.Layout_viewer (fun () ->
      require_built t (fun state ->
        Ok (Floorplan.render (Design.root state.built.Ip_module.design))))
  | Set_input (port, text) ->
    require t Feature.Simulator_tool (fun () ->
      require_built t (fun state ->
        require_sim state (fun sim ->
          match Design.find_port state.built.Ip_module.design port with
          | None -> Error (Printf.sprintf "no port %s" port)
          | Some p when p.Design.port_dir = Types.Output ->
            Error (Printf.sprintf "%s is an output" port)
          | Some p ->
            (match
               parse_bits ~width:(Jhdl_circuit.Wire.width p.Design.port_wire)
                 text
             with
             | Error message -> Error message
             | Ok value ->
               Simulator.set_input sim port value;
               Ok (Printf.sprintf "%s <= %s" port (Bits.to_string value))))))
  | Cycle n ->
    require t Feature.Simulator_tool (fun () ->
      require_built t (fun state ->
        require_sim state (fun sim ->
          if n < 1 then Error "cycle count must be positive"
          else
            meter t Metering.Simulate (fun () ->
              Simulator.cycle ~n sim;
              Ok (Printf.sprintf "cycle -> %d" (Simulator.cycle_count sim))))))
  | Reset ->
    require t Feature.Simulator_tool (fun () ->
      require_built t (fun state ->
        require_sim state (fun sim ->
          Simulator.reset sim;
          Ok "reset")))
  | Get_output port ->
    require t Feature.Simulator_tool (fun () ->
      require_built t (fun state ->
        require_sim state (fun sim ->
          match Design.find_port state.built.Ip_module.design port with
          | None -> Error (Printf.sprintf "no port %s" port)
          | Some _ ->
            let v = Simulator.get_port sim port in
            Ok
              (Printf.sprintf "%s = %s (%s)" port (Bits.to_string v)
                 (Waveform.value_to_string ~radix:`Unsigned v)))))
  | View_waveform ->
    require t Feature.Waveform_viewer (fun () ->
      require_built t (fun state ->
        require_sim state (fun sim -> Ok (Waveform.render sim))))
  | Export_vcd ->
    require t Feature.Waveform_viewer (fun () ->
      require_built t (fun state ->
        require_sim state (fun sim -> Ok (Vcd.of_history sim))))
  | Self_test ->
    require t Feature.Simulator_tool (fun () ->
      require_built t (fun state ->
        require_sim state (fun sim ->
          match t.applet_ip.Ip_module.shipped_bench with
          | None -> Error "the vendor shipped no validation bench for this IP"
          | Some bench ->
            Simulator.reset sim;
            let report = Tb.run sim (bench state.assignment state.built) in
            Simulator.reset sim;
            Ok (Format.asprintf "@[<v>%a@]" Tb.pp_report report))))
  | Netlist format_name ->
    require t Feature.Netlister (fun () ->
      require_built t (fun state ->
        match Format_kind.of_string format_name with
        | None -> Error (Printf.sprintf "unknown format %s" format_name)
        | Some fmt ->
          if not (List.mem fmt t.applet_license.License.formats) then
            Error
              (Printf.sprintf "your license does not allow %s export"
                 (Format_kind.to_string fmt))
          else
            meter t Metering.Netlist_export (fun () ->
              let design = state.built.Ip_module.design in
              if t.applet_license.License.watermark && not state.watermarked
              then begin
                let _ =
                  Watermark.embed design ~vendor:t.applet_ip.Ip_module.vendor ()
                in
                state.watermarked <- true
              end;
              Ok (Format_kind.write fmt (Model.of_design design)))))

let run_script t commands =
  let buffer = Buffer.create 2048 in
  List.iter
    (fun command ->
       Buffer.add_string buffer ("> " ^ command_to_string command ^ "\n");
       (match exec t command with
        | Ok text -> Buffer.add_string buffer text
        | Error message -> Buffer.add_string buffer ("ERROR: " ^ message));
       Buffer.add_char buffer '\n')
    commands;
  Buffer.contents buffer
