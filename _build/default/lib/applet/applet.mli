(** The IP delivery applet: a module-generator executable assembled from
    a license's feature set.

    This is the paper's Figure 1/Figure 3 artifact with the Swing GUI
    replaced by a command transcript: the parameter form, the Build
    button, Cycle/Reset simulation, schematic/hierarchy/layout views,
    waveforms and the Netlist button are commands; the vendor decides at
    assembly time which of them exist. Enforcement is by construction —
    a tool a license does not grant is never linked into the applet
    value, so no command sequence can reach it. Metering counts builds,
    simulation runs and netlist exports against the license caps, and
    licensed netlist exports carry the vendor watermark. *)

type t

type command =
  | Show_form  (** render the parameter form *)
  | Set_param of string * string  (** field name, form text *)
  | Build
  | Estimate
  | View_schematic of string option  (** optionally focus a subpath *)
  | View_hierarchy
  | View_layout
  | Set_input of string * string  (** port, value ("0b1010", "42", "-3") *)
  | Cycle of int
  | Reset
  | Get_output of string
  | View_waveform
  | Export_vcd  (** waveform history as a VCD document *)
  | Self_test
      (** run the vendor-shipped validation bench against the built
          instance (needs the simulator tool) *)
  | Netlist of string  (** format name: "EDIF", "VHDL", "Verilog" *)
  | Show_license
  | Help

val command_to_string : command -> string

(** [create ~ip ~license ~user ()] assembles the executable. [meter],
    when given, shares usage accounting with other applets (multi-IP
    suites meter the customer, not each module). *)
val create :
  ip:Ip_module.t ->
  license:License.t ->
  user:string ->
  ?meter:Jhdl_security.Metering.t ->
  unit ->
  t

val ip : t -> Ip_module.t
val license : t -> License.t

(** [features t] — tools actually linked in. *)
val features : t -> Feature.t list

(** [jar_components t] — archives this applet's page must download. *)
val jar_components : t -> Jhdl_bundle.Partition.component list

(** [exec t command] — run one command; [Ok text] is what the applet
    displays, [Error text] the failure message (feature not available,
    license cap reached, bad parameter, nothing built yet...). *)
val exec : t -> command -> (string, string) result

(** [built_design t] — the current circuit, for tools layered on top
    (black-box endpoints, vendor-side checks). *)
val built_design : t -> Jhdl_circuit.Design.t option

(** [simulator t] — the live simulator, when the license grants one and
    Build has run. *)
val simulator : t -> Jhdl_sim.Simulator.t option

(** [latency t] — the built instance's pipeline latency. *)
val latency : t -> int option

(** [run_script t commands] — execute in order, collecting a transcript
    ("> command" lines followed by output or "ERROR: ..."). *)
val run_script : t -> command list -> string
