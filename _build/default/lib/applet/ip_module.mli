(** An IP module: a parameterizable module generator packaged for
    delivery (Section 3's "module generator executables").

    The schema drives the applet's parameter form; [build] elaborates an
    instance into a standalone design with named ports, ready for the
    estimator, viewers, simulator and netlisters. *)

type param_kind =
  | Int_param of { min_value : int; max_value : int; default : int }
  | Bool_param of { default : bool }
  | Choice_param of { choices : string list; default : string }

type param_value =
  | Int_value of int
  | Bool_value of bool
  | Choice_value of string

type built = {
  design : Jhdl_circuit.Design.t;
  clock_port : string option;  (** name of the clock input, if clocked *)
  latency : int;  (** input-to-output cycles (0 = combinational path) *)
  notes : string list;  (** generator remarks shown after Build *)
}

type t = {
  ip_name : string;
  vendor : string;
  description : string;
  params : (string * param_kind) list;
  build : (string * param_value) list -> built;
      (** receives a complete, validated parameter assignment *)
  reference :
    ((string * param_value) list ->
     Jhdl_logic.Bits.t list ->
     Jhdl_logic.Bits.t list)
    option;
      (** optional golden model: maps input vectors (one per input port,
          flattened per cycle) to expected outputs; used by black-box
          checks *)
  shipped_bench :
    ((string * param_value) list -> built -> Jhdl_sim.Testbench.step list)
    option;
      (** vendor-shipped validation bench for the built instance; run by
          the applet's Self_test command so a customer can "properly
          evaluate and validate the IP" without writing stimulus *)
}

val defaults : t -> (string * param_value) list

(** [validate t assignment] checks completeness, kinds and ranges;
    returns the assignment with defaults filled in, or a message. *)
val validate :
  t -> (string * param_value) list -> ((string * param_value) list, string) result

val param_to_string : param_value -> string

(** [parse_param kind s] parses a form-field string per the schema. *)
val parse_param : param_kind -> string -> (param_value, string) result

(** [form t] renders the parameter form (name, kind, range, default). *)
val form : t -> string

(** [int_param assignment name] / [bool_param assignment name] — typed
    accessors for builders; raise [Invalid_argument] on kind mismatch. *)
val int_param : (string * param_value) list -> string -> int

val bool_param : (string * param_value) list -> string -> bool
val choice_param : (string * param_value) list -> string -> string
