type t =
  | Generator_interface
  | Estimator
  | Schematic_viewer
  | Layout_viewer
  | Simulator_tool
  | Waveform_viewer
  | Netlister

let all =
  [ Generator_interface; Estimator; Schematic_viewer; Layout_viewer;
    Simulator_tool; Waveform_viewer; Netlister ]

let name = function
  | Generator_interface -> "generator interface"
  | Estimator -> "circuit estimator"
  | Schematic_viewer -> "schematic viewer"
  | Layout_viewer -> "layout viewer"
  | Simulator_tool -> "simulator"
  | Waveform_viewer -> "waveform viewer"
  | Netlister -> "netlister"

let equal (a : t) b = a = b

let components features =
  let needs_viewer =
    List.exists
      (fun f ->
         match f with
         | Schematic_viewer | Layout_viewer | Waveform_viewer -> true
         | Generator_interface | Estimator | Simulator_tool | Netlister ->
           false)
      features
  in
  Jhdl_bundle.Partition.(
    [ Base; Virtex ] @ (if needs_viewer then [ Viewer ] else []) @ [ Applet ])
