type param_kind =
  | Int_param of { min_value : int; max_value : int; default : int }
  | Bool_param of { default : bool }
  | Choice_param of { choices : string list; default : string }

type param_value =
  | Int_value of int
  | Bool_value of bool
  | Choice_value of string

type built = {
  design : Jhdl_circuit.Design.t;
  clock_port : string option;
  latency : int;
  notes : string list;
}

type t = {
  ip_name : string;
  vendor : string;
  description : string;
  params : (string * param_kind) list;
  build : (string * param_value) list -> built;
  reference :
    ((string * param_value) list ->
     Jhdl_logic.Bits.t list ->
     Jhdl_logic.Bits.t list)
    option;
  shipped_bench :
    ((string * param_value) list -> built -> Jhdl_sim.Testbench.step list)
    option;
}

let default_of = function
  | Int_param { default; _ } -> Int_value default
  | Bool_param { default } -> Bool_value default
  | Choice_param { default; _ } -> Choice_value default

let defaults t = List.map (fun (name, kind) -> (name, default_of kind)) t.params

let param_to_string = function
  | Int_value v -> string_of_int v
  | Bool_value v -> string_of_bool v
  | Choice_value v -> v

let kind_matches kind value =
  match kind, value with
  | Int_param { min_value; max_value; _ }, Int_value v ->
    if v < min_value || v > max_value then
      Error (Printf.sprintf "value %d outside %d..%d" v min_value max_value)
    else Ok ()
  | Bool_param _, Bool_value _ -> Ok ()
  | Choice_param { choices; _ }, Choice_value v ->
    if List.mem v choices then Ok ()
    else Error (Printf.sprintf "%s not one of {%s}" v (String.concat ", " choices))
  | Int_param _, (Bool_value _ | Choice_value _)
  | Bool_param _, (Int_value _ | Choice_value _)
  | Choice_param _, (Int_value _ | Bool_value _) -> Error "wrong parameter kind"

let validate t assignment =
  let unknown =
    List.find_opt (fun (n, _) -> not (List.mem_assoc n t.params)) assignment
  in
  match unknown with
  | Some (n, _) -> Error (Printf.sprintf "unknown parameter %s" n)
  | None ->
    let rec fill acc = function
      | [] -> Ok (List.rev acc)
      | (name, kind) :: rest ->
        (match List.assoc_opt name assignment with
         | None -> fill ((name, default_of kind) :: acc) rest
         | Some value ->
           (match kind_matches kind value with
            | Ok () -> fill ((name, value) :: acc) rest
            | Error message ->
              Error (Printf.sprintf "parameter %s: %s" name message)))
    in
    fill [] t.params

let parse_param kind s =
  match kind with
  | Int_param { min_value; max_value; _ } ->
    (match int_of_string_opt (String.trim s) with
     | Some v ->
       if v < min_value || v > max_value then
         Error (Printf.sprintf "value %d outside %d..%d" v min_value max_value)
       else Ok (Int_value v)
     | None -> Error (Printf.sprintf "not an integer: %s" s))
  | Bool_param _ ->
    (match String.lowercase_ascii (String.trim s) with
     | "true" | "yes" | "1" | "on" -> Ok (Bool_value true)
     | "false" | "no" | "0" | "off" -> Ok (Bool_value false)
     | other -> Error (Printf.sprintf "not a boolean: %s" other))
  | Choice_param { choices; _ } ->
    let v = String.trim s in
    if List.mem v choices then Ok (Choice_value v)
    else Error (Printf.sprintf "%s not one of {%s}" v (String.concat ", " choices))

let form t =
  let buffer = Buffer.create 256 in
  let add fmt = Printf.ksprintf (fun s -> Buffer.add_string buffer s) fmt in
  add "%s (%s)\n%s\nparameters:\n" t.ip_name t.vendor t.description;
  List.iter
    (fun (name, kind) ->
       match kind with
       | Int_param { min_value; max_value; default } ->
         add "  %-16s int    %d..%d (default %d)\n" name min_value max_value
           default
       | Bool_param { default } ->
         add "  %-16s bool   (default %b)\n" name default
       | Choice_param { choices; default } ->
         add "  %-16s choice {%s} (default %s)\n" name
           (String.concat ", " choices)
           default)
    t.params;
  Buffer.contents buffer

let int_param assignment name =
  match List.assoc_opt name assignment with
  | Some (Int_value v) -> v
  | Some (Bool_value _ | Choice_value _) | None ->
    invalid_arg (Printf.sprintf "Ip_module.int_param: %s" name)

let bool_param assignment name =
  match List.assoc_opt name assignment with
  | Some (Bool_value v) -> v
  | Some (Int_value _ | Choice_value _) | None ->
    invalid_arg (Printf.sprintf "Ip_module.bool_param: %s" name)

let choice_param assignment name =
  match List.assoc_opt name assignment with
  | Some (Choice_value v) -> v
  | Some (Int_value _ | Bool_value _) | None ->
    invalid_arg (Printf.sprintf "Ip_module.choice_param: %s" name)
