lib/applet/ip_module.mli: Jhdl_circuit Jhdl_logic Jhdl_sim
