lib/applet/license.ml: Buffer Feature Jhdl_netlist Jhdl_security List Printf String
