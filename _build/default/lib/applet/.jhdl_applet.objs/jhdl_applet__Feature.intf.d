lib/applet/feature.mli: Jhdl_bundle
