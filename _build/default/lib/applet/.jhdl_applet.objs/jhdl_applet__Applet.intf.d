lib/applet/applet.mli: Feature Ip_module Jhdl_bundle Jhdl_circuit Jhdl_security Jhdl_sim License
