lib/applet/feature.ml: Jhdl_bundle List
