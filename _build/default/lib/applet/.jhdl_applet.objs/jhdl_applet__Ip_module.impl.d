lib/applet/ip_module.ml: Buffer Jhdl_circuit Jhdl_logic Jhdl_sim List Printf String
