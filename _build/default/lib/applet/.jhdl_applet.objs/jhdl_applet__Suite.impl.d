lib/applet/suite.ml: Applet Buffer Ip_module Jhdl_security License List Option Printf String
