lib/applet/catalog.ml: Ip_module Jhdl_circuit Jhdl_logic Jhdl_modgen Jhdl_sim List Printf String
