lib/applet/suite.mli: Applet Ip_module License
