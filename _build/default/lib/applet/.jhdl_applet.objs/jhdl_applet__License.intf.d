lib/applet/license.mli: Feature Jhdl_netlist Jhdl_security
