lib/applet/applet.ml: Buffer Feature Format Ip_module Jhdl_circuit Jhdl_estimate Jhdl_logic Jhdl_netlist Jhdl_security Jhdl_sim Jhdl_viewer License List Option Printf String
