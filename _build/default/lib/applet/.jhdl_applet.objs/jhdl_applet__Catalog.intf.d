lib/applet/catalog.mli: Ip_module
