(** License tiers: which tools a customer's applet carries.

    "Based on the user's license, a custom applet is presented that
    offers the appropriate IP evaluation and delivery functionality"
    (Section 1.1). [Passive] and [Licensed] are the two configurations of
    Figure 2; [Evaluator] is the transparent applet of Figure 3 without
    netlist export; [Vendor] is unrestricted. *)

type tier =
  | Passive  (** generator interface + estimator only (Figure 2, left) *)
  | Evaluator
      (** adds viewers, simulator and waveforms; metered builds; no
          netlists *)
  | Licensed  (** full Figure 2 right configuration, netlist export *)
  | Vendor  (** everything, unmetered *)

type t = {
  tier : tier;
  features : Feature.t list;
  formats : Jhdl_netlist.Format_kind.t list;  (** exportable formats *)
  limits : (Jhdl_security.Metering.action * int) list;
  watermark : bool;  (** watermark exported netlists *)
}

val of_tier : tier -> t
val tier_name : tier -> string
val all_tiers : tier list
val grants : t -> Feature.t -> bool

(** [feature_matrix ()] renders tiers x features as a table (the Figure 2
    comparison, generalized). *)
val feature_matrix : unit -> string
