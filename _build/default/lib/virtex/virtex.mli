(** Xilinx Virtex technology library.

    Constructors for the primitive cells the module generators use,
    following JHDL's library idiom: each function instances a primitive
    into a parent cell, connecting the given 1-bit wires, and returns the
    instance. Gate-level helpers ([and2] ... [xor3]) are implemented as
    LUTs with the appropriate INIT, matching how JHDL's Virtex library
    maps logic gates.

    All wires passed to these constructors must be 1-bit ({!Circuit.Wire.bit}
    or width-1 wires). *)

module Wire = Jhdl_circuit.Wire
module Cell = Jhdl_circuit.Cell

(** {1 Constants} *)

(** [gnd parent] / [vcc parent] create a fresh 1-bit wire driven by a
    GND / VCC primitive. *)
val gnd : Cell.t -> Wire.t

val vcc : Cell.t -> Wire.t

(** {1 Look-up tables} *)

(** [lut1 parent ~init i0 o] .. [lut4 parent ~init i0 i1 i2 i3 o]. *)
val lut1 : Cell.t -> ?name:string -> init:Jhdl_logic.Lut_init.t -> Wire.t -> Wire.t -> Cell.t

val lut2 :
  Cell.t -> ?name:string -> init:Jhdl_logic.Lut_init.t ->
  Wire.t -> Wire.t -> Wire.t -> Cell.t

val lut3 :
  Cell.t -> ?name:string -> init:Jhdl_logic.Lut_init.t ->
  Wire.t -> Wire.t -> Wire.t -> Wire.t -> Cell.t

val lut4 :
  Cell.t -> ?name:string -> init:Jhdl_logic.Lut_init.t ->
  Wire.t -> Wire.t -> Wire.t -> Wire.t -> Wire.t -> Cell.t

(** [lut_of_function parent inputs o ~f] builds the right-size LUT
    computing [f] of the input address (input 0 = LSB). One to four
    inputs. *)
val lut_of_function :
  Cell.t -> ?name:string -> Wire.t list -> Wire.t -> f:(int -> bool) -> Cell.t

(** {1 Gates (LUT-mapped)} *)

val inv : Cell.t -> ?name:string -> Wire.t -> Wire.t -> Cell.t
val buf : Cell.t -> ?name:string -> Wire.t -> Wire.t -> Cell.t
val and2 : Cell.t -> ?name:string -> Wire.t -> Wire.t -> Wire.t -> Cell.t
val and3 : Cell.t -> ?name:string -> Wire.t -> Wire.t -> Wire.t -> Wire.t -> Cell.t
val and4 : Cell.t -> ?name:string -> Wire.t -> Wire.t -> Wire.t -> Wire.t -> Wire.t -> Cell.t
val or2 : Cell.t -> ?name:string -> Wire.t -> Wire.t -> Wire.t -> Cell.t
val or3 : Cell.t -> ?name:string -> Wire.t -> Wire.t -> Wire.t -> Wire.t -> Cell.t
val or4 : Cell.t -> ?name:string -> Wire.t -> Wire.t -> Wire.t -> Wire.t -> Wire.t -> Cell.t
val xor2 : Cell.t -> ?name:string -> Wire.t -> Wire.t -> Wire.t -> Cell.t
val xor3 : Cell.t -> ?name:string -> Wire.t -> Wire.t -> Wire.t -> Wire.t -> Cell.t

(** [mux2 parent ~sel a b o]: [o = sel ? b : a], as a LUT3. *)
val mux2 : Cell.t -> ?name:string -> sel:Wire.t -> Wire.t -> Wire.t -> Wire.t -> Cell.t

(** {1 Registers} *)

(** [fd parent ~c ~d ~q] plain D flip-flop; [init] is the GSR value. *)
val fd : Cell.t -> ?name:string -> ?init:Jhdl_logic.Bit.t -> c:Wire.t -> d:Wire.t -> q:Wire.t -> unit -> Cell.t

(** [fde]: with clock enable. *)
val fde :
  Cell.t -> ?name:string -> ?init:Jhdl_logic.Bit.t ->
  c:Wire.t -> ce:Wire.t -> d:Wire.t -> q:Wire.t -> unit -> Cell.t

(** [fdce]: clock enable + asynchronous clear. *)
val fdce :
  Cell.t -> ?name:string -> ?init:Jhdl_logic.Bit.t ->
  c:Wire.t -> ce:Wire.t -> clr:Wire.t -> d:Wire.t -> q:Wire.t -> unit -> Cell.t

(** [fdre]: clock enable + synchronous reset. *)
val fdre :
  Cell.t -> ?name:string -> ?init:Jhdl_logic.Bit.t ->
  c:Wire.t -> ce:Wire.t -> r:Wire.t -> d:Wire.t -> q:Wire.t -> unit -> Cell.t

(** {1 Carry chain} *)

val muxcy : Cell.t -> ?name:string -> s:Wire.t -> di:Wire.t -> ci:Wire.t -> o:Wire.t -> unit -> Cell.t
val xorcy : Cell.t -> ?name:string -> li:Wire.t -> ci:Wire.t -> o:Wire.t -> unit -> Cell.t
val mult_and : Cell.t -> ?name:string -> i0:Wire.t -> i1:Wire.t -> lo:Wire.t -> unit -> Cell.t

(** {1 Memory} *)

(** [srl16e parent ~init ~clk ~ce ~d ~a ~q] shift-register LUT; [a] is the
    4-bit tap address wire. *)
val srl16e :
  Cell.t -> ?name:string -> ?init:int ->
  clk:Wire.t -> ce:Wire.t -> d:Wire.t -> a:Wire.t -> q:Wire.t -> unit -> Cell.t

(** [ram16x1s parent ~init ~wclk ~we ~d ~a ~o] 16x1 single-port RAM with a
    4-bit address wire. *)
val ram16x1s :
  Cell.t -> ?name:string -> ?init:int ->
  wclk:Wire.t -> we:Wire.t -> d:Wire.t -> a:Wire.t -> o:Wire.t -> unit -> Cell.t

(** {1 Area model}

    Virtex slices hold two 4-input LUTs, two flip-flops and two carry-chain
    multiplexer/xor pairs. *)

type area = {
  luts : int;
  ffs : int;
  carry_muxes : int;  (** MUXCY + XORCY + MULT_AND sites *)
  rams : int;  (** LUT sites used as SRL16/RAM16X1 *)
}

val area_zero : area
val area_add : area -> area -> area

(** [prim_area p] is the resource cost of one primitive instance. *)
val prim_area : Jhdl_circuit.Prim.t -> area

(** [slices a] estimates occupied Virtex slices for an area total. *)
val slices : area -> int

val pp_area : Format.formatter -> area -> unit

(** {1 Delay model}

    Propagation delays in picoseconds, with magnitudes modeled on the
    Virtex-E (-7) speed grade. These drive the static timing estimator and
    the simulator's performance model; they stand in for the authors'
    device timing, preserving relative structure (LUT depth vs carry
    chain) rather than exact values. *)

(** [prim_delay_ps p] is the worst input-to-output combinational delay, or
    0 for purely sequential outputs. *)
val prim_delay_ps : Jhdl_circuit.Prim.t -> int

(** Clock-to-out and setup for registers. *)
val clk_to_q_ps : int

val setup_ps : int

(** [net_delay_ps ~fanout] is a simple loaded-interconnect estimate. *)
val net_delay_ps : fanout:int -> int
