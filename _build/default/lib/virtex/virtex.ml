module Wire = Jhdl_circuit.Wire
module Cell = Jhdl_circuit.Cell
module Prim = Jhdl_circuit.Prim
module Lut_init = Jhdl_logic.Lut_init
module Bit = Jhdl_logic.Bit

let gnd parent =
  let w = Wire.create parent ~name:"gnd" 1 in
  let _ = Cell.prim parent Prim.Gnd ~conns:[ ("G", w) ] in
  w

let vcc parent =
  let w = Wire.create parent ~name:"vcc" 1 in
  let _ = Cell.prim parent Prim.Vcc ~conns:[ ("P", w) ] in
  w

let check_1bit what w =
  if Wire.width w <> 1 then
    invalid_arg
      (Printf.sprintf "Virtex.%s: wire %s is %d bits wide, expected 1" what
         (Wire.name w) (Wire.width w))

let lut parent ?name ~init ins o =
  let k = Lut_init.inputs init in
  if List.length ins <> k then
    invalid_arg
      (Printf.sprintf "Virtex.lut: %d inputs for a LUT%d" (List.length ins) k);
  List.iter (check_1bit "lut") (o :: ins);
  let conns = List.mapi (fun i w -> (Printf.sprintf "I%d" i, w)) ins in
  Cell.prim parent ?name (Prim.Lut init) ~conns:(conns @ [ ("O", o) ])

let lut1 parent ?name ~init i0 o = lut parent ?name ~init [ i0 ] o
let lut2 parent ?name ~init i0 i1 o = lut parent ?name ~init [ i0; i1 ] o
let lut3 parent ?name ~init i0 i1 i2 o = lut parent ?name ~init [ i0; i1; i2 ] o

let lut4 parent ?name ~init i0 i1 i2 i3 o =
  lut parent ?name ~init [ i0; i1; i2; i3 ] o

let lut_of_function parent ?name ins o ~f =
  let k = List.length ins in
  if k < 1 || k > 4 then
    invalid_arg "Virtex.lut_of_function: 1 to 4 inputs supported";
  lut parent ?name ~init:(Lut_init.of_function ~inputs:k f) ins o

let inv parent ?name i o =
  List.iter (check_1bit "inv") [ i; o ];
  Cell.prim parent ?name Prim.Inv ~conns:[ ("I", i); ("O", o) ]

let buf parent ?name i o =
  List.iter (check_1bit "buf") [ i; o ];
  Cell.prim parent ?name Prim.Buf ~conns:[ ("I", i); ("O", o) ]

let gate ?name parent ~inputs ~f ins o =
  lut parent ?name ~init:(f ~inputs) ins o

let and2 parent ?name a b o = gate ?name parent ~inputs:2 ~f:Lut_init.and_all [ a; b ] o
let and3 parent ?name a b c o = gate ?name parent ~inputs:3 ~f:Lut_init.and_all [ a; b; c ] o
let and4 parent ?name a b c d o = gate ?name parent ~inputs:4 ~f:Lut_init.and_all [ a; b; c; d ] o
let or2 parent ?name a b o = gate ?name parent ~inputs:2 ~f:Lut_init.or_all [ a; b ] o
let or3 parent ?name a b c o = gate ?name parent ~inputs:3 ~f:Lut_init.or_all [ a; b; c ] o
let or4 parent ?name a b c d o = gate ?name parent ~inputs:4 ~f:Lut_init.or_all [ a; b; c; d ] o
let xor2 parent ?name a b o = gate ?name parent ~inputs:2 ~f:Lut_init.xor_all [ a; b ] o
let xor3 parent ?name a b c o = gate ?name parent ~inputs:3 ~f:Lut_init.xor_all [ a; b; c ] o

(* o = sel ? b : a with inputs ordered (a, b, sel) *)
let mux2 parent ?name ~sel a b o =
  let f addr =
    let a_v = addr land 1 = 1
    and b_v = (addr lsr 1) land 1 = 1
    and s = (addr lsr 2) land 1 = 1 in
    if s then b_v else a_v
  in
  lut parent ?name ~init:(Lut_init.of_function ~inputs:3 f) [ a; b; sel ] o

let ff_prim ~clock_enable ~async_clear ~sync_reset ~init =
  Prim.Ff { clock_enable; async_clear; sync_reset; init }

let fd parent ?name ?(init = Bit.Zero) ~c ~d ~q () =
  List.iter (check_1bit "fd") [ c; d; q ];
  Cell.prim parent ?name
    (ff_prim ~clock_enable:false ~async_clear:false ~sync_reset:false ~init)
    ~conns:[ ("C", c); ("D", d); ("Q", q) ]

let fde parent ?name ?(init = Bit.Zero) ~c ~ce ~d ~q () =
  List.iter (check_1bit "fde") [ c; ce; d; q ];
  Cell.prim parent ?name
    (ff_prim ~clock_enable:true ~async_clear:false ~sync_reset:false ~init)
    ~conns:[ ("C", c); ("CE", ce); ("D", d); ("Q", q) ]

let fdce parent ?name ?(init = Bit.Zero) ~c ~ce ~clr ~d ~q () =
  List.iter (check_1bit "fdce") [ c; ce; clr; d; q ];
  Cell.prim parent ?name
    (ff_prim ~clock_enable:true ~async_clear:true ~sync_reset:false ~init)
    ~conns:[ ("C", c); ("CE", ce); ("CLR", clr); ("D", d); ("Q", q) ]

let fdre parent ?name ?(init = Bit.Zero) ~c ~ce ~r ~d ~q () =
  List.iter (check_1bit "fdre") [ c; ce; r; d; q ];
  Cell.prim parent ?name
    (ff_prim ~clock_enable:true ~async_clear:false ~sync_reset:true ~init)
    ~conns:[ ("C", c); ("CE", ce); ("R", r); ("D", d); ("Q", q) ]

let muxcy parent ?name ~s ~di ~ci ~o () =
  List.iter (check_1bit "muxcy") [ s; di; ci; o ];
  Cell.prim parent ?name Prim.Muxcy
    ~conns:[ ("S", s); ("DI", di); ("CI", ci); ("O", o) ]

let xorcy parent ?name ~li ~ci ~o () =
  List.iter (check_1bit "xorcy") [ li; ci; o ];
  Cell.prim parent ?name Prim.Xorcy ~conns:[ ("LI", li); ("CI", ci); ("O", o) ]

let mult_and parent ?name ~i0 ~i1 ~lo () =
  List.iter (check_1bit "mult_and") [ i0; i1; lo ];
  Cell.prim parent ?name Prim.Mult_and
    ~conns:[ ("I0", i0); ("I1", i1); ("LO", lo) ]

let addr_conns a =
  if Wire.width a <> 4 then
    invalid_arg "Virtex: address wire must be 4 bits wide";
  List.init 4 (fun i -> (Printf.sprintf "A%d" i, Wire.bit a i))

let srl16e parent ?name ?(init = 0) ~clk ~ce ~d ~a ~q () =
  List.iter (check_1bit "srl16e") [ clk; ce; d; q ];
  Cell.prim parent ?name
    (Prim.Srl16 { init })
    ~conns:([ ("CLK", clk); ("CE", ce); ("D", d) ] @ addr_conns a @ [ ("Q", q) ])

let ram16x1s parent ?name ?(init = 0) ~wclk ~we ~d ~a ~o () =
  List.iter (check_1bit "ram16x1s") [ wclk; we; d; o ];
  Cell.prim parent ?name
    (Prim.Ram16x1 { init })
    ~conns:([ ("WCLK", wclk); ("WE", we); ("D", d) ] @ addr_conns a @ [ ("O", o) ])

type area = {
  luts : int;
  ffs : int;
  carry_muxes : int;
  rams : int;
}

let area_zero = { luts = 0; ffs = 0; carry_muxes = 0; rams = 0 }

let area_add a b =
  { luts = a.luts + b.luts;
    ffs = a.ffs + b.ffs;
    carry_muxes = a.carry_muxes + b.carry_muxes;
    rams = a.rams + b.rams }

let prim_area = function
  | Prim.Lut _ | Prim.Inv -> { area_zero with luts = 1 }
  | Prim.Buf -> area_zero (* routing only *)
  | Prim.Ff _ -> { area_zero with ffs = 1 }
  | Prim.Muxcy | Prim.Xorcy | Prim.Mult_and -> { area_zero with carry_muxes = 1 }
  | Prim.Srl16 _ | Prim.Ram16x1 _ -> { area_zero with rams = 1 }
  | Prim.Gnd | Prim.Vcc | Prim.Black_box _ -> area_zero

(* Two LUT sites (shared with RAM/SRL), two FFs and two carry mux pairs per
   slice; the binding resource determines the slice count. *)
let slices a =
  let lut_sites = a.luts + a.rams in
  let half n = (n + 1) / 2 in
  max (half lut_sites) (max (half a.ffs) (half (a.carry_muxes / 2 + (a.carry_muxes mod 2))))

let pp_area fmt a =
  Format.fprintf fmt "%d LUTs, %d FFs, %d carry, %d LUT-RAM (%d slices)"
    a.luts a.ffs a.carry_muxes a.rams (slices a)

let prim_delay_ps = function
  | Prim.Lut _ -> 470 (* Tilo, LUT4 through slice *)
  | Prim.Buf -> 0 (* routing only *)
  | Prim.Inv -> 470
  | Prim.Muxcy -> 60 (* carry propagate Tbyp *)
  | Prim.Xorcy -> 300 (* Tcinck-ish sum path *)
  | Prim.Mult_and -> 120
  | Prim.Ram16x1 _ -> 550 (* async read *)
  | Prim.Ff _ | Prim.Srl16 _ -> 0 (* outputs are registered *)
  | Prim.Gnd | Prim.Vcc -> 0
  | Prim.Black_box _ -> 1000 (* behavioural model: nominal one-level cost *)

let clk_to_q_ps = 560
let setup_ps = 450
let net_delay_ps ~fanout = 250 + (90 * max 0 (fanout - 1))
