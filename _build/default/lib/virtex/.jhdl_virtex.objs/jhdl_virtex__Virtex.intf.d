lib/virtex/virtex.mli: Format Jhdl_circuit Jhdl_logic
