lib/virtex/virtex.ml: Format Jhdl_circuit Jhdl_logic List Printf
