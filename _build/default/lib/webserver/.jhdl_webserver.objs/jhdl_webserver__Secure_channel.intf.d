lib/webserver/secure_channel.mli: Jhdl_bundle
