lib/webserver/secure_channel.ml: Buffer Jhdl_bundle Jhdl_security List Printf String
