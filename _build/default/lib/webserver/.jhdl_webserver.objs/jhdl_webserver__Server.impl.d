lib/webserver/server.ml: Hashtbl Jhdl_applet Jhdl_bundle List Logs Printf Result Secure_channel
