lib/webserver/server.mli: Jhdl_applet Jhdl_bundle Secure_channel
