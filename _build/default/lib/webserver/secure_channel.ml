module Jar = Jhdl_bundle.Jar
module Class_file = Jhdl_bundle.Class_file
module Crypto = Jhdl_security.Crypto

type sealed = {
  jar_name : string;
  ciphertext : string;
  digest : string;
}

let issue_token ~server_secret ~user =
  Crypto.checksum (server_secret ^ "/" ^ user)

(* deterministic pseudo-content per class: header + name + size-derived
   filler, so payload size tracks the modeled jar size *)
let payload_of_jar jar =
  let buffer = Buffer.create 4096 in
  Buffer.add_string buffer ("JAR " ^ jar.Jar.jar_name ^ "\n");
  List.iter
    (fun c ->
       Buffer.add_string buffer
         (Printf.sprintf "CLASS %s %d\n" c.Class_file.fqcn (Class_file.size c));
       (* filler proportional to the modeled size, capped per class *)
       let filler = min 256 (Class_file.size c / 16) in
       let seed = Crypto.checksum c.Class_file.fqcn in
       for i = 0 to filler - 1 do
         Buffer.add_char buffer seed.[i mod String.length seed]
       done;
       Buffer.add_char buffer '\n')
    jar.Jar.entries;
  Buffer.contents buffer

let seal ~token jar =
  let plaintext = payload_of_jar jar in
  let key = Crypto.key_of_string token in
  { jar_name = jar.Jar.jar_name;
    ciphertext = Crypto.encrypt key plaintext;
    digest = Crypto.checksum plaintext }

let open_sealed ~token sealed =
  let key = Crypto.key_of_string token in
  let plaintext = Crypto.decrypt key sealed.ciphertext in
  if Crypto.checksum plaintext <> sealed.digest then
    Error
      (Printf.sprintf "integrity check failed for %s (wrong key or tampering)"
         sealed.jar_name)
  else Ok plaintext
