module Applet = Jhdl_applet.Applet
module Ip_module = Jhdl_applet.Ip_module
module License = Jhdl_applet.License
module Feature = Jhdl_applet.Feature
module Partition = Jhdl_bundle.Partition
module Jar = Jhdl_bundle.Jar
module Download = Jhdl_bundle.Download

let log_src = Logs.Src.create "jhdl.webserver" ~doc:"IP delivery server"

module Log = (val Logs.src_log log_src : Logs.LOG)

type entry = {
  ip : Ip_module.t;
  mutable version : int;
}

type account = {
  tier : License.tier;
  (* browser cache: component -> version downloaded *)
  cache : (Partition.component, int) Hashtbl.t;
}

type t = {
  vendor : string;
  mutable entries : (string * entry) list;
  accounts : (string, account) Hashtbl.t;
  (* component versions: base libraries move slowly, applet jars bump
     with each publication *)
  component_versions : (Partition.component, int) Hashtbl.t;
  mutable log : string list; (* newest first *)
}

let create ~vendor () =
  let component_versions = Hashtbl.create 4 in
  List.iter
    (fun c -> Hashtbl.replace component_versions c 1)
    Partition.all_components;
  { vendor; entries = []; accounts = Hashtbl.create 8; component_versions;
    log = [] }

let publish server ip =
  let name = ip.Ip_module.ip_name in
  match List.assoc_opt name server.entries with
  | Some entry ->
    entry.version <- entry.version + 1;
    Hashtbl.replace server.component_versions Partition.Applet
      (1 + Hashtbl.find server.component_versions Partition.Applet);
    Log.info (fun m -> m "republished %s as v%d" name entry.version);
    entry.version
  | None ->
    server.entries <- server.entries @ [ (name, { ip; version = 1 }) ];
    1

let catalog server =
  List.map (fun (name, e) -> (name, e.version)) server.entries

let register_user server ~user ~tier =
  let account =
    match Hashtbl.find_opt server.accounts user with
    | Some account -> { account with tier }
    | None -> { tier; cache = Hashtbl.create 4 }
  in
  Hashtbl.replace server.accounts user account

type session = {
  applet : Applet.t;
  version : int;
  jars : Jar.t list;
  fetched : Jar.t list;
  download_seconds : float;
}

let request server ~user ~ip_name ~link () =
  match Hashtbl.find_opt server.accounts user with
  | None -> Error (Printf.sprintf "unknown user %s" user)
  | Some account ->
    (match List.assoc_opt ip_name server.entries with
     | None -> Error (Printf.sprintf "no IP named %s on this server" ip_name)
     | Some entry ->
       let license = License.of_tier account.tier in
       let applet =
         Applet.create ~ip:entry.ip ~license ~user ()
       in
       let components = Applet.jar_components applet in
       let jars = Partition.jars_for components in
       let fetched =
         List.filter
           (fun component ->
              let current = Hashtbl.find server.component_versions component in
              match Hashtbl.find_opt account.cache component with
              | Some cached when cached = current -> false
              | Some _ | None ->
                Hashtbl.replace account.cache component current;
                true)
           components
         |> Partition.jars_for
       in
       let download_seconds = Download.jars_seconds link fetched in
       Log.info (fun m ->
         m "GET /applets/%s for %s (%s)" ip_name user
           (License.tier_name account.tier));
       server.log <-
         Printf.sprintf "%s GET /applets/%s v%d (%s license, %d jar(s), %.1f s)"
           user ip_name entry.version
           (License.tier_name account.tier)
           (List.length fetched) download_seconds
         :: server.log;
       Ok { applet; version = entry.version; jars; fetched; download_seconds })

let access_log server = List.rev server.log

let server_secret server = "vendor-secret/" ^ server.vendor

let user_token server ~user =
  if Hashtbl.mem server.accounts user then
    Some
      (Secure_channel.issue_token ~server_secret:(server_secret server) ~user)
  else None

let secure_request server ~user ~ip_name ~link () =
  match request server ~user ~ip_name ~link () with
  | Error _ as e -> e |> Result.map (fun s -> (s, []))
  | Ok session ->
    (match user_token server ~user with
     | None -> Error (Printf.sprintf "no token for %s" user)
     | Some token ->
       let sealed =
         List.map (Secure_channel.seal ~token) session.fetched
       in
       Ok (session, sealed))
