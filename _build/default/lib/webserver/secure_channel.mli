(** Encrypted applet delivery.

    The class-encryption hardening of Section 4.3, applied at the
    delivery boundary: the server encrypts each jar payload under a key
    derived from the user's license token, and the customer-side loader
    decrypts and integrity-checks before handing class data to the VM.
    Payload bytes here are the jar's synthesized content (deterministic
    per jar), so tampering and wrong-key detection are real checks, not
    stubs. *)

type sealed = {
  jar_name : string;
  ciphertext : string;
  digest : string;  (** checksum of the plaintext, for integrity *)
}

(** [issue_token ~server_secret ~user] — the per-user license token the
    vendor hands out (deterministic). *)
val issue_token : server_secret:string -> user:string -> string

(** [seal ~token jar] — encrypt one jar for the holder of [token]. *)
val seal : token:string -> Jhdl_bundle.Jar.t -> sealed

(** [open_sealed ~token sealed] — decrypt and verify; [Error _] when the
    token is wrong or the payload was tampered with. Returns the
    plaintext payload. *)
val open_sealed : token:string -> sealed -> (string, string) result

(** [payload_of_jar jar] — the deterministic plaintext the jar seals
    (entry directory plus synthesized contents). Exposed for tests. *)
val payload_of_jar : Jhdl_bundle.Jar.t -> string
