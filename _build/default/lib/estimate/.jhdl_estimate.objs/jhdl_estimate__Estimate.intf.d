lib/estimate/estimate.mli: Format Jhdl_circuit Jhdl_virtex
