lib/estimate/estimate.ml: Array Format Hashtbl Jhdl_circuit Jhdl_logic Jhdl_virtex List Option Printf Queue String
