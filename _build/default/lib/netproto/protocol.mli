(** Simulation-event wire protocol.

    "Simulation events are exchanged over network sockets and a custom
    communication protocol" (Section 4.2). Messages carry port/value
    pairs as four-valued bit strings; the encoding is a real byte format
    (length-prefixed fields), so channel accounting uses genuine message
    sizes and the decoder round-trips everything the encoder emits. *)

type message =
  | Set_inputs of (string * Jhdl_logic.Bits.t) list
  | Cycle of int
  | Reset
  | Get_outputs of string list
  | Outputs_are of (string * Jhdl_logic.Bits.t) list
  | Ack
  | Protocol_error of string

val encode : message -> string

(** [decode s] — [Error _] on malformed input. *)
val decode : string -> (message, string) result

(** [size message] — encoded byte length. *)
val size : message -> int

val pp : Format.formatter -> message -> unit
