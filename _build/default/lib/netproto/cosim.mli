(** System co-simulation (Figure 4) and the delivery-architecture cost
    comparison (the paper's speed claim against Web-CAD and JavaCAD).

    A co-simulation connects a user's system simulator to one or more
    black-box endpoints through protocol channels. Every exchange sends
    genuinely-encoded messages through the channel, so the elapsed-time
    and traffic numbers come from real message sizes, and the functional
    results come from the real simulators behind the endpoints. *)

type t

val create : unit -> t

(** [attach t endpoint params] — connect a black box over a channel with
    the given network parameters. Endpoint names must be unique. *)
val attach : t -> Endpoint.t -> Network.params -> unit

(** [set_inputs t ~box pairs] — drive input ports of one black box. *)
val set_inputs : t -> box:string -> (string * Jhdl_logic.Bits.t) list -> unit

(** [cycle t] — clock every attached black box once (inputs are expected
    to have been driven first). *)
val cycle : t -> unit

(** [reset t] — reset every black box. *)
val reset : t -> unit

(** [get_output t ~box port] — read one output port. Raises
    [Invalid_argument] on protocol errors or unknown boxes. *)
val get_output : t -> box:string -> string -> Jhdl_logic.Bits.t

(** Accumulated simulated wall time across all channels, plus compute. *)
val elapsed_seconds : t -> float

val total_messages : t -> int
val total_bytes : t -> int

(** {1 Delivery-architecture comparison (claim C1)} *)

type architecture =
  | Local_applet
      (** the paper's approach: the model was downloaded once and runs in
          the user's browser; events cross a loopback *)
  | Webcad
      (** Fin & Fummi (DAC 2000): the model stays at the vendor server;
          every event crosses the network *)
  | Javacad
      (** Dalpasso, Bogliolo & Benini (DAC 1999): remote method
          invocation per event, with RMI marshalling overhead *)

val architecture_name : architecture -> string

type session_cost = {
  wall_seconds : float;
  network_seconds : float;
  compute_seconds : float;
  message_count : int;
  byte_count : int;
}

(** [simulation_cost ~arch ~network ~endpoint ~cycles ~drive ~observe] —
    run [cycles] clock cycles against [endpoint] under the given
    architecture over [network]: each cycle drives [drive cycle_index]
    into the box, clocks it and reads [observe]. Returns the accumulated
    cost; functional outputs are written to [on_outputs] when given.
    [Local_applet] replaces the channel with a loopback (the network is
    only traversed for the initial download, which is priced separately
    in the benches via {!Jhdl_bundle.Download}). *)
val simulation_cost :
  arch:architecture ->
  network:Network.params ->
  endpoint:Endpoint.t ->
  cycles:int ->
  drive:(int -> (string * Jhdl_logic.Bits.t) list) ->
  observe:string list ->
  ?on_outputs:(int -> (string * Jhdl_logic.Bits.t) list -> unit) ->
  unit ->
  session_cost
