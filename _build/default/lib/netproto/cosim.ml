module Bits = Jhdl_logic.Bits

type link = {
  endpoint : Endpoint.t;
  channel : Network.t;
}

type t = {
  mutable links : link list; (* attach order *)
}

let create () = { links = [] }

let attach t endpoint params =
  let name = Endpoint.name endpoint in
  if List.exists (fun l -> Endpoint.name l.endpoint = name) t.links then
    invalid_arg (Printf.sprintf "Cosim.attach: duplicate endpoint %s" name);
  t.links <- t.links @ [ { endpoint; channel = Network.create params } ]

let find t box =
  match List.find_opt (fun l -> Endpoint.name l.endpoint = box) t.links with
  | Some link -> link
  | None -> invalid_arg (Printf.sprintf "Cosim: no black box named %s" box)

(* One request/reply exchange: both directions cross the channel with
   their real encoded sizes. *)
let exchange link message =
  Network.send link.channel ~bytes:(Protocol.size message);
  let reply = Endpoint.handle link.endpoint message in
  Network.send link.channel ~bytes:(Protocol.size reply);
  match reply with
  | Protocol.Protocol_error reason ->
    invalid_arg (Printf.sprintf "Cosim: %s: %s" (Endpoint.name link.endpoint) reason)
  | other -> other

let set_inputs t ~box pairs =
  let link = find t box in
  match exchange link (Protocol.Set_inputs pairs) with
  | Protocol.Ack -> ()
  | _ -> invalid_arg "Cosim.set_inputs: unexpected reply"

let cycle t =
  List.iter
    (fun link ->
       Network.add_compute link.channel
         (Endpoint.compute_seconds_per_cycle link.endpoint);
       match exchange link (Protocol.Cycle 1) with
       | Protocol.Ack -> ()
       | _ -> invalid_arg "Cosim.cycle: unexpected reply")
    t.links

let reset t =
  List.iter
    (fun link ->
       match exchange link Protocol.Reset with
       | Protocol.Ack -> ()
       | _ -> invalid_arg "Cosim.reset: unexpected reply")
    t.links

let get_output t ~box port =
  let link = find t box in
  match exchange link (Protocol.Get_outputs [ port ]) with
  | Protocol.Outputs_are [ (_, v) ] -> v
  | _ -> invalid_arg "Cosim.get_output: unexpected reply"

let elapsed_seconds t =
  List.fold_left (fun acc l -> acc +. Network.elapsed_seconds l.channel) 0.0 t.links

let total_messages t =
  List.fold_left (fun acc l -> acc + Network.messages l.channel) 0 t.links

let total_bytes t =
  List.fold_left (fun acc l -> acc + Network.bytes_transferred l.channel) 0 t.links

type architecture =
  | Local_applet
  | Webcad
  | Javacad

let architecture_name = function
  | Local_applet -> "JHDL applet (local)"
  | Webcad -> "Web-CAD (remote server)"
  | Javacad -> "JavaCAD (RMI)"

(* RMI serialization: object headers, class descriptors, stubs. *)
let rmi_overhead_bytes = 420

type session_cost = {
  wall_seconds : float;
  network_seconds : float;
  compute_seconds : float;
  message_count : int;
  byte_count : int;
}

let simulation_cost ~arch ~network ~endpoint ~cycles ~drive ~observe
    ?on_outputs () =
  let channel_params =
    match arch with
    | Local_applet -> Network.loopback
    | Webcad -> network
    | Javacad ->
      { network with
        Network.per_message_overhead_bytes =
          network.Network.per_message_overhead_bytes + rmi_overhead_bytes }
  in
  let channel = Network.create channel_params in
  let compute = ref 0.0 in
  let exchange message =
    Network.send channel ~bytes:(Protocol.size message);
    let reply = Endpoint.handle endpoint message in
    Network.send channel ~bytes:(Protocol.size reply);
    reply
  in
  for i = 0 to cycles - 1 do
    (match drive i with
     | [] -> ()
     | pairs ->
       (match exchange (Protocol.Set_inputs pairs) with
        | Protocol.Ack -> ()
        | _ -> invalid_arg "simulation_cost: set_inputs failed"));
    compute := !compute +. Endpoint.compute_seconds_per_cycle endpoint;
    (match exchange (Protocol.Cycle 1) with
     | Protocol.Ack -> ()
     | _ -> invalid_arg "simulation_cost: cycle failed");
    match observe with
    | [] -> ()
    | ports ->
      (match exchange (Protocol.Get_outputs ports) with
       | Protocol.Outputs_are pairs ->
         (match on_outputs with Some f -> f i pairs | None -> ())
       | _ -> invalid_arg "simulation_cost: get_outputs failed")
  done;
  let network_seconds = Network.elapsed_seconds channel in
  { wall_seconds = network_seconds +. !compute;
    network_seconds;
    compute_seconds = !compute;
    message_count = Network.messages channel;
    byte_count = Network.bytes_transferred channel }
