(** Verilog-testbench PLI wrapper.

    "A simulation wrapper was created to interface the JHDL black-box
    simulator with a Verilog simulation using PLI. Simulation events are
    exchanged over network sockets and a custom communication protocol"
    (Section 4.2). No commercial Verilog simulator exists here, so this
    module implements the customer side itself: a small Verilog-testbench
    interpreter whose value changes become protocol messages to the
    black-box endpoints, exactly the role the PLI glue played.

    Supported subset (one [module]/[endmodule] with one
    [initial begin ... end] block):
    - [reg [msb:0] name;] — a testbench-driven value, bound to a black
      box input port of the same width;
    - [wire [msb:0] name;] — bound to a black box output port;
    - [name = <literal>;] — blocking assignment; literals are Verilog
      sized constants ([8'd42], [8'hFF], [8'b1010_0101], [-8'd3]) or
      bare decimals;
    - [#<n>;] — advance [n] clock cycles (inputs are flushed to the
      boxes first);
    - [$display("text", name, ...);] — append to the transcript;
    - [$check(name, <literal>);] — record a pass/fail comparison;
    - [$finish;] — stop.

    Line comments ([// ...]) are ignored. *)

type binding = {
  signal : string;  (** testbench reg/wire name *)
  box : string;  (** black box (endpoint) name *)
  port : string;  (** port on that box *)
}

type check_result = {
  check_signal : string;
  expected : Jhdl_logic.Bits.t;
  actual : Jhdl_logic.Bits.t;
  passed : bool;
}

type run_result = {
  transcript : string list;  (** $display output, in order *)
  checks : check_result list;  (** in order *)
  cycles_run : int;
  finished : bool;  (** reached $finish *)
}

type program

(** [parse source] — [Error message] (with line number) on anything
    outside the subset. *)
val parse : string -> (program, string) result

(** [signals program] — declared [(name, width, is_reg)] triples. *)
val signals : program -> (string * int * bool) list

(** [run program ~cosim ~bindings] — execute against black boxes already
    attached to [cosim]. Every reg must be bound to an input port, every
    wire to an output port; widths are checked against the declaration.
    Raises [Invalid_argument] on binding errors. *)
val run : program -> cosim:Cosim.t -> bindings:binding list -> run_result
