lib/netproto/verilog_tb.mli: Cosim Jhdl_logic
