lib/netproto/endpoint.mli: Jhdl_applet Jhdl_sim Protocol
