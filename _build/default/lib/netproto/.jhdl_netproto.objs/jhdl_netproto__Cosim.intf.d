lib/netproto/cosim.mli: Endpoint Jhdl_logic Network
