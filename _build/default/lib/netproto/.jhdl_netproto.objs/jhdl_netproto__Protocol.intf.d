lib/netproto/protocol.mli: Format Jhdl_logic
