lib/netproto/protocol.ml: Buffer Char Format Jhdl_logic List Printf String
