lib/netproto/verilog_tb.ml: Cosim Hashtbl Jhdl_logic List Option Printf String
