lib/netproto/cosim.ml: Endpoint Jhdl_logic List Network Printf Protocol
