lib/netproto/endpoint.ml: Jhdl_applet Jhdl_circuit Jhdl_sim List Option Protocol
