lib/netproto/network.ml:
