lib/netproto/network.mli:
