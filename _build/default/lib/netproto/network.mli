(** Simulated network channel with a time budget.

    Carries the wire-level cost model for Figure 4 (black-box
    co-simulation over sockets) and for the Web-CAD / JavaCAD baselines:
    each send pays one-way latency plus serialized payload over
    bandwidth; the channel accumulates simulated seconds and traffic
    counters. Deterministic — no wall clock involved. *)

type params = {
  one_way_latency_s : float;
  bandwidth_bits_per_s : float;
  per_message_overhead_bytes : int;
      (** framing/headers (TCP+protocol, or RMI serialization) *)
}

(** In-process "loopback": the local applet case — a method call, not a
    socket. *)
val loopback : params

(** [lan], [campus], [dsl], [modem] presets; [with_rtt params seconds]
    overrides the round-trip time (both directions split evenly). *)
val lan : params

val campus : params
val dsl : params
val modem : params
val with_rtt : params -> float -> params
val rtt : params -> float

type t

val create : params -> t
val params : t -> params

(** [send t ~bytes] — account one message of [bytes] payload. *)
val send : t -> bytes:int -> unit

(** [elapsed_seconds t], [messages t], [bytes_transferred t] — counters. *)
val elapsed_seconds : t -> float

val messages : t -> int
val bytes_transferred : t -> int

(** [add_compute t seconds] — charge non-network time (model evaluation)
    to the same clock. *)
val add_compute : t -> float -> unit
