module Bits = Jhdl_logic.Bits


type binding = {
  signal : string;
  box : string;
  port : string;
}

type check_result = {
  check_signal : string;
  expected : Bits.t;
  actual : Bits.t;
  passed : bool;
}

type run_result = {
  transcript : string list;
  checks : check_result list;
  cycles_run : int;
  finished : bool;
}

(* ---------------- lexer ---------------- *)

type token =
  | Tid of string
  | Tnum of int
  | Tsized of Bits.t
  | Tstring of string
  | Tsys of string (* $display, $check, $finish *)
  | Tpunct of char

exception Tb_error of string

let error line fmt =
  Printf.ksprintf (fun message -> raise (Tb_error (Printf.sprintf "line %d: %s" line message))) fmt

let is_digit c = c >= '0' && c <= '9'

let is_ident_char c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || is_digit c || c = '_'

(* sized literal body: base char + digits (underscores allowed) *)
let sized_literal ~line ~width ~base digits =
  let digits =
    String.concat "" (String.split_on_char '_' digits)
  in
  if digits = "" then error line "empty literal";
  match base with
  | 'd' | 'D' ->
    (match int_of_string_opt digits with
     | Some v -> Bits.of_int ~width v
     | None -> error line "bad decimal literal %s" digits)
  | 'h' | 'H' ->
    (match int_of_string_opt ("0x" ^ digits) with
     | Some v -> Bits.of_int ~width v
     | None -> error line "bad hex literal %s" digits)
  | 'b' | 'B' ->
    let v = Bits.of_string digits in
    if Bits.width v > width then error line "binary literal wider than %d" width
    else Bits.zero_extend v width
  | c -> error line "unsupported literal base %c" c

let tokenize source =
  let n = String.length source in
  let tokens = ref [] in
  let line = ref 1 in
  let pos = ref 0 in
  let push t = tokens := (t, !line) :: !tokens in
  while !pos < n do
    let c = source.[!pos] in
    if c = '\n' then begin
      incr line;
      incr pos
    end
    else if c = ' ' || c = '\t' || c = '\r' then incr pos
    else if c = '/' && !pos + 1 < n && source.[!pos + 1] = '/' then begin
      while !pos < n && source.[!pos] <> '\n' do
        incr pos
      done
    end
    else if c = '"' then begin
      incr pos;
      let start = !pos in
      while !pos < n && source.[!pos] <> '"' do
        incr pos
      done;
      if !pos >= n then error !line "unterminated string";
      push (Tstring (String.sub source start (!pos - start)));
      incr pos
    end
    else if c = '$' then begin
      incr pos;
      let start = !pos in
      while !pos < n && is_ident_char source.[!pos] do
        incr pos
      done;
      push (Tsys (String.sub source start (!pos - start)))
    end
    else if is_digit c then begin
      let start = !pos in
      while !pos < n && (is_digit source.[!pos] || source.[!pos] = '_') do
        incr pos
      done;
      let number_text =
        String.concat ""
          (String.split_on_char '_' (String.sub source start (!pos - start)))
      in
      let value =
        match int_of_string_opt number_text with
        | Some v -> v
        | None -> error !line "bad number %s" number_text
      in
      if !pos < n && source.[!pos] = '\'' then begin
        incr pos;
        (* optional signed marker 's' is accepted and ignored *)
        if !pos < n && (source.[!pos] = 's' || source.[!pos] = 'S') then incr pos;
        if !pos >= n then error !line "truncated sized literal";
        let base = source.[!pos] in
        incr pos;
        let dstart = !pos in
        while
          !pos < n
          && (is_ident_char source.[!pos])
        do
          incr pos
        done;
        push
          (Tsized
             (sized_literal ~line:!line ~width:value ~base
                (String.sub source dstart (!pos - dstart))))
      end
      else push (Tnum value)
    end
    else if is_ident_char c then begin
      let start = !pos in
      while !pos < n && is_ident_char source.[!pos] do
        incr pos
      done;
      push (Tid (String.sub source start (!pos - start)))
    end
    else begin
      push (Tpunct c);
      incr pos
    end
  done;
  List.rev !tokens

(* ---------------- parser ---------------- *)

type rvalue =
  | Sized of Bits.t
  | Bare of int

type stmt =
  | Assign of string * rvalue
  | Delay of int
  | Display of string * string list
  | Check of string * rvalue
  | Finish

type decl = {
  decl_name : string;
  decl_width : int;
  is_reg : bool;
}

type program = {
  tb_name : string;
  decls : decl list;
  stmts : stmt list;
}

type parser_state = {
  mutable tokens : (token * int) list;
}

let peek st =
  match st.tokens with
  | [] -> (None, 0)
  | (t, line) :: _ -> (Some t, line)

let next st =
  match st.tokens with
  | [] -> raise (Tb_error "unexpected end of input")
  | (t, line) :: rest ->
    st.tokens <- rest;
    (t, line)

let expect_punct st c =
  match next st with
  | Tpunct p, _ when p = c -> ()
  | _, line -> error line "expected %c" c

let expect_ident st =
  match next st with
  | Tid name, _ -> name
  | _, line -> error line "expected identifier"

let expect_keyword st keyword =
  match next st with
  | Tid k, _ when k = keyword -> ()
  | _, line -> error line "expected %s" keyword

let parse_width st =
  match peek st with
  | Some (Tpunct '['), _ ->
    let _ = next st in
    let msb =
      match next st with
      | Tnum v, _ -> v
      | _, line -> error line "expected msb"
    in
    expect_punct st ':';
    (match next st with
     | Tnum 0, _ -> ()
     | _, line -> error line "lsb must be 0");
    expect_punct st ']';
    msb + 1
  | _ -> 1

let parse_rvalue st =
  match next st with
  | Tsized v, _ -> Sized v
  | Tnum v, _ -> Bare v
  | Tpunct '-', _ ->
    (match next st with
     | Tnum v, _ -> Bare (-v)
     | Tsized v, _ -> Sized (Bits.neg v)
     | _, line -> error line "expected literal after -")
  | _, line -> error line "expected literal"

let rec parse_stmts st acc =
  match peek st with
  | Some (Tid "end"), _ ->
    let _ = next st in
    List.rev acc
  | Some (Tpunct '#'), _ ->
    let _ = next st in
    let cycles =
      match next st with
      | Tnum v, _ -> v
      | _, line -> error line "expected delay count"
    in
    expect_punct st ';';
    parse_stmts st (Delay cycles :: acc)
  | Some (Tsys "finish"), _ ->
    let _ = next st in
    expect_punct st ';';
    parse_stmts st (Finish :: acc)
  | Some (Tsys "display"), _ ->
    let _ = next st in
    expect_punct st '(';
    let text =
      match next st with
      | Tstring s, _ -> s
      | _, line -> error line "$display needs a string first"
    in
    let rec args acc =
      match next st with
      | Tpunct ')', _ -> List.rev acc
      | Tpunct ',', _ -> args (expect_ident st :: acc)
      | _, line -> error line "expected , or ) in $display"
    in
    let names = args [] in
    expect_punct st ';';
    parse_stmts st (Display (text, names) :: acc)
  | Some (Tsys "check"), _ ->
    let _ = next st in
    expect_punct st '(';
    let name = expect_ident st in
    expect_punct st ',';
    let value = parse_rvalue st in
    expect_punct st ')';
    expect_punct st ';';
    parse_stmts st (Check (name, value) :: acc)
  | Some (Tid name), _ ->
    let _ = next st in
    expect_punct st '=';
    let value = parse_rvalue st in
    expect_punct st ';';
    parse_stmts st (Assign (name, value) :: acc)
  | Some (Tsys other), line -> error line "unsupported system task $%s" other
  | Some _, line -> error line "unsupported statement"
  | None, _ -> raise (Tb_error "missing end")

let parse_program st =
  expect_keyword st "module";
  let tb_name = expect_ident st in
  expect_punct st ';';
  let rec decls acc =
    match peek st with
    | Some (Tid ("reg" | "wire")), _ ->
      let is_reg =
        match next st with
        | Tid "reg", _ -> true
        | Tid "wire", _ -> false
        | _, line -> error line "expected reg or wire"
      in
      let width = parse_width st in
      let name = expect_ident st in
      expect_punct st ';';
      decls ({ decl_name = name; decl_width = width; is_reg } :: acc)
    | _ -> List.rev acc
  in
  let decls = decls [] in
  expect_keyword st "initial";
  expect_keyword st "begin";
  let stmts = parse_stmts st [] in
  expect_keyword st "endmodule";
  (match peek st with
   | None, _ -> ()
   | Some _, line -> error line "content after endmodule");
  { tb_name; decls; stmts }

let parse source =
  match parse_program { tokens = tokenize source } with
  | program -> Ok program
  | exception Tb_error message -> Error message

let signals program =
  List.map (fun d -> (d.decl_name, d.decl_width, d.is_reg)) program.decls

(* ---------------- interpreter ---------------- *)

let resolve_rvalue ~width ~signal = function
  | Sized v ->
    if Bits.width v <> width then
      invalid_arg
        (Printf.sprintf "Verilog_tb: %d-bit literal for %d-bit signal %s"
           (Bits.width v) width signal)
    else v
  | Bare v -> Bits.of_int ~width v

let run program ~cosim ~bindings =
  let decl_of name =
    match List.find_opt (fun d -> d.decl_name = name) program.decls with
    | Some d -> d
    | None -> invalid_arg (Printf.sprintf "Verilog_tb: undeclared signal %s" name)
  in
  let binding_of name =
    match List.find_opt (fun b -> b.signal = name) bindings with
    | Some b -> b
    | None -> invalid_arg (Printf.sprintf "Verilog_tb: unbound signal %s" name)
  in
  List.iter (fun d -> ignore (binding_of d.decl_name)) program.decls;
  (* current reg values and inputs not yet flushed to the boxes *)
  let reg_values : (string, Bits.t) Hashtbl.t = Hashtbl.create 8 in
  let pending : (string, (string * Bits.t) list) Hashtbl.t = Hashtbl.create 4 in
  let flush () =
    Hashtbl.iter (fun box pairs -> Cosim.set_inputs cosim ~box pairs) pending;
    Hashtbl.reset pending
  in
  let read_signal name =
    let d = decl_of name in
    if d.is_reg then
      Option.value (Hashtbl.find_opt reg_values name)
        ~default:(Bits.undefined d.decl_width)
    else begin
      flush ();
      let b = binding_of name in
      Cosim.get_output cosim ~box:b.box b.port
    end
  in
  let transcript = ref [] in
  let checks = ref [] in
  let cycles = ref 0 in
  let finished = ref false in
  let rec exec = function
    | [] -> ()
    | stmt :: rest ->
      (match stmt with
       | Assign (name, rvalue) ->
         let d = decl_of name in
         if not d.is_reg then
           invalid_arg (Printf.sprintf "Verilog_tb: cannot assign wire %s" name);
         let value = resolve_rvalue ~width:d.decl_width ~signal:name rvalue in
         Hashtbl.replace reg_values name value;
         let b = binding_of name in
         Hashtbl.replace pending b.box
           ((b.port, value)
            :: List.remove_assoc b.port
                 (Option.value (Hashtbl.find_opt pending b.box) ~default:[]))
       | Delay n ->
         flush ();
         for _ = 1 to n do
           Cosim.cycle cosim;
           incr cycles
         done
       | Display (text, names) ->
         let values =
           List.map
             (fun name ->
                let v = read_signal name in
                Printf.sprintf "%s=%s" name
                  (match Bits.to_signed_int v with
                   | Some k -> string_of_int k
                   | None -> Bits.to_string v))
             names
         in
         transcript := String.concat " " (text :: values) :: !transcript
       | Check (name, rvalue) ->
         let d = decl_of name in
         let expected = resolve_rvalue ~width:d.decl_width ~signal:name rvalue in
         let actual = read_signal name in
         checks :=
           { check_signal = name;
             expected;
             actual;
             passed = Bits.equal expected actual }
           :: !checks
       | Finish -> finished := true);
      if !finished then () else exec rest
  in
  exec program.stmts;
  { transcript = List.rev !transcript;
    checks = List.rev !checks;
    cycles_run = !cycles;
    finished = !finished }
