module Simulator = Jhdl_sim.Simulator
module Design = Jhdl_circuit.Design

(* Modeled cost of one evaluation pass in the client JVM. *)
let seconds_per_prim = 40.0e-9

type t = {
  endpoint_name : string;
  sim : Simulator.t;
  compute : float;
}

let of_simulator ~name sim =
  { endpoint_name = name;
    sim;
    compute = float_of_int (Simulator.prim_count sim) *. seconds_per_prim }

let of_applet ~name applet =
  Option.map (of_simulator ~name) (Jhdl_applet.Applet.simulator applet)

let name t = t.endpoint_name
let compute_seconds_per_cycle t = t.compute

let handle t message =
  match message with
  | Protocol.Set_inputs pairs ->
    (match
       List.iter (fun (port, v) -> Simulator.set_input t.sim port v) pairs
     with
     | () -> Protocol.Ack
     | exception Invalid_argument reason -> Protocol.Protocol_error reason)
  | Protocol.Cycle n ->
    Simulator.cycle ~n t.sim;
    Protocol.Ack
  | Protocol.Reset ->
    Simulator.reset t.sim;
    Protocol.Ack
  | Protocol.Get_outputs names ->
    (match
       List.map (fun port -> (port, Simulator.get_port t.sim port)) names
     with
     | pairs -> Protocol.Outputs_are pairs
     | exception Invalid_argument reason -> Protocol.Protocol_error reason)
  | Protocol.Outputs_are _ | Protocol.Ack ->
    Protocol.Protocol_error "unexpected reply message"
  | Protocol.Protocol_error _ as e -> e
