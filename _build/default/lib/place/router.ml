module Design = Jhdl_circuit.Design
open Jhdl_circuit.Types

type report = {
  routed : int;
  failed : int;
  total_segments : int;
  max_utilization : float;
  mean_detour : float;
}

(* channel segments connect orthogonally adjacent sites; identified by
   the lower/left endpoint and an axis *)
type segment = {
  seg_row : int;
  seg_col : int;
  horizontal : bool;
}

let segment_between (r1, c1) (r2, c2) =
  if r1 = r2 && abs (c1 - c2) = 1 then
    Some { seg_row = r1; seg_col = min c1 c2; horizontal = true }
  else if c1 = c2 && abs (r1 - r2) = 1 then
    Some { seg_row = min r1 r2; seg_col = c1; horizontal = false }
  else None

let neighbours ~rows ~cols (r, c) =
  List.filter
    (fun (nr, nc) -> nr >= 0 && nr < rows && nc >= 0 && nc < cols)
    [ (r - 1, c); (r + 1, c); (r, c - 1); (r, c + 1) ]

(* BFS from a set of tree sites to the target through segments with
   remaining capacity; returns the new path's sites (target side first,
   excluding the tree site it connected to) and the segments claimed *)
let bfs_connect ~rows ~cols ~available tree target =
  let visited = Hashtbl.create 64 in
  let parent = Hashtbl.create 64 in
  let queue = Queue.create () in
  Hashtbl.iter
    (fun site () ->
       Hashtbl.replace visited site ();
       Queue.add site queue)
    tree;
  let found = ref (Hashtbl.mem tree target) in
  while (not !found) && not (Queue.is_empty queue) do
    let site = Queue.pop queue in
    List.iter
      (fun next ->
         if (not (Hashtbl.mem visited next)) && not !found then begin
           match segment_between site next with
           | Some seg when available seg ->
             Hashtbl.replace visited next ();
             Hashtbl.replace parent next site;
             if next = target then found := true else Queue.add next queue
           | Some _ | None -> ()
         end)
      (neighbours ~rows ~cols site)
  done;
  if not !found then None
  else begin
    (* walk back from the target to the tree *)
    let rec back site acc_sites acc_segs =
      if Hashtbl.mem tree site then (acc_sites, acc_segs)
      else
        match Hashtbl.find_opt parent site with
        | None -> (acc_sites, acc_segs) (* target was already in the tree *)
        | Some prev ->
          let seg =
            match segment_between site prev with
            | Some seg -> seg
            | None -> assert false
          in
          back prev (site :: acc_sites) (seg :: acc_segs)
    in
    Some (back target [] [])
  end

let route design ~rows ~cols ~capacity =
  if capacity < 1 then invalid_arg "Router.route: capacity must be >= 1";
  (* placed positions, accumulated RLOCs clamped into the grid *)
  let positions = Hashtbl.create 256 in
  let rec walk ~row ~col ~placed c =
    let row, col, placed =
      match c.rloc with
      | Some (r, k) -> (row + r, col + k, true)
      | None -> (row, col, placed)
    in
    match c.kind with
    | Primitive _ ->
      if placed then
        Hashtbl.replace positions c.cell_id
          (min (max row 0) (rows - 1), min (max col 0) (cols - 1))
    | Composite _ ->
      List.iter (walk ~row ~col ~placed) (List.rev c.children)
  in
  walk ~row:0 ~col:0 ~placed:false (Design.root design);
  (* nets as site sets *)
  let nets =
    Design.all_nets design
    |> List.filter_map (fun n ->
      let terminals =
        (match n.driver with Some t -> [ t ] | None -> []) @ n.sinks
      in
      let sites =
        List.filter_map
          (fun t -> Hashtbl.find_opt positions t.term_cell.cell_id)
          terminals
        |> List.sort_uniq compare
      in
      match sites with
      | [] | [ _ ] -> None
      | sites ->
        let (r0, c0) = List.hd sites in
        let min_r, max_r, min_c, max_c =
          List.fold_left
            (fun (a, b, c, d) (r, k) -> (min a r, max b r, min c k, max d k))
            (r0, r0, c0, c0) sites
        in
        let hpwl = (max_r - min_r) + (max_c - min_c) in
        Some (hpwl, sites))
  in
  (* small nets first: they have the least routing freedom *)
  let nets = List.sort compare nets in
  let usage : (segment, int) Hashtbl.t = Hashtbl.create 512 in
  let available seg =
    Option.value (Hashtbl.find_opt usage seg) ~default:0 < capacity
  in
  let claim seg =
    Hashtbl.replace usage seg
      (1 + Option.value (Hashtbl.find_opt usage seg) ~default:0)
  in
  let routed = ref 0 and failed = ref 0 in
  let total_segments = ref 0 in
  let detours = ref [] in
  List.iter
    (fun (hpwl, sites) ->
       match sites with
       | [] -> ()
       | first :: rest ->
         let tree = Hashtbl.create 16 in
         Hashtbl.replace tree first ();
         let net_segments = ref 0 in
         let ok =
           List.for_all
             (fun target ->
                match bfs_connect ~rows ~cols ~available tree target with
                | None -> false
                | Some (new_sites, segments) ->
                  List.iter claim segments;
                  net_segments := !net_segments + List.length segments;
                  List.iter (fun s -> Hashtbl.replace tree s ()) new_sites;
                  Hashtbl.replace tree target ();
                  true)
             rest
         in
         if ok then begin
           incr routed;
           total_segments := !total_segments + !net_segments;
           if hpwl > 0 then
             detours := (float_of_int !net_segments /. float_of_int hpwl) :: !detours
         end
         else incr failed)
    nets;
  let max_utilization =
    Hashtbl.fold
      (fun _ n acc -> max acc (float_of_int n /. float_of_int capacity))
      usage 0.0
  in
  let mean_detour =
    match !detours with
    | [] -> 1.0
    | ds -> List.fold_left ( +. ) 0.0 ds /. float_of_int (List.length ds)
  in
  { routed = !routed;
    failed = !failed;
    total_segments = !total_segments;
    max_utilization;
    mean_detour }

let pp_report fmt r =
  Format.fprintf fmt
    "%d routed, %d failed; %d segments, peak channel %.0f%%, mean detour %.2fx"
    r.routed r.failed r.total_segments (100.0 *. r.max_utilization)
    r.mean_detour
