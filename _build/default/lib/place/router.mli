(** Global routing over the placed slice grid.

    Completes the physical half of the flow the paper's pre-placed
    macros live in: after placement (hand RLOCs or {!Placer}), nets are
    routed through inter-slice channel segments of finite capacity with
    a breadth-first maze search, netlist-order with smallest bounding
    boxes first. The report carries the figures a 2002-era designer read
    off the tools: completion rate, wirelength, channel congestion. *)

type report = {
  routed : int;  (** nets fully routed *)
  failed : int;  (** nets abandoned for lack of channel capacity *)
  total_segments : int;  (** channel segments claimed *)
  max_utilization : float;  (** busiest channel, as a fraction of capacity *)
  mean_detour : float;
      (** mean routed length / half-perimeter lower bound, >= 1.0 *)
}

(** [route d ~rows ~cols ~capacity] — route every net with at least two
    placed terminals. Terminals on unplaced primitives are ignored (they
    have no site). [capacity] is the per-segment track count. *)
val route :
  Jhdl_circuit.Design.t -> rows:int -> cols:int -> capacity:int -> report

val pp_report : Format.formatter -> report -> unit
