module Cell = Jhdl_circuit.Cell
module Design = Jhdl_circuit.Design
module Prim = Jhdl_circuit.Prim
open Jhdl_circuit.Types

type result = {
  placed : int;
  skipped : int;
  wirelength : int;
  rows : int;
  cols : int;
}

type resource =
  | Lut_site
  | Ff_site
  | Carry_site

let resource_of prim =
  match prim with
  | Prim.Lut _ | Prim.Inv | Prim.Srl16 _ | Prim.Ram16x1 _ -> Some Lut_site
  | Prim.Ff _ -> Some Ff_site
  | Prim.Muxcy | Prim.Xorcy | Prim.Mult_and -> Some Carry_site
  | Prim.Buf | Prim.Gnd | Prim.Vcc | Prim.Black_box _ -> None

(* accumulated-RLOC position of every placed primitive *)
let positions_of design =
  let table = Hashtbl.create 256 in
  let rec walk ~row ~col ~placed c =
    let row, col, placed =
      match Cell.rloc c with
      | Some (r, k) -> (row + r, col + k, true)
      | None -> (row, col, placed)
    in
    match c.kind with
    | Primitive _ -> if placed then Hashtbl.replace table c.cell_id (row, col)
    | Composite _ -> List.iter (walk ~row ~col ~placed) (Cell.children c)
  in
  walk ~row:0 ~col:0 ~placed:false (Design.root design);
  table

(* half-perimeter bounding box over each net's placed terminals *)
let wirelength_with positions design =
  let total = ref 0 in
  let measured = ref false in
  List.iter
    (fun n ->
       let terminals =
         (match n.driver with Some t -> [ t ] | None -> []) @ n.sinks
       in
       let placed =
         List.filter_map
           (fun t -> Hashtbl.find_opt positions t.term_cell.cell_id)
           terminals
       in
       match placed with
       | [] | [ _ ] -> ()
       | (r0, c0) :: rest ->
         measured := true;
         let min_r, max_r, min_c, max_c =
           List.fold_left
             (fun (a, b, c, d) (r, k) ->
                (min a r, max b r, min c k, max d k))
             (r0, r0, c0, c0) rest
         in
         total := !total + (max_r - min_r) + (max_c - min_c))
    (Design.all_nets design);
  if !measured then Some !total else None

let wirelength design = wirelength_with (positions_of design) design

(* primitives in BFS order from the top-level ports, so neighbours tend
   to be placed before the nodes that reference them *)
let bfs_order design =
  let prims = Design.all_prims design in
  let adjacency = Hashtbl.create 256 in
  let add a b =
    Hashtbl.replace adjacency a.cell_id
      (b :: Option.value (Hashtbl.find_opt adjacency a.cell_id) ~default:[])
  in
  List.iter
    (fun n ->
       let terminals =
         (match n.driver with Some t -> [ t ] | None -> []) @ n.sinks
       in
       List.iter
         (fun t1 ->
            List.iter
              (fun t2 ->
                 if t1.term_cell.cell_id <> t2.term_cell.cell_id then
                   add t1.term_cell t2.term_cell)
              terminals)
         terminals)
    (Design.all_nets design);
  (* seeds: primitives touching port nets *)
  let port_net_ids = Hashtbl.create 64 in
  List.iter
    (fun p ->
       Array.iter
         (fun n -> Hashtbl.replace port_net_ids n.net_id ())
         p.Design.port_wire.nets)
    (Design.ports design);
  let seeds =
    List.filter
      (fun c ->
         List.exists
           (fun b ->
              Array.exists
                (fun n -> Hashtbl.mem port_net_ids n.net_id)
                b.actual.nets)
           c.port_bindings)
      prims
  in
  let visited = Hashtbl.create 256 in
  let order = ref [] in
  let queue = Queue.create () in
  let enqueue c =
    if not (Hashtbl.mem visited c.cell_id) then begin
      Hashtbl.replace visited c.cell_id ();
      Queue.add c queue
    end
  in
  List.iter enqueue seeds;
  List.iter enqueue prims;
  while not (Queue.is_empty queue) do
    let c = Queue.pop queue in
    order := c :: !order;
    List.iter enqueue
      (Option.value (Hashtbl.find_opt adjacency c.cell_id) ~default:[])
  done;
  List.rev !order

type grid = {
  g_rows : int;
  g_cols : int;
  free : (resource * int * int, int) Hashtbl.t;
      (** remaining capacity per (resource, row, col) *)
}

let fresh_grid ~rows ~cols =
  let free = Hashtbl.create (rows * cols) in
  for r = 0 to rows - 1 do
    for c = 0 to cols - 1 do
      List.iter
        (fun resource -> Hashtbl.replace free (resource, r, c) 2)
        [ Lut_site; Ff_site; Carry_site ]
    done
  done;
  { g_rows = rows; g_cols = cols; free }

let take grid resource ~row ~col =
  let key = (resource, row, col) in
  match Hashtbl.find_opt grid.free key with
  | Some n when n > 0 ->
    Hashtbl.replace grid.free key (n - 1);
    true
  | Some _ | None -> false

(* nearest free slot to (row, col) by growing Manhattan rings *)
let nearest_free grid resource ~row ~col =
  let in_bounds r c = r >= 0 && r < grid.g_rows && c >= 0 && c < grid.g_cols in
  let has_free r c =
    in_bounds r c
    && Option.value (Hashtbl.find_opt grid.free (resource, r, c)) ~default:0 > 0
  in
  let rec ring radius =
    if radius > grid.g_rows + grid.g_cols then None
    else begin
      let candidates = ref [] in
      for dr = -radius to radius do
        let dc = radius - abs dr in
        List.iter
          (fun dc ->
             let r = row + dr and c = col + dc in
             if has_free r c then candidates := (r, c) :: !candidates)
          (if dc = 0 then [ 0 ] else [ dc; -dc ])
      done;
      match !candidates with
      | [] -> ring (radius + 1)
      | (r, c) :: _ -> Some (r, c)
    end
  in
  ring 0

let strip design = Cell.iter_rec Cell.clear_rloc (Design.root design)

let place_with design ~rows ~cols ~pick =
  strip design;
  let grid = fresh_grid ~rows ~cols in
  let located = Hashtbl.create 256 in
  let placed = ref 0 and skipped = ref 0 in
  List.iter
    (fun c ->
       match Option.bind (Cell.prim_of c) resource_of with
       | None -> incr skipped
       | Some resource ->
         let row, col = pick ~located c in
         (match nearest_free grid resource ~row ~col with
          | None -> invalid_arg "Placer: design does not fit the grid"
          | Some (r, k) ->
            let ok = take grid resource ~row:r ~col:k in
            assert ok;
            Cell.set_rloc c ~row:r ~col:k;
            Hashtbl.replace located c.cell_id (r, k);
            incr placed))
    (bfs_order design);
  let wl = Option.value (wirelength design) ~default:0 in
  { placed = !placed; skipped = !skipped; wirelength = wl; rows; cols }

(* neighbours of a primitive through its nets *)
let neighbour_positions ~located c =
  List.concat_map
    (fun b ->
       Array.to_list b.actual.nets
       |> List.concat_map (fun n ->
         let terminals =
           (match n.driver with Some t -> [ t ] | None -> []) @ n.sinks
         in
         List.filter_map
           (fun t ->
              if t.term_cell.cell_id = c.cell_id then None
              else Hashtbl.find_opt located t.term_cell.cell_id)
           terminals))
    c.port_bindings

let auto_place design ~rows ~cols =
  place_with design ~rows ~cols ~pick:(fun ~located c ->
    match neighbour_positions ~located c with
    | [] -> (rows / 2, cols / 2)
    | neighbours ->
      let n = List.length neighbours in
      let sr = List.fold_left (fun acc (r, _) -> acc + r) 0 neighbours in
      let sc = List.fold_left (fun acc (_, k) -> acc + k) 0 neighbours in
      (sr / n, sc / n))

let random_place design ~rows ~cols ~seed =
  let state = ref (seed lor 1) in
  let rand n =
    state := ((!state * 1103515245) + 12345) land 0x3FFFFFFF;
    !state mod n
  in
  place_with design ~rows ~cols ~pick:(fun ~located:_ _ ->
    (rand rows, rand cols))
