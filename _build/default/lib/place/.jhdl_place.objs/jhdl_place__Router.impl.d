lib/place/router.ml: Format Hashtbl Jhdl_circuit List Option Queue
