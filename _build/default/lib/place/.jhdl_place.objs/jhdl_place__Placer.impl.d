lib/place/placer.ml: Array Hashtbl Jhdl_circuit List Option Queue
