lib/place/router.mli: Format Jhdl_circuit
