lib/place/placer.mli: Jhdl_circuit
