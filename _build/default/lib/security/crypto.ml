type key = int

let key_of_string secret =
  let h = ref 0x2bf29ce484222325 in
  String.iter
    (fun c ->
       h := !h lxor Char.code c;
       h := !h * 0x100000001b3)
    secret;
  let k = !h land max_int in
  if k = 0 then 0x9e3779b9 else k

(* xorshift64 keystream *)
let keystream_byte state =
  let s = !state in
  let s = s lxor (s lsl 13) land max_int in
  let s = s lxor (s lsr 7) in
  let s = s lxor (s lsl 17) land max_int in
  state := s;
  s land 0xFF

let encrypt key plaintext =
  let state = ref key in
  String.map
    (fun c -> Char.chr (Char.code c lxor keystream_byte state))
    plaintext

let decrypt = encrypt

let checksum data =
  let h = ref 0x811c9dc5 in
  String.iter
    (fun c ->
       h := !h lxor Char.code c;
       h := !h * 0x01000193 land 0xFFFFFFFF)
    data;
  Printf.sprintf "%08x" !h
