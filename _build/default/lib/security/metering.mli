(** Hardware/usage metering, after Koushanfar & Qu (the paper's [6]):
    the vendor counts and caps IP uses per licensee. Applets consult the
    meter before each metered action (build, netlist export), so an
    evaluation license can allow, say, unlimited builds but three netlist
    exports. *)

type t

type action =
  | Build
  | Simulate
  | Netlist_export
  | Download

val action_name : action -> string

(** [create ~limits] — per-action caps; absent action means unlimited. *)
val create : limits:(action * int) list -> t

(** [record meter ~user action] — count one use. Returns [Ok remaining]
    (remaining uses after this one, [None] = unlimited) or [Error used]
    when the cap was already reached (the use is not recorded). *)
val record : t -> user:string -> action -> (int option, int) result

(** [used meter ~user action] — uses so far. *)
val used : t -> user:string -> action -> int

(** [report meter] — per-user, per-action usage lines for the vendor. *)
val report : t -> string
