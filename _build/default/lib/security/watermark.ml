module Wire = Jhdl_circuit.Wire
module Cell = Jhdl_circuit.Cell
module Design = Jhdl_circuit.Design
module Prim = Jhdl_circuit.Prim
module Virtex = Jhdl_virtex.Virtex
module Lut_init = Jhdl_logic.Lut_init

let wm_property = "WM_INDEX"

let signature_bits ~vendor ~bits =
  (* FNV-1a stream expanded by rehashing with a counter *)
  let word i =
    let h = ref 0x811c9dc5 in
    String.iter
      (fun c ->
         h := !h lxor Char.code c;
         h := !h * 0x01000193 land 0x3FFFFFFF)
      (Printf.sprintf "%s:%d" vendor i);
    !h
  in
  List.init bits (fun i -> (word (i / 16) lsr (i mod 16)) land 1 = 1)

let lut_overhead ~bits = (bits + 15) / 16

let embed design ~vendor ?(bits = 64) () =
  let root = Design.root design in
  let wm_cell = Cell.composite root ~name:"watermark" ~type_name:"Watermark" ~ports:[] () in
  Cell.set_property wm_cell "WM_VENDOR_CHECK" (Crypto.checksum vendor);
  let luts = lut_overhead ~bits in
  (* round up to whole INIT tables so every entry carries signature data *)
  let signature = Array.of_list (signature_bits ~vendor ~bits:(luts * 16)) in
  let gnd = Virtex.gnd wm_cell in
  let vcc = Virtex.vcc wm_cell in
  let tap = Wire.create wm_cell ~name:"wm_tap" luts in
  for j = 0 to luts - 1 do
    let init =
      Lut_init.of_function ~inputs:4 (fun addr -> signature.((j * 16) + addr))
    in
    let lut =
      Virtex.lut4 wm_cell
        ~name:(Printf.sprintf "wm%d" j)
        ~init gnd vcc gnd vcc (Wire.bit tap j)
    in
    Cell.set_property lut wm_property (string_of_int j)
  done;
  luts

let watermark_luts design =
  Design.all_prims design
  |> List.filter_map (fun c ->
    match Cell.get_property c wm_property, Cell.prim_of c with
    | Some index, Some (Prim.Lut init) when Lut_init.inputs init = 4 ->
      Some (int_of_string index, init)
    | _, (Some _ | None) -> None)
  |> List.sort (fun (a, _) (b, _) -> Int.compare a b)

let extract design =
  match watermark_luts design with
  | [] -> None
  | luts ->
    Some
      (List.concat_map
         (fun (_, init) ->
            List.init 16 (fun addr -> Lut_init.eval_int init addr))
         luts)

let verify design ~vendor =
  match extract design with
  | None -> false
  | Some extracted ->
    let expected = signature_bits ~vendor ~bits:(List.length extracted) in
    List.for_all2 Bool.equal extracted expected
