type action =
  | Build
  | Simulate
  | Netlist_export
  | Download

let action_name = function
  | Build -> "build"
  | Simulate -> "simulate"
  | Netlist_export -> "netlist-export"
  | Download -> "download"

type t = {
  limits : (action * int) list;
  counts : (string * action, int) Hashtbl.t;
}

let create ~limits = { limits; counts = Hashtbl.create 16 }

let used meter ~user action =
  Option.value (Hashtbl.find_opt meter.counts (user, action)) ~default:0

let record meter ~user action =
  let current = used meter ~user action in
  match List.assoc_opt action meter.limits with
  | Some limit when current >= limit -> Error current
  | limit ->
    Hashtbl.replace meter.counts (user, action) (current + 1);
    Ok (Option.map (fun l -> l - current - 1) limit)

let report meter =
  let entries =
    Hashtbl.fold
      (fun (user, action) count acc -> (user, action, count) :: acc)
      meter.counts []
    |> List.sort compare
  in
  let line (user, action, count) =
    let cap =
      match List.assoc_opt action meter.limits with
      | Some limit -> Printf.sprintf "/%d" limit
      | None -> ""
    in
    Printf.sprintf "  %-12s %-16s %d%s" user (action_name action) count cap
  in
  match entries with
  | [] -> "(no metered activity)\n"
  | entries -> String.concat "\n" (List.map line entries) ^ "\n"
