lib/security/watermark.ml: Array Bool Char Crypto Int Jhdl_circuit Jhdl_logic Jhdl_virtex List Printf String
