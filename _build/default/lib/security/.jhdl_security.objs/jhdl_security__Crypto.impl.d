lib/security/crypto.ml: Char Printf String
