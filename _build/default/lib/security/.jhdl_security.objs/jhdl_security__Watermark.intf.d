lib/security/watermark.mli: Jhdl_circuit
