lib/security/crypto.mli:
