lib/security/metering.mli:
