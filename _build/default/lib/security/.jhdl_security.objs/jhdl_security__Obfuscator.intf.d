lib/security/obfuscator.mli: Jhdl_bundle
