lib/security/metering.ml: Hashtbl List Option Printf String
