lib/security/obfuscator.ml: Char Jhdl_bundle List String
