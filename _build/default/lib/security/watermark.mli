(** FPGA design watermarking.

    Embeds a vendor signature into a generated circuit as configuration
    data, in the spirit of Lach/Mangione-Smith/Potkonjak (the paper's
    [7]): the signature bits are spread across the INIT tables of
    dedicated LUT4 cells whose inputs are tied to constants, so the mark
    travels with every netlist the applet exports and survives instance
    renaming (extraction keys on a carried property plus INIT contents,
    not on names). The mark is functionally inert; its one tap net is
    deliberately left unloaded, which the design-rule checker reports as
    a warning, not an error. *)

(** [signature_bits ~vendor ~bits] derives a deterministic [bits]-long
    signature from the vendor string (FNV-expanded). *)
val signature_bits : vendor:string -> bits:int -> bool list

(** [embed design ~vendor ?bits ()] inserts the watermark cells under the
    design root. Returns the number of LUTs added. Default 64 bits. *)
val embed : Jhdl_circuit.Design.t -> vendor:string -> ?bits:int -> unit -> int

(** [extract design] recovers the embedded signature bits, or [None] when
    no watermark is present. *)
val extract : Jhdl_circuit.Design.t -> bool list option

(** [verify design ~vendor] checks the embedded signature against the
    vendor string. False when absent or corrupted. *)
val verify : Jhdl_circuit.Design.t -> vendor:string -> bool

(** [lut_overhead ~bits] — LUTs a [bits]-wide mark costs (16 bits per
    LUT4 INIT). *)
val lut_overhead : bits:int -> int
