(** Java class-file obfuscation, modeled.

    "Techniques such as Java class file obfuscation and class encryption
    may be added to increase the security of the IP" (Section 4.3). The
    obfuscator renames every class in a jar to a short generated
    identifier, keeping a reverse mapping for the vendor. Renaming
    shrinks the symbol portion of every class (the measurable effect the
    ablation bench reports) and removes the human-readable structure. *)

type mapping = (string * string) list
(** [(original_fqcn, obfuscated_fqcn)] pairs *)

(** [obfuscate jar] renames all classes to ["o.a"], ["o.b"], ... Returns
    the rewritten jar and the vendor-side mapping. Deterministic. *)
val obfuscate : Jhdl_bundle.Jar.t -> Jhdl_bundle.Jar.t * mapping

(** [shrinkage ~original ~obfuscated] is the compressed-size reduction as
    a fraction of the original (0.07 = 7% smaller). *)
val shrinkage :
  original:Jhdl_bundle.Jar.t -> obfuscated:Jhdl_bundle.Jar.t -> float

(** [deobfuscate_name mapping name] recovers an original class name from
    a stack trace or report. *)
val deobfuscate_name : mapping -> string -> string option
