(** Class encryption, modeled on real bytes.

    The paper's second hardening technique. Here the "class body" is any
    byte string (netlists, applet payloads, license blobs); encryption is
    a keyed stream cipher (xorshift keystream — honest about being a
    model, structurally identical to how class-encryption loaders
    work). *)

type key

(** [key_of_string secret] derives a key deterministically. *)
val key_of_string : string -> key

(** [encrypt key plaintext] / [decrypt key ciphertext] — involutive pair;
    [decrypt k (encrypt k s) = s] for all [s]. *)
val encrypt : key -> string -> string

val decrypt : key -> string -> string

(** [checksum data] — FNV-1a digest rendered in hex, used by licenses and
    the watermark verifier to fingerprint payloads. *)
val checksum : string -> string
