module Jar = Jhdl_bundle.Jar
module Class_file = Jhdl_bundle.Class_file

type mapping = (string * string) list

(* short names: o.a, o.b, ..., o.z, o.aa, o.ab, ... *)
let short_name index =
  let rec encode i acc =
    let c = Char.chr (Char.code 'a' + (i mod 26)) in
    let acc = String.make 1 c ^ acc in
    if i < 26 then acc else encode ((i / 26) - 1) acc
  in
  "o." ^ encode index ""

let obfuscate jar =
  let mapping = ref [] in
  let index = ref 0 in
  let rewritten =
    Jar.map_entries
      (fun c ->
         let fresh = short_name !index in
         incr index;
         mapping := (c.Class_file.fqcn, fresh) :: !mapping;
         Class_file.rename c ~fqcn:fresh)
      jar
  in
  ({ rewritten with Jar.jar_name = jar.Jar.jar_name }, List.rev !mapping)

let shrinkage ~original ~obfuscated =
  let before = float_of_int (Jar.compressed_size original) in
  let after = float_of_int (Jar.compressed_size obfuscated) in
  (before -. after) /. before

let deobfuscate_name mapping name =
  List.find_map
    (fun (original, obfuscated) ->
       if String.equal obfuscated name then Some original else None)
    mapping
