type t = {
  fqcn : string;
  structural_bytes : int;
  symbol_bytes : int;
}

let size c = c.structural_bytes + c.symbol_bytes

(* Deterministic small hash (FNV-1a) so synthesized sizes are stable. *)
let hash name =
  let h = ref 0x811c9dc5 in
  String.iter
    (fun ch ->
       h := !h lxor Char.code ch;
       h := !h * 0x01000193 land 0x3FFFFFFF)
    name;
  !h

(* Synthetic reference count: how many symbol-table entries mention the
   class's own names; scales the obfuscation opportunity. *)
let reference_count fqcn = 18 + (hash (fqcn ^ "#refs") mod 30)

let symbol_bytes_for ~fqcn =
  String.length fqcn * reference_count fqcn / 3

let synthesize ~fqcn ~weight =
  (* average ~2.2 kB structural at weight 1.0, spread x0.5..x1.5 *)
  let spread = 0.5 +. (float_of_int (hash fqcn mod 1000) /. 1000.0) in
  let structural_bytes =
    int_of_float (2200.0 *. weight *. spread)
  in
  { fqcn; structural_bytes; symbol_bytes = symbol_bytes_for ~fqcn }

let rename c ~fqcn =
  (* keep the reference count of the original class: the same number of
     constant-pool slots now hold the shorter name *)
  let refs = reference_count c.fqcn in
  { c with fqcn; symbol_bytes = String.length fqcn * refs / 3 }

let package c =
  match String.rindex_opt c.fqcn '.' with
  | None -> ""
  | Some i -> String.sub c.fqcn 0 i

let simple_name c =
  match String.rindex_opt c.fqcn '.' with
  | None -> c.fqcn
  | Some i -> String.sub c.fqcn (i + 1) (String.length c.fqcn - i - 1)
