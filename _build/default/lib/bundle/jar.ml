type t = {
  jar_name : string;
  description : string;
  entries : Class_file.t list;
}

let create ~name ~description entries =
  { jar_name = name; description; entries }

let entry_count jar = List.length jar.entries

let uncompressed_size jar =
  List.fold_left (fun acc c -> acc + Class_file.size c) 0 jar.entries

let per_entry_overhead = 110
let per_archive_overhead = 300
let structural_ratio = 0.52
let symbol_ratio = 0.38

let compressed_size jar =
  let payload =
    List.fold_left
      (fun acc c ->
         acc
         + int_of_float
             (float_of_int c.Class_file.structural_bytes *. structural_ratio)
         + int_of_float (float_of_int c.Class_file.symbol_bytes *. symbol_ratio))
      0 jar.entries
  in
  payload + (per_entry_overhead * entry_count jar) + per_archive_overhead

let merge ~name ~description jars =
  let seen = Hashtbl.create 256 in
  let entries =
    List.concat_map (fun j -> j.entries) jars
    |> List.filter (fun c ->
      if Hashtbl.mem seen c.Class_file.fqcn then false
      else begin
        Hashtbl.replace seen c.Class_file.fqcn ();
        true
      end)
  in
  { jar_name = name; description; entries }

let map_entries f jar = { jar with entries = List.map f jar.entries }

let pp_size_kb fmt bytes =
  Format.fprintf fmt "%d kB" ((bytes + 512) / 1024)
