lib/bundle/download.ml: Jar List
