lib/bundle/partition.mli: Jar
