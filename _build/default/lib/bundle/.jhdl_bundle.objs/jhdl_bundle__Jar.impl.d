lib/bundle/jar.ml: Class_file Format Hashtbl List
