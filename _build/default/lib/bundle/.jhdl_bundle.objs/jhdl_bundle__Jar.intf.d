lib/bundle/jar.mli: Class_file Format
