lib/bundle/class_file.mli:
