lib/bundle/download.mli: Jar
