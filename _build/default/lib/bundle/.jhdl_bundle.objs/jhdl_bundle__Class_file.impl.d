lib/bundle/class_file.ml: Char String
