lib/bundle/partition.ml: Buffer Class_file Format Hashtbl Jar List Printf
