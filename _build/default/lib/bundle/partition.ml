type component =
  | Base
  | Virtex
  | Viewer
  | Applet

let all_components = [ Base; Virtex; Viewer; Applet ]

let component_name = function
  | Base -> "JHDLBase.jar"
  | Virtex -> "Virtex.jar"
  | Viewer -> "Viewer.jar"
  | Applet -> "Applet.jar"

let component_description = function
  | Base -> "JHDL Classes & Simulator"
  | Virtex -> "Xilinx Virtex Library"
  | Viewer -> "Schematic Viewers"
  | Applet -> "Module Generator & Applet"

(* Module inventories mirror this repository's libraries: every root class
   matches an OCaml module (or primitive cell) that actually exists here;
   [companions] models the inner/support classes javac would emit.
   [weight] scales the structural size (1.0 ~ 2.2 kB average). *)

type spec = {
  root : string;
  weight : float;
  companions : int;
}

let s root weight companions = { root; weight; companions }

let base_specs =
  [ s "Bit" 0.6 1; s "BitVector" 1.4 3; s "LutInit" 0.9 1;
    s "Wire" 1.8 5; s "Net" 0.8 2; s "Cell" 2.2 6; s "Node" 1.2 3;
    s "CellInterface" 0.7 1; s "Port" 0.7 1; s "PortRecord" 0.6 1;
    s "Property" 0.5 1; s "PlacementInfo" 0.7 1; s "NameManager" 0.6 1;
    s "HWSystem" 2.6 7; s "Design" 1.3 3; s "DesignRuleCheck" 1.5 4;
    s "Simulator" 3.0 9; s "SimulationNode" 1.2 3; s "Levelizer" 1.4 3;
    s "ClockDriver" 0.8 2; s "SimulatorCallback" 0.5 1;
    s "WatchManager" 0.9 2; s "HistoryRecorder" 0.9 2;
    s "BehavioralModel" 1.0 2; s "TestBench" 1.3 3;
    s "NetlistModel" 1.6 4; s "Netlister" 1.0 2; s "EdifNetlister" 2.2 5;
    s "VhdlNetlister" 2.0 5; s "VerilogNetlister" 1.8 4;
    s "IdentifierLegalizer" 0.9 2; s "InterchangeFormat" 0.6 1;
    s "AreaEstimator" 1.1 2; s "TimingEstimator" 1.7 4;
    s "DelayModel" 0.8 1; s "ResourceReport" 0.7 1;
    s "CircuitIterator" 0.7 2; s "HierarchyVisitor" 0.7 2;
    s "Configuration" 0.6 1; s "Version" 0.3 0; s "Util" 0.9 2 ]

let virtex_specs =
  [ s "VirtexLibrary" 1.8 4; s "VirtexCell" 1.0 2;
    s "lut1" 0.7 1; s "lut2" 0.7 1; s "lut3" 0.7 1; s "lut4" 0.9 1;
    s "fd" 0.7 1; s "fde" 0.7 1; s "fdce" 0.8 1; s "fdre" 0.8 1;
    s "muxcy" 0.6 1; s "xorcy" 0.6 1; s "mult_and" 0.6 1;
    s "srl16e" 1.0 2; s "ram16x1s" 1.0 2; s "bufg" 0.5 1;
    s "gnd" 0.4 0; s "vcc" 0.4 0; s "inv" 0.5 1; s "buf" 0.5 1;
    s "VirtexSimModels" 2.4 6; s "VirtexDelayModel" 1.2 2;
    s "VirtexAreaModel" 1.0 2; s "SlicePacker" 1.3 3;
    s "VirtexPlacement" 1.2 3; s "RlocGrid" 0.9 2;
    s "VirtexKCMMultiplier" 2.6 6; s "KCMTableBuilder" 1.4 3;
    s "ConstantTable" 0.9 2; s "CarryChainAdder" 1.3 3;
    s "RippleCarryAdder" 0.9 2; s "Subtractor" 0.8 1; s "AddSub" 0.8 1;
    s "Accumulator" 0.8 1; s "UpCounter" 0.9 2; s "Comparator" 0.9 2;
    s "EqualConst" 0.7 1; s "MuxN" 0.9 2; s "Parity" 0.7 1;
    s "DelayLine" 0.8 1; s "RegisterFile" 1.1 2;
    s "ShiftAddMultiplier" 1.1 2; s "ArrayMultiplier" 1.2 2;
    s "FirFilter" 1.6 4; s "CsdRecoder" 0.7 1;
    s "TechnologyMapper" 1.8 4; s "VirtexNetlistHints" 0.8 1 ]

let viewer_specs =
  [ s "SchematicViewer" 2.8 8; s "SchematicCanvas" 2.2 6;
    s "SymbolLibrary" 1.4 3; s "NetRouter" 1.6 4;
    s "HierarchyBrowser" 1.6 4; s "TreePanel" 1.0 2;
    s "WaveformViewer" 2.4 6; s "WaveformCanvas" 1.6 4;
    s "SignalFormatter" 0.8 1; s "VcdWriter" 0.9 2;
    s "FloorplanViewer" 1.5 3; s "LayoutGrid" 0.9 2;
    s "ZoomControl" 0.6 1; s "ViewerUtil" 0.8 2 ]

let applet_specs =
  [ s "KCMApplet" 1.2 2; s "ParameterPanel" 0.8 1;
    s "BuildButtonHandler" 0.5 0; s "NetlistWindow" 0.6 1;
    s "AppletLicense" 0.4 0 ]

let package_of = function
  | Base -> "byucc.jhdl.base"
  | Virtex -> "byucc.jhdl.Xilinx.Virtex"
  | Viewer -> "byucc.jhdl.apps.Viewers"
  | Applet -> "byucc.jhdl.apps.applets"

let specs_of = function
  | Base -> base_specs
  | Virtex -> virtex_specs
  | Viewer -> viewer_specs
  | Applet -> applet_specs

(* Per-component structural scale calibrated against Table 1 (see the
   bench `table1_jar_sizes` and DESIGN.md Section 4). *)
let scale_of = function
  | Base -> 3.50
  | Virtex -> 2.88
  | Viewer -> 3.04
  | Applet -> 2.20

let classes_of component =
  let package = package_of component in
  let scale = scale_of component in
  List.concat_map
    (fun spec ->
       let fqcn = package ^ "." ^ spec.root in
       let main = Class_file.synthesize ~fqcn ~weight:(spec.weight *. scale) in
       let inner =
         List.init spec.companions (fun i ->
           Class_file.synthesize
             ~fqcn:(Printf.sprintf "%s$%d" fqcn (i + 1))
             ~weight:(0.35 *. scale))
       in
       main :: inner)
    (specs_of component)

let jar_cache : (component, Jar.t) Hashtbl.t = Hashtbl.create 4

let jar_of component =
  match Hashtbl.find_opt jar_cache component with
  | Some jar -> jar
  | None ->
    let jar =
      Jar.create
        ~name:(component_name component)
        ~description:(component_description component)
        (classes_of component)
    in
    Hashtbl.replace jar_cache component jar;
    jar

let jars_for components =
  List.filter (fun c -> List.mem c components) all_components
  |> List.map jar_of

let monolithic () =
  Jar.merge ~name:"JHDLAll.jar" ~description:"Complete JHDL distribution"
    (List.map jar_of all_components)

let total_compressed jars =
  List.fold_left (fun acc j -> acc + Jar.compressed_size j) 0 jars

let table jars =
  let buffer = Buffer.create 512 in
  let add fmt = Printf.ksprintf (fun s -> Buffer.add_string buffer s) fmt in
  add "%-14s %-8s %s\n" "File" "Size" "Description";
  List.iter
    (fun j ->
       add "%-14s %-8s %s\n" j.Jar.jar_name
         (Format.asprintf "%a" Jar.pp_size_kb (Jar.compressed_size j))
         j.Jar.description)
    jars;
  add "%-14s %-8s\n" "Total"
    (Format.asprintf "%a" Jar.pp_size_kb (total_compressed jars));
  Buffer.contents buffer
