(** The standard partitioning of the JHDL binaries into jar archives.

    "The binaries associated with the JHDL design tool are partitioned
    into a number of smaller, more specific Jar archive files. This
    allows a given applet to require only those Jar files required by the
    applet code" (Section 4.4). The four components here are the ones
    Table 1 lists for the constant-multiplier applet; their class
    inventories mirror this repository's module inventory and their
    sizes are calibrated to the paper's figures. *)

type component =
  | Base  (** JHDLBase.jar — core classes & simulator *)
  | Virtex  (** Virtex.jar — technology library & module generators *)
  | Viewer  (** Viewer.jar — schematic/waveform/layout viewers *)
  | Applet  (** Applet.jar — module generator applet glue *)

val all_components : component list
val component_name : component -> string

(** [jar_of c] builds the component's jar (memoized; inventories are
    deterministic). *)
val jar_of : component -> Jar.t

(** [jars_for components] returns the jar set for an applet needing
    [components], deduplicated, in canonical order. *)
val jars_for : component list -> Jar.t list

(** [monolithic ()] merges every component into one archive — the
    "deliver everything" baseline of experiment C2. *)
val monolithic : unit -> Jar.t

(** [total_compressed jars] sums compressed sizes. *)
val total_compressed : Jar.t list -> int

(** [table ~jars] renders rows shaped like the paper's Table 1:
    file, size, description, and a total line. *)
val table : Jar.t list -> string
