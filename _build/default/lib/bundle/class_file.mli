(** Model of a compiled Java class file.

    The paper delivers IP executables as jar archives of class files
    (Table 1); since no JVM exists here, class files are modeled: a class
    has a fully-qualified name and a byte size split into a {e structural}
    part (bytecode, constant-pool scaffolding) and a {e symbol} part
    (names in the constant pool — what an obfuscator shrinks and what
    grows with descriptive identifiers).

    Sizes come from a deterministic cost model seeded by the class name,
    so bundles are reproducible; the per-package totals are calibrated
    against the paper's Table 1 (see DESIGN.md). *)

type t = {
  fqcn : string;  (** fully-qualified class name, e.g. ["byucc.jhdl.base.Wire"] *)
  structural_bytes : int;
  symbol_bytes : int;
}

(** [size c] is the uncompressed size in bytes. *)
val size : t -> int

(** [synthesize ~fqcn ~weight] builds a class whose structural size is
    drawn deterministically from the name hash, scaled by [weight]
    (1.0 = an average ~2.8 kB class). Symbol bytes grow with the name
    length and the class's synthetic reference count. *)
val synthesize : fqcn:string -> weight:float -> t

(** [rename c ~fqcn] renames the class and recomputes symbol bytes for
    the new (typically much shorter) name — the obfuscator's primitive. *)
val rename : t -> fqcn:string -> t

(** [package c] is the package prefix of [fqcn] ("" when none). *)
val package : t -> string

(** [simple_name c] is the last component of [fqcn]. *)
val simple_name : t -> string
