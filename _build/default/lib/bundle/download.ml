type link = {
  bandwidth_bits_per_s : float;
  latency_s : float;
}

let modem_56k = { bandwidth_bits_per_s = 56_000.0; latency_s = 0.150 }
let isdn_128k = { bandwidth_bits_per_s = 128_000.0; latency_s = 0.060 }
let dsl_1m = { bandwidth_bits_per_s = 1_000_000.0; latency_s = 0.030 }
let lan_10m = { bandwidth_bits_per_s = 10_000_000.0; latency_s = 0.005 }
let lan_100m = { bandwidth_bits_per_s = 100_000_000.0; latency_s = 0.001 }

let link_name link =
  if link.bandwidth_bits_per_s < 100_000.0 then "56k modem"
  else if link.bandwidth_bits_per_s < 500_000.0 then "128k ISDN"
  else if link.bandwidth_bits_per_s < 5_000_000.0 then "1M DSL"
  else if link.bandwidth_bits_per_s < 50_000_000.0 then "10M LAN"
  else "100M LAN"

let jar_seconds link jar =
  let bytes = float_of_int (Jar.compressed_size jar) in
  (* connection setup + request/response: two round trips *)
  (4.0 *. link.latency_s) +. (bytes *. 8.0 /. link.bandwidth_bits_per_s)

let jars_seconds link jars =
  List.fold_left (fun acc j -> acc +. jar_seconds link j) 0.0 jars

let update_seconds link ~changed () = jars_seconds link changed
