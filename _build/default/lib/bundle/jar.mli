(** Jar archives: compressed collections of class files.

    "Java Jar files are compressed archive files used to collect a number
    [of] binary class files and other program resources" (paper,
    footnote 2). The compression model applies a deflate-like ratio to
    class-file payloads plus fixed per-entry and per-archive overheads. *)

type t = {
  jar_name : string;  (** e.g. ["JHDLBase.jar"] *)
  description : string;
  entries : Class_file.t list;
}

val create : name:string -> description:string -> Class_file.t list -> t

val entry_count : t -> int

(** [uncompressed_size jar] is the byte total of all entries. *)
val uncompressed_size : t -> int

(** [compressed_size jar] models deflate: structural bytes compress to
    ~52%, symbol bytes (names repeat heavily) to ~38%, plus 110 bytes of
    central-directory overhead per entry and 300 per archive. *)
val compressed_size : t -> int

(** [merge ~name ~description jars] combines entry lists (the monolithic
    baseline of experiment C2); duplicate class names are kept once. *)
val merge : name:string -> description:string -> t list -> t

(** [map_entries f jar] transforms every entry (obfuscation hook). *)
val map_entries : (Class_file.t -> Class_file.t) -> t -> t

(** [pp_size_kb] formats a byte count the way Table 1 does ("346 kB"). *)
val pp_size_kb : Format.formatter -> int -> unit
