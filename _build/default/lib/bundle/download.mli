(** Applet download-time model.

    "Since the binaries are loaded by the browser the first time the web
    page is accessed, large binaries may require an unreasonable amount of
    time and network bandwidth" (Section 4.4). Time to fetch a jar set
    over HTTP/1.0-style transfers: one round trip of latency per file
    plus payload over bandwidth. *)

type link = {
  bandwidth_bits_per_s : float;
  latency_s : float;  (** one-way propagation *)
}

(** Named link presets used by the benches. *)
val modem_56k : link

val isdn_128k : link
val dsl_1m : link
val lan_10m : link
val lan_100m : link

val link_name : link -> string

(** [jar_seconds link jar] — time for one jar: TCP-ish setup (2 RTTs)
    plus compressed payload over bandwidth. *)
val jar_seconds : link -> Jar.t -> float

(** [jars_seconds link jars] — sequential HTTP/1.0 fetches. *)
val jars_seconds : link -> Jar.t list -> float

(** [update_seconds link ~changed ()] — bytes actually transferred on a
    revisit after a vendor update: the browser cache keeps unchanged
    jars, so only [changed] is re-fetched (the paper's "customers always
    access the latest revisions" advantage, priced). *)
val update_seconds : link -> changed:Jar.t list -> unit -> float
