module Bits = Jhdl_logic.Bits
module Wire = Jhdl_circuit.Wire
module Design = Jhdl_circuit.Design
module Simulator = Jhdl_sim.Simulator
open Jhdl_circuit.Types

type mismatch = {
  inputs : (string * Bits.t) list;
  cycle : int;
  port : string;
  value_a : Bits.t;
  value_b : Bits.t;
}

type result =
  | Equivalent of { vectors : int; exhaustive : bool }
  | Not_equivalent of mismatch
  | Interface_mismatch of string

let interface design =
  List.map
    (fun p ->
       (p.Design.port_name, p.Design.port_dir, Wire.width p.Design.port_wire))
    (Design.ports design)
  |> List.sort compare

let check ?(max_exhaustive_bits = 14) ?(random_vectors = 500)
    ?cycles_per_vector ?(clock = "clk") a b =
  let ia = interface a and ib = interface b in
  if ia <> ib then
    Interface_mismatch
      (Printf.sprintf "A has ports {%s}, B has {%s}"
         (String.concat ", " (List.map (fun (n, _, w) -> Printf.sprintf "%s<%d>" n w) ia))
         (String.concat ", " (List.map (fun (n, _, w) -> Printf.sprintf "%s<%d>" n w) ib)))
  else begin
    let has_clock = List.exists (fun (n, d, _) -> n = clock && d = Input) ia in
    let cycles =
      match cycles_per_vector with
      | Some n -> n
      | None -> if has_clock then 1 else 0
    in
    let inputs =
      List.filter (fun (n, d, _) -> d = Input && n <> clock) ia
      |> List.map (fun (n, _, w) -> (n, w))
    in
    let outputs =
      List.filter (fun (_, d, _) -> d = Output) ia |> List.map (fun (n, _, _) -> n)
    in
    let total_bits = List.fold_left (fun acc (_, w) -> acc + w) 0 inputs in
    let clock_wire design =
      if has_clock then
        Option.map (fun p -> p.Design.port_wire) (Design.find_port design clock)
      else None
    in
    let sim_a = Simulator.create ?clock:(clock_wire a) a in
    let sim_b = Simulator.create ?clock:(clock_wire b) b in
    (* split an integer seed into per-port values, LSB first *)
    let vector_of_int value =
      let rec split acc value = function
        | [] -> List.rev acc
        | (name, width) :: rest ->
          let mask = (1 lsl width) - 1 in
          split ((name, Bits.of_int ~width (value land mask)) :: acc)
            (value lsr width) rest
      in
      split [] value inputs
    in
    let exhaustive = total_bits <= max_exhaustive_bits in
    let vectors =
      if exhaustive then List.init (1 lsl total_bits) vector_of_int
      else begin
        let state = ref 0x2545F491 in
        List.init random_vectors (fun _ ->
          state := ((!state * 1103515245) + 12345) land 0x3FFFFFFFFFFF;
          vector_of_int (!state lsr 13))
      end
    in
    let compare_outputs ~stimulus ~cycle =
      List.find_map
        (fun port ->
           let value_a = Simulator.get_port sim_a port in
           let value_b = Simulator.get_port sim_b port in
           if Bits.equal value_a value_b then None
           else Some { inputs = stimulus; cycle; port; value_a; value_b })
        outputs
    in
    let run_vector stimulus =
      Simulator.reset sim_a;
      Simulator.reset sim_b;
      List.iter
        (fun (port, value) ->
           Simulator.set_input sim_a port value;
           Simulator.set_input sim_b port value)
        stimulus;
      let rec step cycle =
        match compare_outputs ~stimulus ~cycle with
        | Some m -> Some m
        | None ->
          if cycle >= cycles then None
          else begin
            Simulator.cycle sim_a;
            Simulator.cycle sim_b;
            step (cycle + 1)
          end
      in
      step 0
    in
    let rec sweep count = function
      | [] -> Equivalent { vectors = count; exhaustive }
      | stimulus :: rest ->
        (match run_vector stimulus with
         | Some m -> Not_equivalent m
         | None -> sweep (count + 1) rest)
    in
    sweep 0 vectors
  end

let pp_result fmt = function
  | Equivalent { vectors; exhaustive } ->
    Format.fprintf fmt "equivalent over %d %s vector(s)" vectors
      (if exhaustive then "exhaustive" else "random")
  | Not_equivalent m ->
    Format.fprintf fmt
      "NOT equivalent: at cycle %d, port %s: A=%s B=%s under {%s}" m.cycle
      m.port (Bits.to_string m.value_a) (Bits.to_string m.value_b)
      (String.concat ", "
         (List.map
            (fun (n, v) -> Printf.sprintf "%s=%s" n (Bits.to_string v))
            m.inputs))
  | Interface_mismatch reason ->
    Format.fprintf fmt "interface mismatch: %s" reason
