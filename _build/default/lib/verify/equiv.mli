(** Simulation-based equivalence checking between two designs.

    The customer side of "the more visibility available to the customer,
    the more confidence he or she has that the IP operates as specified":
    given two designs with the same external interface — say, the netlist
    a licensed applet exported and the black-box model the evaluation
    applet exposed, or a chain-structured KCM against a tree-structured
    one — drive both with the same vectors and compare every output.

    Small input spaces are checked exhaustively; larger ones with a
    deterministic pseudo-random sweep. Clocked designs are compared over
    a configurable number of cycles per vector with outputs sampled
    after every cycle. *)

type mismatch = {
  inputs : (string * Jhdl_logic.Bits.t) list;  (** the failing stimulus *)
  cycle : int;  (** cycle at which the divergence was observed (0 = comb) *)
  port : string;
  value_a : Jhdl_logic.Bits.t;
  value_b : Jhdl_logic.Bits.t;
}

type result =
  | Equivalent of { vectors : int; exhaustive : bool }
  | Not_equivalent of mismatch
  | Interface_mismatch of string
      (** differing port names, directions or widths *)

(** [check ?max_exhaustive_bits ?random_vectors ?cycles_per_vector ?clock
    a b]:
    - ports are matched by name; a clock port named by [clock] (default
      ["clk"]) is excluded from stimulus and used to clock both sides;
    - if the total input width is at most [max_exhaustive_bits]
      (default 14), every input combination is applied; otherwise
      [random_vectors] (default 500) deterministic pseudo-random vectors;
    - for sequential designs set [cycles_per_vector] (default 1 when a
      clock port exists, 0 otherwise): outputs are compared before the
      first edge and after each of the cycles. Both simulators are reset
      between vectors. *)
val check :
  ?max_exhaustive_bits:int ->
  ?random_vectors:int ->
  ?cycles_per_vector:int ->
  ?clock:string ->
  Jhdl_circuit.Design.t ->
  Jhdl_circuit.Design.t ->
  result

val pp_result : Format.formatter -> result -> unit
