lib/verify/equiv.ml: Format Jhdl_circuit Jhdl_logic Jhdl_sim List Option Printf String
