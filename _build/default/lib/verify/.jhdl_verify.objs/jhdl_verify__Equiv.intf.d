lib/verify/equiv.mli: Format Jhdl_circuit Jhdl_logic
