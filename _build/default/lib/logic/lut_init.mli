(** Truth tables (INIT values) for k-input look-up tables.

    A k-input LUT is configured by a 2{^k}-entry truth table. Entry [i]
    gives the output when the inputs, read as an unsigned integer with
    input 0 as the LSB, equal [i]. This matches the Xilinx INIT
    convention. Supported sizes are 1 to 6 inputs. *)

type t

(** [inputs t] is k, the number of LUT inputs. *)
val inputs : t -> int

(** [of_function ~inputs f] tabulates [f] over all 2{^inputs} addresses. *)
val of_function : inputs:int -> (int -> bool) -> t

(** [of_int ~inputs init] takes the truth table as the low 2{^inputs} bits
    of [init], entry 0 in bit 0. Raises [Invalid_argument] if [inputs] is
    outside 1..6. *)
val of_int : inputs:int -> int -> t

val to_int : t -> int

(** [of_hex ~inputs s] parses an INIT string such as ["CAFE"] (MSB first,
    as printed in netlists). *)
val of_hex : inputs:int -> string -> t

(** [to_hex t] prints the INIT in the width netlists expect: 2{^k}/4 hex
    digits, e.g. 4 digits for a LUT4. *)
val to_hex : t -> string

(** [eval t addr_bits] looks up the entry selected by the input bits (LSB =
    input 0). If any input is undefined the result is [X] unless every
    reachable entry agrees. [addr_bits] must have exactly [inputs t]
    elements. *)
val eval : t -> Bit.t array -> Bit.t

(** [eval_int t addr] looks up entry [addr] directly. *)
val eval_int : t -> int -> bool

val equal : t -> t -> bool

(** Common tables. *)
val const_false : inputs:int -> t
val const_true : inputs:int -> t
val and_all : inputs:int -> t
val or_all : inputs:int -> t
val xor_all : inputs:int -> t

(** [passthrough ~inputs ~input] copies the given input to the output. *)
val passthrough : inputs:int -> input:int -> t

val pp : Format.formatter -> t -> unit
