lib/logic/bit.ml: Format Int Printf
