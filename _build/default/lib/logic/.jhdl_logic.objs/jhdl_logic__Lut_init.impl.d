lib/logic/lut_init.ml: Array Bit Format List Printf
