lib/logic/bit.mli: Format
