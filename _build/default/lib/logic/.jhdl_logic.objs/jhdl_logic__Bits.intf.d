lib/logic/bits.mli: Bit Format
