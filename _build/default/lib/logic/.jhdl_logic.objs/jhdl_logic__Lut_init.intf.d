lib/logic/lut_init.mli: Bit Format
