lib/logic/bits.ml: Array Bit Format Int List Printf String
