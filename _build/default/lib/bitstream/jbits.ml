type package = {
  device_rows : int;
  device_cols : int;
  frames : Config_mem.frame list;
  payload_bytes : int;
  slices_used : int;
}

let package ~device_rows ~device_cols design =
  let blank = Config_mem.create ~rows:device_rows ~cols:device_cols in
  let target = Config_mem.create ~rows:device_rows ~cols:device_cols in
  let slices_used = Config_mem.configure target design in
  let frames = Config_mem.diff ~base:blank ~target in
  let payload_bytes =
    List.fold_left
      (fun acc f -> acc + Bytes.length f.Config_mem.frame_data + 8)
      64 frames
  in
  { device_rows; device_cols; frames; payload_bytes; slices_used }

let install ~into p =
  if Config_mem.rows into <> p.device_rows || Config_mem.cols into <> p.device_cols
  then invalid_arg "Jbits.install: device geometry mismatch";
  Config_mem.apply into p.frames

type visibility = {
  form : string;
  bytes : int;
  instance_names : bool;
  hierarchy : bool;
  connectivity : bool;
  lut_contents : bool;
  simulatable : bool;
}

let visibility_of_package p =
  { form = "JBits bitstream frames";
    bytes = p.payload_bytes;
    instance_names = false;
    hierarchy = false;
    connectivity = false (* routing words are opaque signatures *);
    lut_contents = true (* readback recovers INITs *);
    simulatable = false }

let visibility_of_netlist ~bytes =
  { form = "structural netlist (EDIF)";
    bytes;
    instance_names = true;
    hierarchy = true;
    connectivity = true;
    lut_contents = true;
    simulatable = true }

let visibility_of_applet ~bytes =
  { form = "black-box applet";
    bytes;
    instance_names = false;
    hierarchy = false;
    connectivity = false;
    lut_contents = false;
    simulatable = true }

let pp_visibility_table fmt rows =
  let yes_no b = if b then "yes" else "-" in
  Format.fprintf fmt "%-26s %9s %6s %6s %6s %6s %6s@."
    "delivery form" "bytes" "names" "hier" "conn" "INITs" "sim";
  List.iter
    (fun v ->
       Format.fprintf fmt "%-26s %9d %6s %6s %6s %6s %6s@." v.form v.bytes
         (yes_no v.instance_names) (yes_no v.hierarchy)
         (yes_no v.connectivity) (yes_no v.lut_contents)
         (yes_no v.simulatable))
    rows
