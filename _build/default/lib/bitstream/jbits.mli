(** JBits-style IP delivery: pre-placed cores as bitstream modifications.

    The delivery alternative the paper contrasts with (Section 1.2.3):
    "This tool delivers pre-placed IP cores by modifying the
    configuration bitstream of the user. Because the IP is delivered in
    the form of changes to a proprietary configuration bitstream, the
    structure of the IP is hidden from the user."

    A vendor {!package}s a generated design into partial-reconfiguration
    frames against a blank device; a customer {!install}s those frames
    into their own configuration. {!visibility} quantifies what each
    delivery form exposes, feeding the A3 bench. *)

type package = {
  device_rows : int;
  device_cols : int;
  frames : Config_mem.frame list;  (** only the columns the IP touches *)
  payload_bytes : int;
  slices_used : int;
}

(** [package ~device_rows ~device_cols design] — configure [design] into
    a blank device of the given geometry and keep the touched frames. *)
val package :
  device_rows:int -> device_cols:int -> Jhdl_circuit.Design.t -> package

(** [install ~into p] — apply the package's frames to a customer
    configuration. Raises [Invalid_argument] on geometry mismatch. *)
val install : into:Config_mem.t -> package -> unit

(** What a customer can recover from a delivery artifact. *)
type visibility = {
  form : string;
  bytes : int;
  instance_names : bool;
  hierarchy : bool;
  connectivity : bool;
  lut_contents : bool;
  simulatable : bool;
}

(** [visibility_of_package p] and [visibility_of_netlist ~bytes] /
    [visibility_of_applet ~bytes] — the comparison rows. *)
val visibility_of_package : package -> visibility

val visibility_of_netlist : bytes:int -> visibility
val visibility_of_applet : bytes:int -> visibility
val pp_visibility_table : Format.formatter -> visibility list -> unit
