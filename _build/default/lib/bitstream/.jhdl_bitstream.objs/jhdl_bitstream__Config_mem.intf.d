lib/bitstream/config_mem.mli: Jhdl_circuit Jhdl_logic
