lib/bitstream/jbits.ml: Bytes Config_mem Format List
