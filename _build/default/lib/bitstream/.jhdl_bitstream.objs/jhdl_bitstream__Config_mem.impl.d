lib/bitstream/config_mem.ml: Array Bytes Char Hashtbl Int Jhdl_circuit Jhdl_logic List
