lib/bitstream/jbits.mli: Config_mem Format Jhdl_circuit
