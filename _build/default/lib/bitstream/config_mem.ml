module Cell = Jhdl_circuit.Cell
module Design = Jhdl_circuit.Design
module Prim = Jhdl_circuit.Prim
module Lut_init = Jhdl_logic.Lut_init
module Bit = Jhdl_logic.Bit
open Jhdl_circuit.Types

(* per-slice configuration: 2 LUT sites, 2 FFs, 2 carry pairs, routing *)
type slice = {
  lut_inits : int array; (* 2 x 16-bit *)
  lut_used : bool array;
  ff_used : bool array;
  ff_init : bool array;
  carry_used : bool array;
  routing : int array; (* 4 x 16-bit words *)
}

let blank_slice () =
  { lut_inits = Array.make 2 0;
    lut_used = Array.make 2 false;
    ff_used = Array.make 2 false;
    ff_init = Array.make 2 false;
    carry_used = Array.make 2 false;
    routing = Array.make 4 0 }

type t = {
  grid_rows : int;
  grid_cols : int;
  grid : slice array array; (* [row].[col] *)
}

type frame = {
  frame_col : int;
  frame_data : bytes;
}

let create ~rows ~cols =
  if rows < 1 || cols < 1 then invalid_arg "Config_mem.create: bad geometry";
  { grid_rows = rows;
    grid_cols = cols;
    grid = Array.init rows (fun _ -> Array.init cols (fun _ -> blank_slice ())) }

let rows t = t.grid_rows
let cols t = t.grid_cols

let slice_bytes = 13 (* 2x2 INIT + 1 flag byte + 4x2 routing *)

let frame_bytes t = t.grid_rows * slice_bytes

(* widen a k-input INIT to the 16-bit LUT4 table by repeating it over the
   unused (tied-off) address bits *)
let widen_init init =
  let k = Lut_init.inputs init in
  if k >= 4 then Lut_init.to_int init land 0xFFFF
  else begin
    let table = ref 0 in
    for addr = 0 to 15 do
      if Lut_init.eval_int init (addr land ((1 lsl k) - 1)) then
        table := !table lor (1 lsl addr)
    done;
    !table
  end

let fnv ints =
  let h = ref 0x811c9dc5 in
  List.iter
    (fun v ->
       let rec mix v k =
         if k = 0 then ()
         else begin
           h := !h lxor (v land 0xFF);
           h := !h * 0x01000193 land 0x3FFFFFFF;
           mix (v lsr 8) (k - 1)
         end
       in
       mix v 4)
    ints;
  !h

(* signatures use design-local net indices so that rebuilding the same
   design yields identical bits regardless of global id counters *)
let routing_signature ~net_index inst =
  let nets =
    List.concat_map
      (fun b ->
         Array.to_list b.actual.nets
         |> List.filter_map (fun n -> Hashtbl.find_opt net_index n.net_id))
      inst.port_bindings
    |> List.sort Int.compare
  in
  fnv nets

(* resource slots *)
type resource =
  | Lut_site
  | Ff_site
  | Carry_site

let slot_free slice resource index =
  match resource with
  | Lut_site -> not slice.lut_used.(index)
  | Ff_site -> not slice.ff_used.(index)
  | Carry_site -> not slice.carry_used.(index)

let place_in t ~row ~col resource =
  (* probe the requested site first, then scan row-major from there *)
  let try_site r c =
    if r >= 0 && r < t.grid_rows && c >= 0 && c < t.grid_cols then begin
      let slice = t.grid.(r).(c) in
      let rec probe index =
        if index >= 2 then None
        else if slot_free slice resource index then Some (r, c, index)
        else probe (index + 1)
      in
      probe 0
    end
    else None
  in
  let rec scan offset =
    if offset >= t.grid_rows * t.grid_cols then None
    else begin
      let linear = ((row * t.grid_cols) + col + offset) mod (t.grid_rows * t.grid_cols) in
      let r = linear / t.grid_cols and c = linear mod t.grid_cols in
      match try_site r c with
      | Some site -> Some site
      | None -> scan (offset + 1)
    end
  in
  scan 0

let configure t design =
  let occupied = ref 0 in
  let net_index = Hashtbl.create 256 in
  List.iteri
    (fun i n -> Hashtbl.replace net_index n.net_id i)
    (Design.all_nets design);
  (* accumulated RLOC positions, as in the floorplan viewer *)
  let placements = ref [] in
  let rec walk ~row ~col ~placed c =
    let row, col, placed =
      match Cell.rloc c with
      | Some (r, k) -> (row + r, col + k, true)
      | None -> (row, col, placed)
    in
    match Cell.prim_of c with
    | Some prim -> placements := (c, prim, row, col, placed) :: !placements
    | None -> List.iter (walk ~row ~col ~placed) (Cell.children c)
  in
  walk ~row:0 ~col:0 ~placed:false (Design.root design);
  let place_prim (inst, prim, row, col, _placed) =
    let burn resource fill =
      match place_in t ~row ~col resource with
      | None -> invalid_arg "Config_mem.configure: design does not fit"
      | Some (r, c, index) ->
        let slice = t.grid.(r).(c) in
        fill slice index;
        let signature = routing_signature ~net_index inst in
        slice.routing.(index) <- slice.routing.(index) lxor (signature land 0xFFFF);
        slice.routing.(index + 2) <-
          slice.routing.(index + 2) lxor ((signature lsr 16) land 0xFFFF);
        incr occupied
    in
    match prim with
    | Prim.Lut init ->
      burn Lut_site (fun slice index ->
        slice.lut_used.(index) <- true;
        slice.lut_inits.(index) <- widen_init init)
    | Prim.Srl16 { init } | Prim.Ram16x1 { init } ->
      burn Lut_site (fun slice index ->
        slice.lut_used.(index) <- true;
        slice.lut_inits.(index) <- init land 0xFFFF)
    | Prim.Ff { init; _ } ->
      burn Ff_site (fun slice index ->
        slice.ff_used.(index) <- true;
        slice.ff_init.(index) <- Bit.equal init Bit.One)
    | Prim.Muxcy | Prim.Xorcy | Prim.Mult_and ->
      burn Carry_site (fun slice index -> slice.carry_used.(index) <- true)
    | Prim.Inv ->
      burn Lut_site (fun slice index ->
        slice.lut_used.(index) <- true;
        slice.lut_inits.(index) <- widen_init (Lut_init.of_int ~inputs:1 0b01))
    | Prim.Buf | Prim.Gnd | Prim.Vcc | Prim.Black_box _ -> ()
  in
  List.iter place_prim (List.rev !placements);
  !occupied

let encode_slice slice buffer offset =
  let put16 k v =
    Bytes.set buffer (offset + k) (Char.chr (v land 0xFF));
    Bytes.set buffer (offset + k + 1) (Char.chr ((v lsr 8) land 0xFF))
  in
  put16 0 slice.lut_inits.(0);
  put16 2 slice.lut_inits.(1);
  let flags =
    (if slice.lut_used.(0) then 1 else 0)
    lor (if slice.lut_used.(1) then 2 else 0)
    lor (if slice.ff_used.(0) then 4 else 0)
    lor (if slice.ff_used.(1) then 8 else 0)
    lor (if slice.ff_init.(0) then 16 else 0)
    lor (if slice.ff_init.(1) then 32 else 0)
    lor (if slice.carry_used.(0) then 64 else 0)
    lor if slice.carry_used.(1) then 128 else 0
  in
  Bytes.set buffer (offset + 4) (Char.chr flags);
  Array.iteri (fun i w -> put16 (5 + (2 * i)) (w land 0xFFFF)) slice.routing

let decode_slice buffer offset =
  let get16 k =
    Char.code (Bytes.get buffer (offset + k))
    lor (Char.code (Bytes.get buffer (offset + k + 1)) lsl 8)
  in
  let flags = Char.code (Bytes.get buffer (offset + 4)) in
  { lut_inits = [| get16 0; get16 2 |];
    lut_used = [| flags land 1 <> 0; flags land 2 <> 0 |];
    ff_used = [| flags land 4 <> 0; flags land 8 <> 0 |];
    ff_init = [| flags land 16 <> 0; flags land 32 <> 0 |];
    carry_used = [| flags land 64 <> 0; flags land 128 <> 0 |];
    routing = Array.init 4 (fun i -> get16 (5 + (2 * i))) }

let frame_of_col t col =
  let buffer = Bytes.create (frame_bytes t) in
  for row = 0 to t.grid_rows - 1 do
    encode_slice t.grid.(row).(col) buffer (row * slice_bytes)
  done;
  { frame_col = col; frame_data = buffer }

let frames t = List.init t.grid_cols (frame_of_col t)

let header_bytes = 64 (* sync word, device id, CRC fields *)

let total_bytes t = header_bytes + (t.grid_cols * frame_bytes t)

let diff ~base ~target =
  if rows base <> rows target || cols base <> cols target then
    invalid_arg "Config_mem.diff: geometry mismatch";
  List.filter
    (fun frame ->
       let base_frame = frame_of_col base frame.frame_col in
       not (Bytes.equal base_frame.frame_data frame.frame_data))
    (frames target)

let apply t frame_list =
  List.iter
    (fun frame ->
       if frame.frame_col < 0 || frame.frame_col >= t.grid_cols then
         invalid_arg "Config_mem.apply: frame column out of range";
       if Bytes.length frame.frame_data <> frame_bytes t then
         invalid_arg "Config_mem.apply: frame size mismatch";
       for row = 0 to t.grid_rows - 1 do
         t.grid.(row).(frame.frame_col) <-
           decode_slice frame.frame_data (row * slice_bytes)
       done)
    frame_list

let equal a b =
  rows a = rows b && cols a = cols b
  && List.for_all2
       (fun fa fb -> Bytes.equal fa.frame_data fb.frame_data)
       (frames a) (frames b)

let readback_luts t =
  let acc = ref [] in
  for row = t.grid_rows - 1 downto 0 do
    for col = t.grid_cols - 1 downto 0 do
      let slice = t.grid.(row).(col) in
      for site = 1 downto 0 do
        if slice.lut_used.(site) then
          acc :=
            (row, col, site, Lut_init.of_int ~inputs:4 slice.lut_inits.(site))
            :: !acc
      done
    done
  done;
  !acc

let copy t =
  let fresh = create ~rows:t.grid_rows ~cols:t.grid_cols in
  apply fresh (frames t);
  fresh
