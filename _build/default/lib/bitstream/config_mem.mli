(** Configuration-memory model of a Virtex-like device.

    The substrate behind the JBits comparison (paper Section 1.2.3):
    JBits delivers pre-placed IP "by modifying the configuration
    bitstream of the user", so the IP's structure is hidden — the
    customer receives opaque frames, not a netlist. This module models
    enough of a configuration memory to make that delivery style real:
    a grid of slices, each slice holding two LUT INITs, two flip-flop
    configuration bits, carry-cell usage and a block of routing bits
    derived deterministically from the net connectivity.

    Coordinates follow the RLOC convention used by the module
    generators: a slice at (row, col) packs the placed primitives whose
    accumulated RLOC lands there (two LUTs / two FFs / two carry pairs
    per site, overflow packs into the next free column slot). Unplaced
    primitives are packed left-to-right after the placed ones. *)

type t

type frame = {
  frame_col : int;
  frame_data : bytes;  (** one column of configuration, top row first *)
}

(** [create ~rows ~cols] — a blank (all-zero) configuration. *)
val create : rows:int -> cols:int -> t

val rows : t -> int
val cols : t -> int

(** [configure t design] — burn [design] into the configuration.
    Raises [Invalid_argument] if the design does not fit. Returns the
    number of slices occupied. *)
val configure : t -> Jhdl_circuit.Design.t -> int

(** [frames t] — the full bitstream, one frame per column. *)
val frames : t -> frame list

(** [frame_bytes] — size of one column frame in bytes. *)
val frame_bytes : t -> int

(** [total_bytes t] — full-bitstream size (frames plus a fixed header). *)
val total_bytes : t -> int

(** [diff ~base ~target] — partial reconfiguration: the frames of
    [target] that differ from [base]. *)
val diff : base:t -> target:t -> frame list

(** [apply t frames] — write frames into [t] (partial reconfiguration).
    Raises [Invalid_argument] on geometry mismatch. *)
val apply : t -> frame list -> unit

(** [equal a b] — same geometry and identical configuration bits. *)
val equal : t -> t -> bool

(** [readback_luts t] — what an attacker (or verifier) can recover from
    the bitstream alone: the list of non-empty LUT INITs with their
    (row, col, site) coordinates — contents without names, hierarchy or
    connectivity, which is exactly the visibility JBits-style delivery
    offers. *)
val readback_luts : t -> (int * int * int * Jhdl_logic.Lut_init.t) list

(** [copy t] — deep copy, for building base/target pairs. *)
val copy : t -> t
