(** Primitive (leaf) cell descriptors.

    A primitive instance carries one of these descriptors. The technology
    library ([Jhdl_virtex]) provides constructors that build primitive
    instances with the right ports; the simulator interprets the
    descriptor; the estimators map it to area and delay. [Black_box]
    carries a user-supplied behavioural model, the mechanism the paper
    uses both for non-FPGA circuitry and for protected black-box IP. *)

(** Behavioural model for [Black_box] primitives. [comb] maps the current
    input port values to output port values; it is called whenever an input
    changes. [clock_edge], if present, is called at each rising clock edge
    {e before} outputs are re-evaluated and may update internal state. *)
type behavior = {
  comb : read:(string -> Jhdl_logic.Bits.t) -> (string * Jhdl_logic.Bits.t) list;
  clock_edge : (read:(string -> Jhdl_logic.Bits.t) -> unit) option;
  state_reset : (unit -> unit) option;
      (** invoked by the simulator's reset; restores initial state *)
}

type t =
  | Lut of Jhdl_logic.Lut_init.t
      (** k-input LUT; ports I0..I{k-1}, O *)
  | Ff of {
      clock_enable : bool;  (** CE port present (FDCE/FDE) *)
      async_clear : bool;  (** CLR port present (FDCE/FDC) *)
      sync_reset : bool;  (** R port present (FDRE/FDR) *)
      init : Jhdl_logic.Bit.t;  (** power-on / GSR value *)
    }  (** D flip-flop; ports C, D, Q and optionally CE, CLR, R *)
  | Muxcy  (** carry-chain mux; ports S, DI, CI, O *)
  | Xorcy  (** carry-chain xor; ports LI, CI, O *)
  | Mult_and  (** carry-chain AND for multipliers; ports I0, I1, LO *)
  | Srl16 of { init : int }
      (** 16-bit shift register LUT; ports D, CE, CLK, A0..A3, Q *)
  | Ram16x1 of { init : int }
      (** 16x1 synchronous-write RAM; ports D, WE, WCLK, A0..A3, O *)
  | Buf  (** ports I, O *)
  | Inv  (** ports I, O *)
  | Gnd  (** port G *)
  | Vcc  (** port P *)
  | Black_box of {
      model_name : string;
      make_behavior : unit -> behavior;
          (** each simulator instance gets fresh state *)
    }

(** [name t] is the library cell name used in netlists (e.g. ["LUT4"],
    ["FDCE"], ["MUXCY"]). *)
val name : t -> string

(** [port_names t] lists (port, direction is input unless listed in
    [output_ports]). For [Black_box] the ports are taken from the instance,
    not the descriptor, so this returns []. *)
val port_names : t -> string list

(** [output_ports t] is the subset of [port_names] that are outputs. *)
val output_ports : t -> string list

(** [is_sequential t] is true when the primitive holds state that updates on
    a clock edge. *)
val is_sequential : t -> bool

(** [clock_port t] is the clock input name for sequential primitives. *)
val clock_port : t -> string option

val pp : Format.formatter -> t -> unit
