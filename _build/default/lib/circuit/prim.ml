type behavior = {
  comb : read:(string -> Jhdl_logic.Bits.t) -> (string * Jhdl_logic.Bits.t) list;
  clock_edge : (read:(string -> Jhdl_logic.Bits.t) -> unit) option;
  state_reset : (unit -> unit) option;
}

type t =
  | Lut of Jhdl_logic.Lut_init.t
  | Ff of {
      clock_enable : bool;
      async_clear : bool;
      sync_reset : bool;
      init : Jhdl_logic.Bit.t;
    }
  | Muxcy
  | Xorcy
  | Mult_and
  | Srl16 of { init : int }
  | Ram16x1 of { init : int }
  | Buf
  | Inv
  | Gnd
  | Vcc
  | Black_box of { model_name : string; make_behavior : unit -> behavior }

let name = function
  | Lut init -> Printf.sprintf "LUT%d" (Jhdl_logic.Lut_init.inputs init)
  | Ff { clock_enable; async_clear; sync_reset; _ } ->
    (match clock_enable, async_clear, sync_reset with
     | true, true, _ -> "FDCE"
     | true, false, true -> "FDRE"
     | true, false, false -> "FDE"
     | false, true, _ -> "FDC"
     | false, false, true -> "FDR"
     | false, false, false -> "FD")
  | Muxcy -> "MUXCY"
  | Xorcy -> "XORCY"
  | Mult_and -> "MULT_AND"
  | Srl16 _ -> "SRL16E"
  | Ram16x1 _ -> "RAM16X1S"
  | Buf -> "BUF"
  | Inv -> "INV"
  | Gnd -> "GND"
  | Vcc -> "VCC"
  | Black_box { model_name; _ } -> model_name

let lut_inputs k = List.init k (Printf.sprintf "I%d")

let port_names = function
  | Lut init -> lut_inputs (Jhdl_logic.Lut_init.inputs init) @ [ "O" ]
  | Ff { clock_enable; async_clear; sync_reset; _ } ->
    [ "C"; "D" ]
    @ (if clock_enable then [ "CE" ] else [])
    @ (if async_clear then [ "CLR" ] else [])
    @ (if sync_reset then [ "R" ] else [])
    @ [ "Q" ]
  | Muxcy -> [ "S"; "DI"; "CI"; "O" ]
  | Xorcy -> [ "LI"; "CI"; "O" ]
  | Mult_and -> [ "I0"; "I1"; "LO" ]
  | Srl16 _ -> [ "D"; "CE"; "CLK"; "A0"; "A1"; "A2"; "A3"; "Q" ]
  | Ram16x1 _ -> [ "D"; "WE"; "WCLK"; "A0"; "A1"; "A2"; "A3"; "O" ]
  | Buf | Inv -> [ "I"; "O" ]
  | Gnd -> [ "G" ]
  | Vcc -> [ "P" ]
  | Black_box _ -> []

let output_ports = function
  | Lut _ | Muxcy | Xorcy -> [ "O" ]
  | Ff _ | Srl16 _ -> [ "Q" ]
  | Mult_and -> [ "LO" ]
  | Ram16x1 _ -> [ "O" ]
  | Buf | Inv -> [ "O" ]
  | Gnd -> [ "G" ]
  | Vcc -> [ "P" ]
  | Black_box _ -> []

let is_sequential = function
  | Ff _ | Srl16 _ | Ram16x1 _ -> true
  | Black_box { make_behavior = _; _ } -> true
  | Lut _ | Muxcy | Xorcy | Mult_and | Buf | Inv | Gnd | Vcc -> false

let clock_port = function
  | Ff _ -> Some "C"
  | Srl16 _ -> Some "CLK"
  | Ram16x1 _ -> Some "WCLK"
  | Lut _ | Muxcy | Xorcy | Mult_and | Buf | Inv | Gnd | Vcc | Black_box _ ->
    None

let pp fmt t = Format.pp_print_string fmt (name t)
