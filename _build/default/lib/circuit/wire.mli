(** Wires: named vectors of nets created within a cell scope.

    This mirrors JHDL's wire API: a wire is created inside a cell
    ([new Wire(this, width)]), may be sliced and concatenated, and connects
    through hierarchy levels when passed to child-cell constructors. *)

type t = Types.wire

(** [create owner ?name width] declares a fresh [width]-bit wire in
    [owner]'s scope. The name defaults to ["w"]; it is made unique within
    the scope. Raises [Invalid_argument] if [width < 1] or [owner] is a
    primitive instance. *)
val create : Types.cell -> ?name:string -> int -> t

val name : t -> string
val owner : t -> Types.cell
val width : t -> int

(** [full_name w] is the hierarchical path of the owner plus the wire name,
    e.g. ["top/mult/pp0"]. *)
val full_name : t -> string

(** [net w i] is the net of bit [i]. *)
val net : t -> int -> Types.net

val nets : t -> Types.net array

(** [bit w i] is a 1-bit view of bit [i] of [w]. *)
val bit : t -> int -> t

(** [slice w ~lo ~hi] is a view of bits [lo..hi] (inclusive); the view
    shares nets with [w]. *)
val slice : t -> lo:int -> hi:int -> t

(** [concat hi lo] is a view with [lo] in the low bits; the view is
    owned by [lo]'s owner scope. *)
val concat : t -> t -> t

(** [is_view w] is true for slices and concats, which are not declared
    signals of their own in netlists. *)
val is_view : t -> bool

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
