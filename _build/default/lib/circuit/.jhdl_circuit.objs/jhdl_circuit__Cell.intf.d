lib/circuit/cell.mli: Format Prim Types Wire
