lib/circuit/prim.ml: Format Jhdl_logic List Printf
