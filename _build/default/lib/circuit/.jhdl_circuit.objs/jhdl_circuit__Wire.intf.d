lib/circuit/wire.mli: Format Types
