lib/circuit/design.mli: Cell Format Types Wire
