lib/circuit/design.ml: Array Cell Format Hashtbl List Option Prim Printf String Types Wire
