lib/circuit/wire.ml: Array Format Printf Types
