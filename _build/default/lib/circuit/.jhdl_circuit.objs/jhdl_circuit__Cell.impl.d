lib/circuit/cell.ml: Array Format Hashtbl List Option Prim Printf String Types
