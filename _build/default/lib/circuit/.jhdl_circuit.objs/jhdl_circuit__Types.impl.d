lib/circuit/types.ml: Hashtbl Prim Printf
