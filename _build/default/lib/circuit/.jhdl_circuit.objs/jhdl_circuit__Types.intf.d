lib/circuit/types.mli: Hashtbl Prim
