lib/circuit/prim.mli: Format Jhdl_logic
