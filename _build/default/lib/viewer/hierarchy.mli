(** Hierarchy browser: the textual counterpart of the JHDL circuit
    browser. Renders the cell tree with instance names, definition types
    and primitive leaf details, and supports drilling into a subtree by
    instance path — the "browse the hierarchy and structure of a
    generated design" capability of the schematic viewer (Section 2.1,
    Figure 3). *)

(** [render ?max_depth cell] draws the subtree rooted at [cell] as an
    indented tree. Primitive leaves show their library cell and INIT-style
    attributes; composites show child counts. *)
val render : ?max_depth:int -> Jhdl_circuit.Cell.t -> string

(** [render_design d] renders from the root and prefixes the top-level
    port list. *)
val render_design : Jhdl_circuit.Design.t -> string

(** [focus d path] renders the subtree at [path] (e.g. ["kcm/add1"]);
    [None] if the path does not resolve. *)
val focus : Jhdl_circuit.Design.t -> string -> string option
