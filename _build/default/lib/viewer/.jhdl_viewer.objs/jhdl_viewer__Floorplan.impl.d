lib/viewer/floorplan.ml: Array Buffer Char Hashtbl Int Jhdl_circuit List Option Printf
