lib/viewer/hierarchy.mli: Jhdl_circuit
