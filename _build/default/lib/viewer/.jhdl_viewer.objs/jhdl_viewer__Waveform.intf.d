lib/viewer/waveform.mli: Jhdl_logic Jhdl_sim
