lib/viewer/waveform.ml: Buffer Jhdl_logic Jhdl_sim List Printf String
