lib/viewer/floorplan.mli: Jhdl_circuit
