lib/viewer/schematic.mli: Jhdl_circuit
