lib/viewer/hierarchy.ml: Buffer Jhdl_circuit List Option Printf String
