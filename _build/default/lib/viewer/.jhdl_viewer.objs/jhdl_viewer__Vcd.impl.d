lib/viewer/vcd.ml: Buffer Char Int Jhdl_circuit Jhdl_logic Jhdl_sim List Printf String
