lib/viewer/vcd.mli: Jhdl_sim
