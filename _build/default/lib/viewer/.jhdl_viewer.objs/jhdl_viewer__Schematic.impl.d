lib/viewer/schematic.ml: Buffer Jhdl_circuit List Printf String
