(** Value-change-dump (VCD) export of the simulator's watch history, so
    recorded waveforms can be opened in a conventional viewer — one of the
    "interfaces with more tools" directions the paper's conclusion
    names. *)

(** [of_history sim] renders an IEEE-1364 VCD document from the watched
    signals; one timescale unit per clock cycle. *)
val of_history : Jhdl_sim.Simulator.t -> string
