module Bits = Jhdl_logic.Bits
module Bit = Jhdl_logic.Bit
module Simulator = Jhdl_sim.Simulator

let value_to_string ~radix v =
  if not (Bits.is_fully_defined v) then Bits.to_string v
  else
    match radix with
    | `Binary -> Bits.to_string v
    | `Hex ->
      (match Bits.to_int v with
       | Some n -> Printf.sprintf "%0*x" ((Bits.width v + 3) / 4) n
       | None -> Bits.to_string v)
    | `Unsigned ->
      (match Bits.to_int v with
       | Some n -> string_of_int n
       | None -> Bits.to_string v)

let bit_glyph b =
  match b with
  | Bit.Zero -> '_'
  | Bit.One -> '#'
  | Bit.X -> 'x'
  | Bit.Z -> 'z'

let render ?(radix = `Hex) sim =
  let history = Simulator.history sim in
  let buffer = Buffer.create 1024 in
  let add fmt = Printf.ksprintf (fun s -> Buffer.add_string buffer s) fmt in
  (match history with
   | [] -> add "(no watched signals)\n"
   | (_, first_samples) :: _ ->
     let label_width =
       List.fold_left (fun m (l, _) -> max m (String.length l)) 5 history
     in
     let cycles = List.map fst first_samples in
     add "%-*s" label_width "cycle";
     List.iter (fun c -> add " %4d" c) cycles;
     add "\n";
     List.iter
       (fun (label, samples) ->
          add "%-*s" label_width label;
          List.iter
            (fun (_, v) ->
               if Bits.width v = 1 then
                 add "    %c" (bit_glyph (Bits.get v 0))
               else add " %4s" (value_to_string ~radix v))
            samples;
          add "\n")
       history);
  Buffer.contents buffer
