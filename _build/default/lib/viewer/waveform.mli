(** Waveform viewer over the simulator's recorded history.

    "The history of the circuit state can be recorded and viewed using
    the JHDL waveform viewer" (Section 4.1). [render] draws an ASCII
    timing diagram of the watched wires; {!Vcd} writes the same history
    as a standard VCD file for external viewers. *)

(** [render sim] draws every watched signal: single-bit signals as a
    [_/‾]-style trace, buses as hex (or binary with [~radix:`Binary])
    values per cycle. *)
val render : ?radix:[ `Hex | `Binary | `Unsigned ] -> Jhdl_sim.Simulator.t -> string

(** [value_to_string ~radix v] formats one sample; any undefined bit makes
    hex/unsigned fall back to binary. *)
val value_to_string :
  radix:[ `Hex | `Binary | `Unsigned ] -> Jhdl_logic.Bits.t -> string
