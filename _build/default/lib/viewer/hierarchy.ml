module Cell = Jhdl_circuit.Cell
module Design = Jhdl_circuit.Design
module Wire = Jhdl_circuit.Wire
open Jhdl_circuit.Types

let attr_summary c =
  let attrs = Cell.properties c in
  let rloc =
    match Cell.rloc c with
    | Some (r, col) -> [ Printf.sprintf "RLOC=R%dC%d" r col ]
    | None -> []
  in
  let shown =
    List.filter_map
      (fun (k, v) ->
         if String.length v <= 12 then Some (Printf.sprintf "%s=%s" k v)
         else None)
      attrs
  in
  match shown @ rloc with
  | [] -> ""
  | parts -> " [" ^ String.concat " " parts ^ "]"

let port_summary c =
  match Cell.port_bindings c with
  | [] -> ""
  | bindings ->
    let show b =
      let arrow = match b.dir with Input -> "<-" | Output -> "->" in
      Printf.sprintf "%s%s%s" b.formal arrow (Wire.name b.actual)
    in
    " (" ^ String.concat ", " (List.map show bindings) ^ ")"

let render ?(max_depth = max_int) cell =
  let buffer = Buffer.create 1024 in
  let label c =
    if Cell.is_primitive c then
      Printf.sprintf "%s : %s%s%s" (Cell.name c) (Cell.type_name c)
        (attr_summary c) (port_summary c)
    else
      Printf.sprintf "%s : %s (%d children, %d wires)%s" (Cell.name c)
        (Cell.type_name c)
        (List.length (Cell.children c))
        (List.length (Cell.owned_wires c))
        (attr_summary c)
  in
  let rec go depth ~stem ~branch c =
    Buffer.add_string buffer (stem ^ branch ^ label c ^ "\n");
    if depth < max_depth then begin
      let children = Cell.children c in
      let n = List.length children in
      let child_stem =
        stem
        ^ (match branch with
           | "" -> ""
           | "`-- " -> "    "
           | _ -> "|   ")
      in
      List.iteri
        (fun i child ->
           let last_branch = if i = n - 1 then "`-- " else "|-- " in
           go (depth + 1) ~stem:child_stem ~branch:last_branch child)
        children
    end
  in
  go 0 ~stem:"" ~branch:"" cell;
  Buffer.contents buffer

let render_design d =
  let ports =
    Design.ports d
    |> List.map (fun p ->
      Printf.sprintf "  %s %s<%d>"
        (match p.Design.port_dir with Input -> "input " | Output -> "output")
        p.Design.port_name
        (Wire.width p.Design.port_wire))
  in
  "ports:\n" ^ String.concat "\n" ports ^ "\n\n" ^ render (Design.root d)

let focus d path =
  Option.map render (Cell.find_path (Design.root d) path)
