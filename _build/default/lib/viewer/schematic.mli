(** Schematic viewer: structural views of one level of hierarchy.

    [render] is the textual schematic (instances with their pin-to-net
    bindings and net fanout lists); [to_svg] draws the same level as an
    SVG diagram with instance boxes placed on a grid and ports on the
    margins — the applet's interactive schematic (Figures 1 and 3),
    rendered to a file a browser can open. *)

(** [render cell] shows the contents of one composite cell: its port
    bindings, its declared wires with driver/sink summaries, and one line
    per child instance. *)
val render : Jhdl_circuit.Cell.t -> string

(** [render_nets cell] lists each declared wire of [cell] with its
    driver and sinks, one bit per line — a "connectivity" view. *)
val render_nets : Jhdl_circuit.Cell.t -> string

(** [to_svg cell] draws the child instances of [cell] as boxes in
    columns, with left-edge input pins and right-edge output pins
    labelled by formal port and wire. *)
val to_svg : Jhdl_circuit.Cell.t -> string
