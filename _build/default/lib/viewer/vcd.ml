module Bits = Jhdl_logic.Bits
module Simulator = Jhdl_sim.Simulator

(* Short printable VCD identifiers from the printable-ASCII range, then
   two-character codes once the range is exhausted. *)
let id_of_index i =
  let alphabet_size = 94 in
  let char_of k = Char.chr (33 + k) in
  if i < alphabet_size then String.make 1 (char_of i)
  else
    let hi = i / alphabet_size - 1 and lo = i mod alphabet_size in
    Printf.sprintf "%c%c" (char_of hi) (char_of lo)

let sanitize label =
  String.map (fun c -> if c = ' ' || c = '$' then '_' else c) label

let of_history sim =
  let history = Simulator.history sim in
  let buffer = Buffer.create 4096 in
  let add fmt = Printf.ksprintf (fun s -> Buffer.add_string buffer s) fmt in
  add "$date 2002-06-10 $end\n";
  add "$version JHDL-OCaml simulator $end\n";
  add "$timescale 1 ns $end\n";
  add "$scope module %s $end\n"
    (sanitize (Jhdl_circuit.Design.name (Simulator.design sim)));
  let signals =
    List.mapi
      (fun i (label, samples) ->
         let width =
           match samples with
           | (_, v) :: _ -> Bits.width v
           | [] -> 1
         in
         let id = id_of_index i in
         add "$var wire %d %s %s $end\n" width id (sanitize label);
         (id, width, samples))
      history
  in
  add "$upscope $end\n$enddefinitions $end\n";
  (* group samples by cycle *)
  let cycles =
    List.concat_map (fun (_, _, samples) -> List.map fst samples) signals
    |> List.sort_uniq Int.compare
  in
  let emit_value id width v =
    if width = 1 then
      add "%c%s\n" (Jhdl_logic.Bit.to_char (Bits.get v 0)) id
    else add "b%s %s\n" (Bits.to_string v) id
  in
  List.iter
    (fun cycle ->
       add "#%d\n" cycle;
       List.iter
         (fun (id, width, samples) ->
            match List.assoc_opt cycle samples with
            | Some v -> emit_value id width v
            | None -> ())
         signals)
    cycles;
  Buffer.contents buffer
