(** Layout view: relative placement of pre-placed macros.

    Renders the RLOC grid of a macro as ASCII art, one character cell per
    (row, col) site — the paper's "view of the layout for pre-placed FPGA
    macros [that] provides the user with feedback on the size, shape, and
    layout of a circuit module under review" without exposing the
    underlying netlist (Section 3.2, "Layout view"). *)

type site = {
  site_row : int;
  site_col : int;
  occupants : Jhdl_circuit.Cell.t list;
}

(** [sites cell] collects every placed primitive below [cell], with
    coordinates accumulated through placed ancestors (a child's RLOC is
    relative to its parent macro). Unplaced primitives are skipped. *)
val sites : Jhdl_circuit.Cell.t -> site list

(** [render cell] draws the grid; each site shows a glyph for its
    dominant occupant kind (L=LUT, F=FF, C=carry, M=LUT-RAM, *=mixed) and
    a legend with utilization counts. Returns a note instead when nothing
    is placed. *)
val render : Jhdl_circuit.Cell.t -> string

(** [bounding_box cell] is [(rows, cols)] of the placed extent, or [None]
    when nothing is placed. *)
val bounding_box : Jhdl_circuit.Cell.t -> (int * int) option

(** [to_svg cell] draws the grid graphically: one rectangle per occupied
    site, colour-coded by resource kind, with a legend — the layout view
    a browser can render. *)
val to_svg : Jhdl_circuit.Cell.t -> string
