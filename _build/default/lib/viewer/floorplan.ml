module Cell = Jhdl_circuit.Cell
module Prim = Jhdl_circuit.Prim

type site = {
  site_row : int;
  site_col : int;
  occupants : Cell.t list;
}

(* Accumulate RLOC offsets down the hierarchy: a placed child of a placed
   macro lands at the sum of the offsets. *)
let sites cell =
  let table = Hashtbl.create 64 in
  let rec walk ~row ~col ~placed c =
    let row, col, placed =
      match Cell.rloc c with
      | Some (r, k) -> (row + r, col + k, true)
      | None -> (row, col, placed)
    in
    if Cell.is_primitive c then begin
      if placed then
        Hashtbl.replace table (row, col)
          (c :: Option.value (Hashtbl.find_opt table (row, col)) ~default:[])
    end
    else List.iter (walk ~row ~col ~placed) (Cell.children c)
  in
  walk ~row:0 ~col:0 ~placed:false cell;
  Hashtbl.fold
    (fun (site_row, site_col) occupants acc ->
       { site_row; site_col; occupants } :: acc)
    table []
  |> List.sort (fun a b ->
    match Int.compare a.site_row b.site_row with
    | 0 -> Int.compare a.site_col b.site_col
    | c -> c)

let glyph_of_prim p =
  match p with
  | Prim.Lut _ | Prim.Inv -> 'L'
  | Prim.Buf -> 'b'
  | Prim.Ff _ -> 'F'
  | Prim.Muxcy | Prim.Xorcy | Prim.Mult_and -> 'C'
  | Prim.Srl16 _ | Prim.Ram16x1 _ -> 'M'
  | Prim.Gnd | Prim.Vcc -> 'g'
  | Prim.Black_box _ -> 'B'

let glyph occupants =
  let glyphs =
    List.filter_map
      (fun c -> Option.map glyph_of_prim (Cell.prim_of c))
      occupants
    |> List.sort_uniq Char.compare
  in
  match glyphs with
  | [] -> '.'
  | [ g ] -> g
  | 'C' :: _ when List.for_all (fun g -> g = 'C' || g = 'L') glyphs -> 'S'
  | _ -> '*'

let bounding_box cell =
  match sites cell with
  | [] -> None
  | sites ->
    let rows = 1 + List.fold_left (fun m s -> max m s.site_row) 0 sites in
    let cols = 1 + List.fold_left (fun m s -> max m s.site_col) 0 sites in
    Some (rows, cols)

let render cell =
  match sites cell with
  | [] -> Printf.sprintf "%s: no placed primitives\n" (Cell.path cell)
  | placed ->
    let rows = 1 + List.fold_left (fun m s -> max m s.site_row) 0 placed in
    let cols = 1 + List.fold_left (fun m s -> max m s.site_col) 0 placed in
    let grid = Array.make_matrix rows cols '.' in
    List.iter
      (fun s -> grid.(s.site_row).(s.site_col) <- glyph s.occupants)
      placed;
    let buffer = Buffer.create 1024 in
    Printf.ksprintf (Buffer.add_string buffer)
      "layout of %s (%d rows x %d cols, %d placed sites)\n" (Cell.path cell)
      rows cols (List.length placed);
    for r = rows - 1 downto 0 do
      Printf.ksprintf (Buffer.add_string buffer) "  r%-3d " r;
      for c = 0 to cols - 1 do
        Buffer.add_char buffer grid.(r).(c)
      done;
      Buffer.add_char buffer '\n'
    done;
    Buffer.add_string buffer
      "  legend: L=LUT F=FF C=carry S=slice(L+C) M=LUT-RAM b=buf *=mixed\n";
    Buffer.contents buffer

let colour_of_prim p =
  match p with
  | Prim.Lut _ | Prim.Inv -> "#4a90d9"
  | Prim.Buf -> "#cccccc"
  | Prim.Ff _ -> "#50b050"
  | Prim.Muxcy | Prim.Xorcy | Prim.Mult_and -> "#e0a030"
  | Prim.Srl16 _ | Prim.Ram16x1 _ -> "#a060c0"
  | Prim.Gnd | Prim.Vcc -> "#888888"
  | Prim.Black_box _ -> "#d05050"

let to_svg cell =
  let placed = sites cell in
  let rows = 1 + List.fold_left (fun m s -> max m s.site_row) 0 placed in
  let cols = 1 + List.fold_left (fun m s -> max m s.site_col) 0 placed in
  let pitch = 22 in
  let margin = 40 in
  let width = (cols * pitch) + (2 * margin) in
  let height = (rows * pitch) + (2 * margin) + 30 in
  let buffer = Buffer.create 2048 in
  let add fmt = Printf.ksprintf (Buffer.add_string buffer) fmt in
  add
    "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"%d\" height=\"%d\" \
     font-family=\"monospace\" font-size=\"10\">\n"
    width height;
  add "<text x=\"10\" y=\"16\" font-size=\"13\">layout of %s (%dx%d)</text>\n"
    (Cell.path cell) rows cols;
  (* grid outline *)
  for r = 0 to rows - 1 do
    for c = 0 to cols - 1 do
      add
        "<rect x=\"%d\" y=\"%d\" width=\"%d\" height=\"%d\" fill=\"none\" \
         stroke=\"#dddddd\"/>\n"
        (margin + (c * pitch))
        (margin + ((rows - 1 - r) * pitch))
        pitch pitch
    done
  done;
  List.iter
    (fun s ->
       let x = margin + (s.site_col * pitch) in
       let y = margin + ((rows - 1 - s.site_row) * pitch) in
       let colour =
         match
           List.filter_map (fun c -> Cell.prim_of c) s.occupants
         with
         | [] -> "#ffffff"
         | [ p ] -> colour_of_prim p
         | p :: rest ->
           if List.for_all (fun q -> colour_of_prim q = colour_of_prim p) rest
           then colour_of_prim p
           else "#b0b0b0"
       in
       add
         "<rect x=\"%d\" y=\"%d\" width=\"%d\" height=\"%d\" fill=\"%s\" \
          stroke=\"#555555\"/>\n"
         (x + 1) (y + 1) (pitch - 2) (pitch - 2) colour)
    placed;
  let legend_y = margin + (rows * pitch) + 18 in
  List.iteri
    (fun i (label, colour) ->
       let x = margin + (i * 90) in
       add "<rect x=\"%d\" y=\"%d\" width=\"10\" height=\"10\" fill=\"%s\"/>\n" x
         (legend_y - 9) colour;
       add "<text x=\"%d\" y=\"%d\">%s</text>\n" (x + 14) legend_y label)
    [ ("LUT", "#4a90d9"); ("FF", "#50b050"); ("carry", "#e0a030");
      ("LUT-RAM", "#a060c0") ];
  add "</svg>\n";
  Buffer.contents buffer
