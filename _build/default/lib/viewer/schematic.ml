module Cell = Jhdl_circuit.Cell
module Wire = Jhdl_circuit.Wire
open Jhdl_circuit.Types

let binding_line b =
  let arrow = match b.dir with Input -> "<=" | Output -> "=>" in
  Printf.sprintf "    .%s %s %s<%d>" b.formal arrow (Wire.name b.actual)
    (Wire.width b.actual)

let render cell =
  let buffer = Buffer.create 1024 in
  let add fmt = Printf.ksprintf (fun s -> Buffer.add_string buffer s) fmt in
  add "cell %s : %s\n" (Cell.path cell) (Cell.type_name cell);
  (match Cell.port_bindings cell with
   | [] -> ()
   | bindings ->
     add "  ports:\n";
     List.iter (fun b -> add "%s\n" (binding_line b)) bindings);
  (match Cell.owned_wires cell with
   | [] -> ()
   | wires ->
     add "  wires:\n";
     List.iter
       (fun w -> add "    %s<%d>\n" (Wire.name w) (Wire.width w))
       wires);
  (match Cell.children cell with
   | [] -> ()
   | children ->
     add "  instances:\n";
     List.iter
       (fun c ->
          add "    %s : %s\n" (Cell.name c) (Cell.type_name c);
          List.iter (fun b -> add "  %s\n" (binding_line b)) (Cell.port_bindings c))
       children);
  Buffer.contents buffer

let terminal_label t =
  Printf.sprintf "%s.%s" (Cell.name t.term_cell) t.term_port

let render_nets cell =
  let buffer = Buffer.create 1024 in
  let add fmt = Printf.ksprintf (fun s -> Buffer.add_string buffer s) fmt in
  add "nets of %s:\n" (Cell.path cell);
  List.iter
    (fun w ->
       for i = 0 to Wire.width w - 1 do
         let n = Wire.net w i in
         let driver =
           match n.driver with
           | Some t -> terminal_label t
           | None -> "(undriven)"
         in
         let sinks =
           match n.sinks with
           | [] -> "(no sinks)"
           | sinks -> String.concat ", " (List.map terminal_label sinks)
         in
         if Wire.width w = 1 then
           add "  %s: %s -> %s\n" (Wire.name w) driver sinks
         else add "  %s[%d]: %s -> %s\n" (Wire.name w) i driver sinks
       done)
    (Cell.owned_wires cell);
  Buffer.contents buffer

let escape s =
  let buffer = Buffer.create (String.length s) in
  String.iter
    (fun c ->
       match c with
       | '<' -> Buffer.add_string buffer "&lt;"
       | '>' -> Buffer.add_string buffer "&gt;"
       | '&' -> Buffer.add_string buffer "&amp;"
       | '"' -> Buffer.add_string buffer "&quot;"
       | c -> Buffer.add_char buffer c)
    s;
  Buffer.contents buffer

(* Column placement: instances in creation order, wrapped into columns of
   eight; box height grows with pin count. *)
let to_svg cell =
  let children = Cell.children cell in
  let per_column = 8 in
  let box_width = 170 in
  let col_pitch = box_width + 90 in
  let row_pitch = 110 in
  let buffer = Buffer.create 4096 in
  let add fmt = Printf.ksprintf (fun s -> Buffer.add_string buffer s) fmt in
  let columns = ((List.length children + per_column - 1) / per_column) + 1 in
  let svg_width = (columns * col_pitch) + 60 in
  let rows = min per_column (max 1 (List.length children)) in
  let svg_height = (rows * row_pitch) + 80 in
  add
    "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"%d\" height=\"%d\" font-family=\"monospace\" font-size=\"11\">\n"
    svg_width svg_height;
  add "<text x=\"10\" y=\"20\" font-size=\"14\">%s : %s</text>\n"
    (escape (Cell.path cell))
    (escape (Cell.type_name cell));
  List.iteri
    (fun i c ->
       let col = i / per_column and row = i mod per_column in
       let x = 30 + (col * col_pitch) in
       let y = 40 + (row * row_pitch) in
       let bindings = Cell.port_bindings c in
       let ins = List.filter (fun b -> b.dir = Input) bindings in
       let outs = List.filter (fun b -> b.dir = Output) bindings in
       let pins = max (List.length ins) (List.length outs) in
       let height = max 40 (18 + (pins * 14)) in
       add
         "<rect x=\"%d\" y=\"%d\" width=\"%d\" height=\"%d\" fill=\"none\" stroke=\"black\"/>\n"
         x y box_width height;
       add "<text x=\"%d\" y=\"%d\" font-weight=\"bold\">%s</text>\n" (x + 4)
         (y + 13)
         (escape (Cell.name c ^ ":" ^ Cell.type_name c));
       List.iteri
         (fun j b ->
            add "<text x=\"%d\" y=\"%d\">%s&lt;%s</text>\n" (x + 4)
              (y + 28 + (j * 14))
              (escape b.formal)
              (escape (Wire.name b.actual)))
         ins;
       List.iteri
         (fun j b ->
            add
              "<text x=\"%d\" y=\"%d\" text-anchor=\"end\">%s&gt;%s</text>\n"
              (x + box_width - 4)
              (y + 28 + (j * 14))
              (escape b.formal)
              (escape (Wire.name b.actual)))
         outs)
    children;
  add "</svg>\n";
  Buffer.contents buffer
