(** Declarative test benches over the simulator.

    The paper lists "user defined viewers, functions, testbenchs" among
    the tools linked through the simulator's open API (Section 2.3).
    A bench is a list of steps applied in order; expectations are checked
    where declared and collected into a report rather than raising, so a
    vendor can ship a bench beside an IP and a customer can run it
    verbatim. *)

type step =
  | Drive of string * Jhdl_logic.Bits.t  (** set an input port *)
  | Step of int  (** clock n cycles *)
  | Settle  (** propagate combinational logic only *)
  | Expect of string * Jhdl_logic.Bits.t  (** check an output port *)
  | Expect_defined of string  (** check no X/Z on a port *)
  | Comment of string  (** annotate the report *)

type failure = {
  at_step : int;
  port : string;
  expected : string;
  got : string;
}

type report = {
  steps_run : int;
  checks : int;
  failures : failure list;
  log : string list;  (** comments plus failure lines, in order *)
}

val passed : report -> bool

(** [run sim steps] — execute against a live simulator. Unknown ports
    surface as failures, not exceptions. *)
val run : Simulator.t -> step list -> report

val pp_report : Format.formatter -> report -> unit

(** [vectors ~inputs ~outputs rows] — build steps from a truth-table:
    each row lists input values (paired with [inputs]) and expected
    output values (paired with [outputs]); combinational designs
    ([`Settle]) or one clock per row ([`Clocked]). *)
val vectors :
  mode:[ `Settle | `Clocked ] ->
  inputs:string list ->
  outputs:string list ->
  (Jhdl_logic.Bits.t list * Jhdl_logic.Bits.t list) list ->
  step list
