module Bits = Jhdl_logic.Bits

type step =
  | Drive of string * Bits.t
  | Step of int
  | Settle
  | Expect of string * Bits.t
  | Expect_defined of string
  | Comment of string

type failure = {
  at_step : int;
  port : string;
  expected : string;
  got : string;
}

type report = {
  steps_run : int;
  checks : int;
  failures : failure list;
  log : string list;
}

let passed r = r.failures = []

let run sim steps =
  let checks = ref 0 in
  let failures = ref [] in
  let log = ref [] in
  let fail ~at_step ~port ~expected ~got =
    failures := { at_step; port; expected; got } :: !failures;
    log :=
      Printf.sprintf "FAIL step %d: %s expected %s, got %s" at_step port
        expected got
      :: !log
  in
  let read ~at_step port k =
    match Simulator.get_port sim port with
    | v -> k v
    | exception Invalid_argument _ ->
      fail ~at_step ~port ~expected:"(port exists)" ~got:"(no such port)"
  in
  List.iteri
    (fun at_step step ->
       match step with
       | Drive (port, value) ->
         (match Simulator.set_input sim port value with
          | () -> ()
          | exception Invalid_argument reason ->
            fail ~at_step ~port ~expected:"(drivable input)" ~got:reason)
       | Step n -> Simulator.cycle ~n sim
       | Settle -> Simulator.propagate sim
       | Expect (port, expected) ->
         incr checks;
         read ~at_step port (fun got ->
           if not (Bits.equal got expected) then
             fail ~at_step ~port ~expected:(Bits.to_string expected)
               ~got:(Bits.to_string got))
       | Expect_defined port ->
         incr checks;
         read ~at_step port (fun got ->
           if not (Bits.is_fully_defined got) then
             fail ~at_step ~port ~expected:"(fully defined)"
               ~got:(Bits.to_string got))
       | Comment text -> log := text :: !log)
    steps;
  { steps_run = List.length steps;
    checks = !checks;
    failures = List.rev !failures;
    log = List.rev !log }

let pp_report fmt r =
  Format.fprintf fmt "@[<v>%d steps, %d checks, %d failure(s)@,%a@]"
    r.steps_run r.checks (List.length r.failures)
    (Format.pp_print_list ~pp_sep:Format.pp_print_cut Format.pp_print_string)
    r.log

let vectors ~mode ~inputs ~outputs rows =
  List.concat_map
    (fun (in_values, out_values) ->
       if List.length in_values <> List.length inputs then
         invalid_arg "Testbench.vectors: input arity mismatch";
       if List.length out_values <> List.length outputs then
         invalid_arg "Testbench.vectors: output arity mismatch";
       List.map2 (fun port v -> Drive (port, v)) inputs in_values
       @ (match mode with `Settle -> [ Settle ] | `Clocked -> [ Step 1 ])
       @ List.map2 (fun port v -> Expect (port, v)) outputs out_values)
    rows
