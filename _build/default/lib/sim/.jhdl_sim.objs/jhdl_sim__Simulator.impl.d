lib/sim/simulator.ml: Array Format Hashtbl Int Jhdl_circuit Jhdl_logic List Option Printf Queue Set
