lib/sim/testbench.mli: Format Jhdl_logic Simulator
