lib/sim/testbench.ml: Format Jhdl_logic List Printf Simulator
