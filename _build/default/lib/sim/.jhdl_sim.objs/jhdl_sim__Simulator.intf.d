lib/sim/simulator.mli: Jhdl_circuit Jhdl_logic
