(** The Virtex constant-coefficient multiplier (KCM) module generator —
    the paper's running example (Section 3.1, from Wirthlin & McMurtrey,
    FPL 2001).

    The multiplicand is split into 4-bit digits; each digit addresses a
    bank of LUT4s tabulating [constant * digit] (a partial-product
    look-up table); the shifted partial products are summed on
    carry-chain adders. In signed mode the most-significant digit is
    tabulated with the digit read as two's complement, and partial
    products are sign-extended into the accumulation. In pipelined mode a
    register stage follows every adder and the digit inputs are
    delay-balanced, giving one result per cycle after [latency] cycles.

    Following the paper's interface: the multiplicand and product widths
    are taken from the wires; when the product wire is narrower than the
    full product, the {e top} product bits are delivered (an "8-bit
    multiplicand, 8-bit constant and 12-bit product" yields the top 12
    bits); when wider, the result is sign- or zero-extended. *)

module Wire = Jhdl_circuit.Wire
module Cell = Jhdl_circuit.Cell

type t = {
  cell : Cell.t;
  latency : int;  (** cycles from multiplicand to product (0 unpipelined) *)
  full_width : int;  (** width of the untruncated product *)
  table_count : int;  (** number of partial-product tables *)
}

(** Partial-product accumulation structure. [`Chain] (the default) adds
    each table into a running sum with low-bit passthrough — minimal
    area, depth linear in the digit count. [`Tree] reduces the
    sign-extended addends pairwise at full width — logarithmic depth at
    the cost of wider adders, the choice for wide unpipelined
    multiplicands. Ablation A5 in the bench measures the trade. *)
type adder_structure =
  [ `Chain
  | `Tree ]

(** [create parent ~multiplicand ~product ~signed_mode ~pipelined_mode
    ~constant ()] — the [VirtexKCMMultiplier] constructor of the paper.
    [clk] is required when [pipelined_mode] is set. [adder_structure]
    defaults to [`Chain]; pipelining currently applies to the chain
    structure only (a pipelined [`Tree] raises [Invalid_argument]).

    Raises [Invalid_argument] when [constant] is negative in unsigned
    mode, or when [pipelined_mode] is set without [clk]. *)
val create :
  Cell.t ->
  ?name:string ->
  ?clk:Wire.t ->
  ?adder_structure:adder_structure ->
  multiplicand:Wire.t ->
  product:Wire.t ->
  signed_mode:bool ->
  pipelined_mode:bool ->
  constant:int ->
  unit ->
  t

(** [expected_product ~signed_mode ~constant ~multiplicand ~product_width
    ~full_width x_bits] is the reference result the hardware must match:
    the top/extended slice of [constant * x] delivered on a
    [product_width] wire. Used by tests and the applet's self-check. *)
val expected_product :
  signed_mode:bool ->
  constant:int ->
  full_width:int ->
  product_width:int ->
  Jhdl_logic.Bits.t ->
  Jhdl_logic.Bits.t
