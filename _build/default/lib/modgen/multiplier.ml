module Wire = Jhdl_circuit.Wire
module Cell = Jhdl_circuit.Cell
module Types = Jhdl_circuit.Types
module Virtex = Jhdl_virtex.Virtex

type t = {
  cell : Cell.t;
  latency : int;
  full_width : int;
}

(* Canonical signed digit recoding: digits in {-1,0,1}, no two adjacent
   non-zeros; returned LSB first. *)
let csd_digits k =
  let rec go k acc =
    if k = 0 then List.rev acc
    else if k land 1 = 0 then go (k asr 1) (0 :: acc)
    else
      let digit = if k land 3 = 3 then -1 else 1 in
      go ((k - digit) asr 1) (digit :: acc)
  in
  go k []

let adder_count_for ~constant =
  if constant < 0 then invalid_arg "Multiplier.adder_count_for: negative constant";
  let nonzero = List.length (List.filter (fun d -> d <> 0) (csd_digits constant)) in
  max 0 (nonzero - 1)

(* Zero-extended, shifted view of [x] at [width] bits: x << shift. *)
let shifted_view ~zero x ~shift ~width =
  let n = Wire.width x in
  let low = if shift = 0 then x else Wire.concat x (Util.fanout_bit zero ~width:shift) in
  let used = shift + n in
  if used > width then
    Wire.slice low ~lo:0 ~hi:(width - 1)
  else if used = width then low
  else Wire.concat (Util.fanout_bit zero ~width:(width - used)) low

let deliver cell ~signed_msb ~full ~product =
  let full_width = Wire.width full in
  let pw = Wire.width product in
  let view =
    if pw <= full_width then
      Wire.slice full ~lo:(full_width - pw) ~hi:(full_width - 1)
    else
      let ext =
        match signed_msb with
        | Some msb -> Util.fanout_bit msb ~width:(pw - full_width)
        | None ->
          let gnd = Virtex.gnd cell in
          Util.fanout_bit gnd ~width:(pw - full_width)
      in
      Wire.concat ext full
  in
  Util.buffer cell ~name:"prod" ~from:view ~into:product ()

let shift_add_constant parent ?(name = "shiftadd") ~multiplicand ~product
    ~constant () =
  if constant < 0 then
    invalid_arg "Multiplier.shift_add_constant: negative constant unsupported";
  let n = Wire.width multiplicand in
  let kw = Util.bits_for_constant constant in
  let full_width = n + kw in
  let cell =
    Cell.composite parent ~name ~type_name:"ShiftAddConstantMultiplier"
      ~ports:
        [ ("multiplicand", Types.Input, multiplicand);
          ("product", Types.Output, product) ]
      ()
  in
  Cell.set_property cell "CONSTANT" (string_of_int constant);
  let zero = Virtex.gnd cell in
  if constant = 0 then begin
    let view = Util.fanout_bit zero ~width:(Wire.width product) in
    Util.buffer cell ~name:"prod" ~from:view ~into:product ();
    { cell; latency = 0; full_width }
  end
  else begin
    (* highest CSD digit of a positive constant is +1: start there and
       add/subtract the lower terms *)
    let digits =
      List.mapi (fun i d -> (i, d)) (csd_digits constant)
      |> List.filter (fun (_, d) -> d <> 0)
      |> List.rev
    in
    let acc, rest =
      match digits with
      | (top_shift, 1) :: rest ->
        (shifted_view ~zero multiplicand ~shift:top_shift ~width:full_width, rest)
      | _ -> assert false
    in
    let final, stages =
      List.fold_left
        (fun (acc, stage) (shift, digit) ->
           let term =
             shifted_view ~zero multiplicand ~shift ~width:full_width
           in
           let next =
             Wire.create cell ~name:(Printf.sprintf "acc%d" stage) full_width
           in
           (if digit = 1 then
              let _ =
                Adders.carry_chain cell
                  ~name:(Printf.sprintf "add%d" stage)
                  ~a:acc ~b:term ~sum:next ()
              in
              ()
            else
              let _ =
                Adders.subtractor cell
                  ~name:(Printf.sprintf "sub%d" stage)
                  ~a:acc ~b:term ~diff:next ()
              in
              ());
           (next, stage + 1))
        (acc, 0) rest
    in
    ignore stages;
    deliver cell ~signed_msb:None ~full:final ~product;
    { cell; latency = 0; full_width }
  end

let array_mult parent ?(name = "arraymult") ~a ~b ~product () =
  let wa = Wire.width a and wb = Wire.width b in
  let full_width = wa + wb in
  let cell =
    Cell.composite parent ~name ~type_name:"ArrayMultiplier"
      ~ports:
        [ ("a", Types.Input, a); ("b", Types.Input, b);
          ("product", Types.Output, product) ]
      ()
  in
  let zero = Virtex.gnd cell in
  let masked_row j =
    let row = Wire.create cell ~name:(Printf.sprintf "row%d" j) wa in
    for i = 0 to wa - 1 do
      let _ =
        Virtex.and2 cell
          ~name:(Printf.sprintf "pp%d_%d" j i)
          (Wire.bit a i) (Wire.bit b j) (Wire.bit row i)
      in
      ()
    done;
    row
  in
  let acc0 = shifted_view ~zero (masked_row 0) ~shift:0 ~width:full_width in
  let final =
    List.fold_left
      (fun acc j ->
         let term = shifted_view ~zero (masked_row j) ~shift:j ~width:full_width in
         let next =
           Wire.create cell ~name:(Printf.sprintf "acc%d" j) full_width
         in
         let _ =
           Adders.carry_chain cell
             ~name:(Printf.sprintf "add%d" j)
             ~a:acc ~b:term ~sum:next ()
         in
         next)
      acc0
      (List.init (wb - 1) (fun j -> j + 1))
  in
  deliver cell ~signed_msb:None ~full:final ~product;
  { cell; latency = 0; full_width }

(* sign-extended view of [w] at [width] bits *)
let sign_extended_view w ~width =
  let n = Wire.width w in
  if width = n then w
  else
    Wire.concat
      (Util.fanout_bit (Wire.bit w (n - 1)) ~width:(width - n))
      w

let signed_mult parent ?(name = "signedmult") ~a ~b ~product () =
  let wa = Wire.width a and wb = Wire.width b in
  let full_width = wa + wb in
  let cell =
    Cell.composite parent ~name ~type_name:"SignedMultiplier"
      ~ports:
        [ ("a", Types.Input, a); ("b", Types.Input, b);
          ("product", Types.Output, product) ]
      ()
  in
  let a_ext = sign_extended_view a ~width:full_width in
  let b_ext = sign_extended_view b ~width:full_width in
  (* row j: a_ext masked by b_ext[j], shifted left j; only bits [j, W)
     matter, so each row is W - j wide *)
  let masked_row j =
    let row_width = full_width - j in
    let row = Wire.create cell ~name:(Printf.sprintf "srow%d" j) row_width in
    for i = 0 to row_width - 1 do
      let _ =
        Virtex.and2 cell
          ~name:(Printf.sprintf "spp%d_%d" j i)
          (Wire.bit a_ext i) (Wire.bit b_ext j) (Wire.bit row i)
      in
      ()
    done;
    row
  in
  (* accumulate with the low-bit passthrough trick: row j only touches
     bits [j, W) *)
  let zero = Virtex.gnd cell in
  let acc0 =
    let row = masked_row 0 in
    if Wire.width row = full_width then row
    else Wire.concat (Util.fanout_bit zero ~width:(full_width - Wire.width row)) row
  in
  let final =
    List.fold_left
      (fun acc j ->
         let row = masked_row j in
         let high =
           Wire.create cell ~name:(Printf.sprintf "sacc%d" j) (full_width - j)
         in
         let _ =
           Adders.carry_chain cell
             ~name:(Printf.sprintf "sadd%d" j)
             ~a:(Wire.slice acc ~lo:j ~hi:(full_width - 1))
             ~b:row ~sum:high ()
         in
         Wire.concat high (Wire.slice acc ~lo:0 ~hi:(j - 1)))
      acc0
      (List.init (full_width - 1) (fun j -> j + 1))
  in
  let pw = Wire.width product in
  let delivered =
    if pw <= full_width then Wire.slice final ~lo:0 ~hi:(pw - 1)
    else
      Wire.concat
        (Util.fanout_bit (Wire.bit final (full_width - 1))
           ~width:(pw - full_width))
        final
  in
  Util.buffer cell ~name:"prod" ~from:delivered ~into:product ();
  { cell; latency = 0; full_width }
