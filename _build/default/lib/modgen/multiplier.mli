(** Baseline multipliers the KCM is evaluated against.

    [shift_add_constant] is the conventional constant multiplier: one
    carry-chain adder per set bit (CSD-recoded: add/subtract per non-zero
    CSD digit) of the constant. Its area and depth grow with the
    constant's density, where the KCM's depend only on widths — the
    ablation benchmark (A1) measures exactly this contrast.

    [array_mult] is a variable-by-variable array multiplier built from
    MULT_AND partial products and carry-chain adder rows. *)

module Wire = Jhdl_circuit.Wire
module Cell = Jhdl_circuit.Cell

type t = {
  cell : Cell.t;
  latency : int;
  full_width : int;
}

(** Same delivery semantics as {!Kcm.create}: top bits of the full
    product when the product wire is narrower. Unsigned only in this
    baseline generator; negative constants raise [Invalid_argument]. *)
val shift_add_constant :
  Cell.t ->
  ?name:string ->
  multiplicand:Wire.t ->
  product:Wire.t ->
  constant:int ->
  unit ->
  t

(** [adder_count_for ~constant] is the number of adders/subtractors the
    shift-add generator will instance (CSD non-zero digits minus one, at
    least zero). Exposed for the ablation bench. *)
val adder_count_for : constant:int -> int

(** [array_mult parent ~a ~b ~product ()] — unsigned full product of two
    variable inputs, truncated/extended to the product wire like the
    KCM. *)
val array_mult :
  Cell.t -> ?name:string -> a:Wire.t -> b:Wire.t -> product:Wire.t -> unit -> t

(** [signed_mult parent ~a ~b ~product ()] — two's-complement product:
    both operands are sign-extended (free MSB-replication views) to the
    full product width and the array accumulates modulo 2{^wa+wb}, which
    is exact for signed multiplication. The product wire is truncated to
    the {e low} bits when narrower (signed products are conventionally
    consumed low-first), sign-extended when wider. *)
val signed_mult :
  Cell.t -> ?name:string -> a:Wire.t -> b:Wire.t -> product:Wire.t -> unit -> t
