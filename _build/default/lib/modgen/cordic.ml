module Wire = Jhdl_circuit.Wire
module Cell = Jhdl_circuit.Cell
module Types = Jhdl_circuit.Types
module Virtex = Jhdl_virtex.Virtex
module Bits = Jhdl_logic.Bits

type t = {
  cell : Cell.t;
  latency : int;
  iterations : int;
}

(* angle scale: pi/2 = 2^(w-2) *)
let scale ~width = float_of_int (1 lsl (width - 2)) /. (Float.pi /. 2.0)

let atan_fixed ~width i =
  int_of_float (Float.round (Float.atan (Float.ldexp 1.0 (-i)) *. scale ~width))

(* gain-corrected x seed: (1/K) * 2^(w-2), K = prod sqrt(1 + 2^-2i) *)
let x_seed ~width ~iterations =
  let k = ref 1.0 in
  for i = 0 to iterations - 1 do
    k := !k *. Float.sqrt (1.0 +. Float.ldexp 1.0 (-2 * i))
  done;
  int_of_float (Float.round (float_of_int (1 lsl (width - 2)) /. !k))

let reference ~width ~iterations angle_fixed =
  let x = ref (x_seed ~width ~iterations) in
  let y = ref 0 in
  let z = ref angle_fixed in
  for i = 0 to iterations - 1 do
    let xs = !x asr i and ys = !y asr i in
    if !z >= 0 then begin
      let x' = !x - ys and y' = !y + xs in
      z := !z - atan_fixed ~width i;
      x := x';
      y := y'
    end
    else begin
      let x' = !x + ys and y' = !y - xs in
      z := !z + atan_fixed ~width i;
      x := x';
      y := y'
    end
  done;
  (!x, !y)

let float_reference ~width angle_fixed =
  let theta = float_of_int angle_fixed /. scale ~width in
  let amplitude = float_of_int (1 lsl (width - 2)) in
  (amplitude *. Float.cos theta, amplitude *. Float.sin theta)

(* arithmetic shift right as a free wire view *)
let asr_view cell w i =
  let width = Wire.width w in
  if i = 0 then w
  else if i >= width then
    Util.fanout_bit (Wire.bit w (width - 1)) ~width
  else begin
    ignore cell;
    Wire.concat
      (Util.fanout_bit (Wire.bit w (width - 1)) ~width:i)
      (Wire.slice w ~lo:i ~hi:(width - 1))
  end

let create parent ?(name = "cordic") ?clk ~angle ~cos_out ~sin_out ~iterations
    ~pipelined () =
  let width = Wire.width angle in
  if width < 6 || width > 32 then
    invalid_arg "Cordic.create: width must be in 6..32";
  if Wire.width cos_out <> width || Wire.width sin_out <> width then
    invalid_arg "Cordic.create: angle/cos/sin widths must match";
  if iterations < 1 || iterations > width then
    invalid_arg "Cordic.create: iterations must be in 1..width";
  let clk =
    match clk, pipelined with
    | Some c, _ -> Some c
    | None, false -> None
    | None, true -> invalid_arg "Cordic.create: pipelined mode requires a clock"
  in
  let cell =
    Cell.composite parent ~name ~type_name:"CordicRotator"
      ~ports:
        ([ ("angle", Types.Input, angle); ("cos", Types.Output, cos_out);
           ("sin", Types.Output, sin_out) ]
         @ (match clk with Some c -> [ ("clk", Types.Input, c) ] | None -> []))
      ()
  in
  Cell.set_property cell "ITERATIONS" (string_of_int iterations);
  let x0 =
    Util.constant cell ~name:"x0"
      ~value:(Bits.of_int ~width (x_seed ~width ~iterations))
      ()
  in
  let y0 = Util.constant cell ~name:"y0" ~value:(Bits.zero width) () in
  let stage i (x, y, z) =
    let d = Wire.bit z (width - 1) in
    let nd = Wire.create cell ~name:(Printf.sprintf "nd%d" i) 1 in
    let _ = Virtex.inv cell ~name:(Printf.sprintf "sign%d" i) d nd in
    let xs = asr_view cell x i and ys = asr_view cell y i in
    let x' = Wire.create cell ~name:(Printf.sprintf "x%d" (i + 1)) width in
    let y' = Wire.create cell ~name:(Printf.sprintf "y%d" (i + 1)) width in
    let z' = Wire.create cell ~name:(Printf.sprintf "z%d" (i + 1)) width in
    let atan_w =
      Util.constant cell
        ~name:(Printf.sprintf "atan%d" i)
        ~value:(Bits.of_int ~width (atan_fixed ~width i))
        ()
    in
    let _ =
      Adders.add_sub cell ~name:(Printf.sprintf "xrot%d" i) ~sub:nd ~a:x ~b:ys
        ~result:x' ()
    in
    let _ =
      Adders.add_sub cell ~name:(Printf.sprintf "yrot%d" i) ~sub:d ~a:y ~b:xs
        ~result:y' ()
    in
    let _ =
      Adders.add_sub cell ~name:(Printf.sprintf "zacc%d" i) ~sub:nd ~a:z
        ~b:atan_w ~result:z' ()
    in
    match clk with
    | Some clk when pipelined ->
      let reg w label =
        let out = Wire.create cell ~name:(Printf.sprintf "%s%d_r" label i) width in
        Util.register_vector cell
          ~name:(Printf.sprintf "%s%d_reg" label i)
          ~clk ~d:w ~q:out ();
        out
      in
      (reg x' "x", reg y' "y", reg z' "z")
    | Some _ | None -> (x', y', z')
  in
  let rec run i state =
    if i = iterations then state else run (i + 1) (stage i state)
  in
  let xf, yf, _ = run 0 (x0, y0, angle) in
  Util.buffer cell ~name:"cos_buf" ~from:xf ~into:cos_out ();
  Util.buffer cell ~name:"sin_buf" ~from:yf ~into:sin_out ();
  { cell; latency = (if pipelined then iterations else 0); iterations }
