module Wire = Jhdl_circuit.Wire
module Cell = Jhdl_circuit.Cell
module Types = Jhdl_circuit.Types
module Bits = Jhdl_logic.Bits

type t = {
  cell : Cell.t;
  full_width : int;
  taps : int;
}

let rec log2_ceil n = if n <= 1 then 0 else 1 + log2_ceil ((n + 1) / 2)

let accumulation_width ~x_width ~coefficients =
  let kw =
    List.fold_left (fun acc c -> max acc (Util.bits_for_constant c)) 1
      coefficients
  in
  x_width + kw + log2_ceil (List.length coefficients)

let create parent ?(name = "fir") ~clk ~x ~y ~signed_mode ~coefficients () =
  (match coefficients with
   | [] -> invalid_arg "Fir.create: no coefficients"
   | _ :: _ -> ());
  if (not signed_mode) && List.exists (fun c -> c < 0) coefficients then
    invalid_arg "Fir.create: negative coefficients require signed mode";
  let taps = List.length coefficients in
  let full_width = accumulation_width ~x_width:(Wire.width x) ~coefficients in
  let cell =
    Cell.composite parent ~name ~type_name:"FirFilter"
      ~ports:
        [ ("clk", Types.Input, clk); ("x", Types.Input, x);
          ("y", Types.Output, y) ]
      ()
  in
  Cell.set_property cell "TAPS" (string_of_int taps);
  Cell.set_property cell "COEFFICIENTS"
    (String.concat "," (List.map string_of_int coefficients));
  (* one KCM per tap, all fed by the current sample, products at full
     accumulation width *)
  let products =
    List.mapi
      (fun k c ->
         let p = Wire.create cell ~name:(Printf.sprintf "p%d" k) full_width in
         let _ =
           Kcm.create cell
             ~name:(Printf.sprintf "kcm%d" k)
             ~multiplicand:x ~product:p ~signed_mode ~pipelined_mode:false
             ~constant:c ()
         in
         p)
      coefficients
  in
  (* transposed accumulation chain: y = p0 + reg(p1 + reg(p2 + ...)) *)
  let rec chain = function
    | [] -> assert false
    | [ last ] -> last
    | p :: rest ->
      let deeper = chain rest in
      let delayed =
        Wire.create cell ~name:(Printf.sprintf "z%d" (List.length rest)) full_width
      in
      Util.register_vector cell
        ~name:(Printf.sprintf "zreg%d" (List.length rest))
        ~clk ~d:deeper ~q:delayed ();
      let sum =
        Wire.create cell ~name:(Printf.sprintf "s%d" (List.length rest)) full_width
      in
      let _ =
        Adders.carry_chain cell
          ~name:(Printf.sprintf "acc%d" (List.length rest))
          ~a:p ~b:delayed ~sum ()
      in
      sum
  in
  let result = chain products in
  let out_width = Wire.width y in
  let delivered =
    if out_width <= full_width then
      Wire.slice result ~lo:(full_width - out_width) ~hi:(full_width - 1)
    else if signed_mode then
      Wire.concat
        (Util.fanout_bit (Wire.bit result (full_width - 1))
           ~width:(out_width - full_width))
        result
    else begin
      let gnd = Jhdl_virtex.Virtex.gnd cell in
      Wire.concat (Util.fanout_bit gnd ~width:(out_width - full_width)) result
    end
  in
  Util.buffer cell ~name:"y_buf" ~from:delivered ~into:y ();
  { cell; full_width; taps }

let expected_response ~signed_mode ~coefficients ~full_width ~out_width xs =
  let coeffs = Array.of_list coefficients in
  let samples = Array.of_list xs in
  List.init (Array.length samples) (fun n ->
    let acc = ref 0 in
    Array.iteri
      (fun k c -> if n - k >= 0 then acc := !acc + (c * samples.(n - k)))
      coeffs;
    let full = Bits.of_int ~width:full_width !acc in
    if out_width <= full_width then
      Bits.slice full ~lo:(full_width - out_width) ~hi:(full_width - 1)
    else if signed_mode then Bits.sign_extend full out_width
    else Bits.zero_extend full out_width)
