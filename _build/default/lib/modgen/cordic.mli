(** CORDIC rotator module generator (sine/cosine).

    A fully-unrolled fixed-point CORDIC in rotation mode, the kind of
    signal-processing macro the paper's module-generator catalog
    advertises next to the KCM. Each stage is two add/sub datapaths for
    the (x, y) rotation — the shifts are free wire views — plus a
    constant-arctangent add/sub for the angle accumulator; the rotation
    direction is the accumulator's sign bit.

    Fixed-point conventions, for data width [w]:
    - the input angle [z] is scaled so that pi/2 = 2{^w-2} (so the full
      input range [-2{^w-2} .. 2{^w-2}] covers [-pi/2, pi/2]);
    - outputs are scaled by 2{^w-2}: [cos_out ~ 2^(w-2) * cos(theta)],
      [sin_out ~ 2^(w-2) * sin(theta)]. The CORDIC gain is pre-corrected
      in the x seed.

    In pipelined mode a register plane follows every stage (latency =
    [iterations] cycles, one result per cycle). *)

module Wire = Jhdl_circuit.Wire
module Cell = Jhdl_circuit.Cell

type t = {
  cell : Cell.t;
  latency : int;
  iterations : int;
}

(** [create parent ~clk ~angle ~cos_out ~sin_out ~iterations ~pipelined ()].
    [angle], [cos_out] and [sin_out] must share one width [w] with
    [6 <= w <= 32]; [1 <= iterations <= w]. [clk] required when
    pipelined. *)
val create :
  Cell.t ->
  ?name:string ->
  ?clk:Wire.t ->
  angle:Wire.t ->
  cos_out:Wire.t ->
  sin_out:Wire.t ->
  iterations:int ->
  pipelined:bool ->
  unit ->
  t

(** [reference ~width ~iterations angle_fixed] — bit-accurate golden
    model of the generated circuit (same quantized arctangents, seeds and
    truncations), returning [(cos_fixed, sin_fixed)]. *)
val reference : width:int -> iterations:int -> int -> int * int

(** [float_reference ~width angle_fixed] — the ideal real-valued answer
    [(2^(w-2) cos, 2^(w-2) sin)], for accuracy reporting. *)
val float_reference : width:int -> int -> float * float
