(** Shared building blocks for module generators. *)

module Wire = Jhdl_circuit.Wire
module Cell = Jhdl_circuit.Cell

(** [constant parent ~value] is a wire of [Bits.width value] bits driven
    by GND/VCC primitives according to [value] (defined bits only; [X]/[Z]
    raise [Invalid_argument]). *)
val constant : Cell.t -> ?name:string -> value:Jhdl_logic.Bits.t -> unit -> Wire.t

(** [register_vector parent ~clk ?ce ~d ~q ()] puts one FD (or FDE when
    [ce] is given) per bit between [d] and [q]; widths must match. *)
val register_vector :
  Cell.t -> ?name:string -> clk:Wire.t -> ?ce:Wire.t -> d:Wire.t -> q:Wire.t ->
  unit -> unit

(** [delay parent ~clk ~cycles w] is [w] delayed by [cycles] register
    stages ([w] itself when [cycles = 0]). *)
val delay : Cell.t -> ?name:string -> clk:Wire.t -> cycles:int -> Wire.t -> Wire.t

(** [buffer parent ~from ~into] drives every bit of [into] from the
    corresponding bit of [from] through BUF primitives; widths must
    match. Used to hand internal results to caller-owned wires. *)
val buffer : Cell.t -> ?name:string -> from:Wire.t -> into:Wire.t -> unit -> unit

(** [fanout_bit parent w ~width] is a [width]-bit view replicating the
    1-bit wire [w] on every bit (shared nets, no logic). *)
val fanout_bit : Wire.t -> width:int -> Wire.t

(** [digit_split ~width ~digit_bits] is the list of [(lo, hi)] bit ranges
    covering [0 .. width-1] in groups of [digit_bits], low digit first;
    the last range may be narrower. *)
val digit_split : width:int -> digit_bits:int -> (int * int) list

(** [bits_for_constant k] is the minimal two's-complement width holding
    [k] ([1] for 0 and -1). *)
val bits_for_constant : int -> int
