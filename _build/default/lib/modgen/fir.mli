(** Constant-coefficient FIR filter generator — a signal-processing module
    of the kind the paper's module-generator catalog advertises, and the
    second IP used in the black-box co-simulation experiment (Figure 4).

    Transposed direct form: every tap is a {!Kcm} constant multiplier fed
    by the current sample; the products enter a register-separated adder
    chain, so [y(n) = sum_k coeff(k) * x(n-k)] with no explicit input
    delay line and an output that settles [taps - 1] cycles after the
    first sample. *)

module Wire = Jhdl_circuit.Wire
module Cell = Jhdl_circuit.Cell

type t = {
  cell : Cell.t;
  full_width : int;  (** internal accumulation width *)
  taps : int;
}

(** [accumulation_width ~x_width ~coefficients] — the internal width the
    generator will use: input width + widest coefficient + tree guard
    bits. *)
val accumulation_width : x_width:int -> coefficients:int list -> int

(** [create parent ~clk ~x ~y ~signed_mode ~coefficients ()]. The output
    delivers the top bits of the accumulation when [y] is narrower than
    [full_width] (KCM convention), the extended value when wider.
    Unsigned mode requires non-negative coefficients. *)
val create :
  Cell.t ->
  ?name:string ->
  clk:Wire.t ->
  x:Wire.t ->
  y:Wire.t ->
  signed_mode:bool ->
  coefficients:int list ->
  unit ->
  t

(** [expected_response ~signed_mode ~coefficients ~full_width ~out_width
    xs] is the reference output sequence for input samples [xs]
    (integers), matching the hardware's delivery convention. Element [n]
    is [y(n)]. *)
val expected_response :
  signed_mode:bool ->
  coefficients:int list ->
  full_width:int ->
  out_width:int ->
  int list ->
  Jhdl_logic.Bits.t list
