module Wire = Jhdl_circuit.Wire
module Cell = Jhdl_circuit.Cell
module Prim = Jhdl_circuit.Prim
module Virtex = Jhdl_virtex.Virtex
module Bit = Jhdl_logic.Bit
module Bits = Jhdl_logic.Bits

let constant parent ?(name = "const") ~value () =
  let width = Bits.width value in
  let w = Wire.create parent ~name width in
  for i = 0 to width - 1 do
    match Bits.get value i with
    | Bit.Zero ->
      let _ = Cell.prim parent Prim.Gnd ~conns:[ ("G", Wire.bit w i) ] in
      ()
    | Bit.One ->
      let _ = Cell.prim parent Prim.Vcc ~conns:[ ("P", Wire.bit w i) ] in
      ()
    | Bit.X | Bit.Z ->
      invalid_arg "Util.constant: value must be fully defined"
  done;
  w

let register_vector parent ?(name = "reg") ~clk ?ce ~d ~q () =
  if Wire.width d <> Wire.width q then
    invalid_arg "Util.register_vector: width mismatch";
  for i = 0 to Wire.width d - 1 do
    let bit_name = Printf.sprintf "%s_%d" name i in
    match ce with
    | None ->
      let _ =
        Virtex.fd parent ~name:bit_name ~c:clk ~d:(Wire.bit d i)
          ~q:(Wire.bit q i) ()
      in
      ()
    | Some ce ->
      let _ =
        Virtex.fde parent ~name:bit_name ~c:clk ~ce ~d:(Wire.bit d i)
          ~q:(Wire.bit q i) ()
      in
      ()
  done

let delay parent ?(name = "dly") ~clk ~cycles w =
  if cycles < 0 then invalid_arg "Util.delay: negative cycle count";
  let rec go stage current =
    if stage = cycles then current
    else begin
      let next =
        Wire.create parent ~name:(Printf.sprintf "%s_%d" name stage)
          (Wire.width w)
      in
      register_vector parent ~name:(Printf.sprintf "%s_ff%d" name stage) ~clk
        ~d:current ~q:next ();
      go (stage + 1) next
    end
  in
  go 0 w

let buffer parent ?(name = "buf") ~from ~into () =
  if Wire.width from <> Wire.width into then
    invalid_arg "Util.buffer: width mismatch";
  for i = 0 to Wire.width from - 1 do
    let _ =
      Virtex.buf parent
        ~name:(Printf.sprintf "%s_%d" name i)
        (Wire.bit from i) (Wire.bit into i)
    in
    ()
  done

let fanout_bit w ~width =
  if Wire.width w <> 1 then invalid_arg "Util.fanout_bit: wire must be 1 bit";
  let rec build acc k = if k = 0 then acc else build (Wire.concat w acc) (k - 1) in
  if width < 1 then invalid_arg "Util.fanout_bit: width must be >= 1"
  else build w (width - 1)

let digit_split ~width ~digit_bits =
  if width < 1 || digit_bits < 1 then
    invalid_arg "Util.digit_split: widths must be >= 1";
  let rec go lo acc =
    if lo >= width then List.rev acc
    else
      let hi = min (lo + digit_bits - 1) (width - 1) in
      go (hi + 1) ((lo, hi) :: acc)
  in
  go 0 []

let bits_for_constant k =
  let rec go w =
    if k >= -(1 lsl (w - 1)) && k <= (1 lsl (w - 1)) - 1 then w else go (w + 1)
  in
  go 1
