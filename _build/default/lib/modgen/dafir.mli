(** Distributed-arithmetic FIR filter generator.

    The other classic Virtex filter structure, included as an ablation
    partner for the KCM-based {!Fir}: instead of one multiplier per tap,
    distributed arithmetic precomputes the inner product's partial sums
    in a look-up table addressed by one bit of {e each} delayed sample,
    then accumulates the table outputs across bit positions:

    [y = sum_b 2^b * F(x_0[b], ..., x_{T-1}[b])], with the sign position
    subtracted in signed mode, where [F(a) = sum_k a_k * coeff_k] is a
    2{^T}-entry table — LUT4s when [T <= 4].

    Fully parallel form: one table bank per input bit position and an
    adder per bank, plus the sample delay line. Area therefore scales
    with the {e input width}, where the KCM filter's scales with the
    coefficient widths — the trade the ablation bench (A1b) measures. *)

module Wire = Jhdl_circuit.Wire
module Cell = Jhdl_circuit.Cell

type t = {
  cell : Cell.t;
  full_width : int;  (** accumulation width *)
  taps : int;
  table_entries : int;  (** 2^taps *)
}

(** [create parent ~clk ~x ~y ~signed_mode ~coefficients ()]. At most 4
    taps (one LUT4 address per tap). Output delivery follows the
    {!Fir} convention (top bits when [y] is narrower than [full_width]).
    The response matches {!Fir.expected_response} for the same
    coefficients — both compute the same inner product. *)
val create :
  Cell.t ->
  ?name:string ->
  clk:Wire.t ->
  x:Wire.t ->
  y:Wire.t ->
  signed_mode:bool ->
  coefficients:int list ->
  unit ->
  t
