lib/modgen/util.mli: Jhdl_circuit Jhdl_logic
