lib/modgen/counter.mli: Jhdl_circuit
