lib/modgen/cordic.ml: Adders Float Jhdl_circuit Jhdl_logic Jhdl_virtex Printf Util
