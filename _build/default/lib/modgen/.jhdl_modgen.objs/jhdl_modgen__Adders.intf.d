lib/modgen/adders.mli: Jhdl_circuit
