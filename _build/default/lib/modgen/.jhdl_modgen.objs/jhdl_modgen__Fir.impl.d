lib/modgen/fir.ml: Adders Array Jhdl_circuit Jhdl_logic Jhdl_virtex Kcm List Printf String Util
