lib/modgen/fir.mli: Jhdl_circuit Jhdl_logic
