lib/modgen/cordic.mli: Jhdl_circuit
