lib/modgen/datapath.mli: Jhdl_circuit
