lib/modgen/adders.ml: Jhdl_circuit Jhdl_virtex Printf Util
