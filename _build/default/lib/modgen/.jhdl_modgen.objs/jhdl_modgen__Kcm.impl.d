lib/modgen/kcm.ml: Adders Jhdl_circuit Jhdl_logic Jhdl_virtex Lazy List Printf Util
