lib/modgen/multiplier.ml: Adders Jhdl_circuit Jhdl_virtex List Printf Util
