lib/modgen/misc_logic.ml: Counter Datapath Int Jhdl_circuit Jhdl_logic Jhdl_virtex List Printf String Util
