lib/modgen/kcm.mli: Jhdl_circuit Jhdl_logic
