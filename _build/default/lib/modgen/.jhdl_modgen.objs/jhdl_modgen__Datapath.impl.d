lib/modgen/datapath.ml: Jhdl_circuit Jhdl_logic Jhdl_virtex List Printf Util
