lib/modgen/dafir.ml: Adders Jhdl_circuit Jhdl_virtex List Printf String Util
