lib/modgen/misc_logic.mli: Jhdl_circuit
