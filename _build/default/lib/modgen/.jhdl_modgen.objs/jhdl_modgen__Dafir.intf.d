lib/modgen/dafir.mli: Jhdl_circuit
