lib/modgen/multiplier.mli: Jhdl_circuit
