module Wire = Jhdl_circuit.Wire
module Cell = Jhdl_circuit.Cell
module Types = Jhdl_circuit.Types
module Virtex = Jhdl_virtex.Virtex
module Bit = Jhdl_logic.Bit

(* OR-reduce a list of 1-bit wires with a LUT tree. *)
let rec or_reduce cell ~name ~into wires =
  match wires with
  | [] -> invalid_arg "Misc_logic.or_reduce: no inputs"
  | [ w ] ->
    let _ = Virtex.buf cell ~name:(name ^ "_buf") w into in
    ()
  | _ :: _ :: _ when List.length wires <= 4 ->
    let _ =
      Virtex.lut_of_function cell ~name:(name ^ "_or") wires into
        ~f:(fun addr -> addr <> 0)
    in
    ()
  | many ->
    let rec groups acc current count = function
      | [] -> List.rev (if current = [] then acc else List.rev current :: acc)
      | w :: rest ->
        if count = 4 then groups (List.rev current :: acc) [ w ] 1 rest
        else groups acc (w :: current) (count + 1) rest
    in
    let outs =
      List.mapi
        (fun i group ->
           let o = Wire.create cell ~name:(Printf.sprintf "%s_g%d" name i) 1 in
           or_reduce cell ~name:(Printf.sprintf "%s_l%d" name i) ~into:o group;
           o)
        (groups [] [] 0 many)
    in
    or_reduce cell ~name:(name ^ "_t") ~into outs

let lfsr parent ?(name = "lfsr") ~clk ?ce ~taps ~q () =
  let width = Wire.width q in
  if taps = [] then invalid_arg "Misc_logic.lfsr: empty tap list";
  if List.exists (fun t -> t < 1 || t > width) taps then
    invalid_arg "Misc_logic.lfsr: taps must be in 1..width";
  let cell =
    Cell.composite parent ~name ~type_name:"Lfsr"
      ~ports:
        ([ ("clk", Types.Input, clk); ("q", Types.Output, q) ]
         @ (match ce with Some w -> [ ("ce", Types.Input, w) ] | None -> []))
      ()
  in
  Cell.set_property cell "TAPS"
    (String.concat "," (List.map string_of_int taps));
  let feedback = Wire.create cell ~name:"feedback" 1 in
  (* xor of the tapped state bits *)
  let tapped = List.map (fun t -> Wire.bit q (t - 1)) (List.sort_uniq Int.compare taps) in
  (match tapped with
   | [ one ] ->
     let _ = Virtex.buf cell ~name:"fb_buf" one feedback in
     ()
   | several ->
     let view =
       match several with
       | first :: rest ->
         List.fold_left (fun acc w -> Wire.concat w acc) first rest
       | [] -> assert false
     in
     let _ = Datapath.parity cell ~name:"fb_parity" ~x:view ~p:feedback () in
     ());
  (* state'[0] = feedback, state'[i] = state[i-1]; INIT=1 avoids lockup *)
  for i = 0 to width - 1 do
    let d = if i = 0 then feedback else Wire.bit q (i - 1) in
    let bit_name = Printf.sprintf "s%d" i in
    match ce with
    | None ->
      let _ =
        Virtex.fd cell ~name:bit_name ~init:Bit.One ~c:clk ~d ~q:(Wire.bit q i) ()
      in
      ()
    | Some ce ->
      let _ =
        Virtex.fde cell ~name:bit_name ~init:Bit.One ~c:clk ~ce ~d
          ~q:(Wire.bit q i) ()
      in
      ()
  done;
  cell

let lfsr_reference ~width ~taps ~cycles =
  let mask = (1 lsl width) - 1 in
  let state = ref mask in
  List.init cycles (fun _ ->
    let fb =
      List.fold_left
        (fun acc t -> acc lxor ((!state lsr (t - 1)) land 1))
        0
        (List.sort_uniq Int.compare taps)
    in
    state := ((!state lsl 1) lor fb) land mask;
    !state)

let barrel_shift_left parent ?(name = "barrel") ~x ~amount ~y () =
  let width = Wire.width x in
  if Wire.width y <> width then
    invalid_arg "Misc_logic.barrel_shift_left: x/y width mismatch";
  let cell =
    Cell.composite parent ~name ~type_name:"BarrelShifter"
      ~ports:
        [ ("x", Types.Input, x); ("amount", Types.Input, amount);
          ("y", Types.Output, y) ]
      ()
  in
  let gnd = Virtex.gnd cell in
  let stage j current =
    let shift = 1 lsl j in
    let sel = Wire.bit amount j in
    let out = Wire.create cell ~name:(Printf.sprintf "st%d" j) width in
    for i = 0 to width - 1 do
      let shifted = if i >= shift then Wire.bit current (i - shift) else gnd in
      let _ =
        Virtex.mux2 cell
          ~name:(Printf.sprintf "m%d_%d" j i)
          ~sel (Wire.bit current i) shifted (Wire.bit out i)
      in
      ()
    done;
    out
  in
  let final =
    List.fold_left
      (fun current j -> stage j current)
      x
      (List.init (Wire.width amount) (fun j -> j))
  in
  Util.buffer cell ~name:"y_buf" ~from:final ~into:y ();
  cell

let priority_encoder parent ?(name = "prienc") ~x ~index ~valid () =
  let width = Wire.width x in
  let rec log2_ceil n = if n <= 1 then 0 else 1 + log2_ceil ((n + 1) / 2) in
  let index_bits = max 1 (log2_ceil width) in
  if Wire.width index < index_bits then
    invalid_arg "Misc_logic.priority_encoder: index wire too narrow";
  let cell =
    Cell.composite parent ~name ~type_name:"PriorityEncoder"
      ~ports:
        [ ("x", Types.Input, x); ("index", Types.Output, index);
          ("valid", Types.Output, valid) ]
      ()
  in
  (* higher[i] = any of x[i+1 .. width-1]; select[i] = x[i] & ~higher[i] *)
  let higher = Wire.create cell ~name:"higher" width in
  let gnd = Virtex.gnd cell in
  let _ = Virtex.buf cell ~name:"h_top" gnd (Wire.bit higher (width - 1)) in
  for i = width - 2 downto 0 do
    let _ =
      Virtex.or2 cell
        ~name:(Printf.sprintf "h%d" i)
        (Wire.bit higher (i + 1))
        (Wire.bit x (i + 1))
        (Wire.bit higher i)
    in
    ()
  done;
  let selects =
    List.init width (fun i ->
      let s = Wire.create cell ~name:(Printf.sprintf "sel%d" i) 1 in
      let _ =
        Virtex.lut_of_function cell
          ~name:(Printf.sprintf "pick%d" i)
          [ Wire.bit x i; Wire.bit higher i ]
          s
          ~f:(fun addr -> addr land 1 = 1 && addr land 2 = 0)
      in
      s)
  in
  (* index bit k = OR of selects at positions with bit k set *)
  for k = 0 to Wire.width index - 1 do
    let contributors =
      List.filteri (fun i _ -> (i lsr k) land 1 = 1) selects
    in
    match contributors with
    | [] ->
      let _ =
        Virtex.buf cell ~name:(Printf.sprintf "idx%d_buf" k) gnd
          (Wire.bit index k)
      in
      ()
    | wires ->
      or_reduce cell ~name:(Printf.sprintf "idx%d" k) ~into:(Wire.bit index k)
        wires
  done;
  or_reduce cell ~name:"valid" ~into:valid
    (List.init width (fun i -> Wire.bit x i));
  cell

let gray_counter parent ?(name = "gray") ~clk ?ce ~q () =
  let width = Wire.width q in
  let cell =
    Cell.composite parent ~name ~type_name:"GrayCounter"
      ~ports:
        ([ ("clk", Types.Input, clk); ("q", Types.Output, q) ]
         @ (match ce with Some w -> [ ("ce", Types.Input, w) ] | None -> []))
      ()
  in
  let binary = Wire.create cell ~name:"binary" width in
  let _ = Counter.up_counter cell ~name:"bin" ~clk ?ce ~q:binary () in
  for i = 0 to width - 1 do
    if i = width - 1 then begin
      let _ =
        Virtex.buf cell
          ~name:(Printf.sprintf "g%d" i)
          (Wire.bit binary i) (Wire.bit q i)
      in
      ()
    end
    else begin
      let _ =
        Virtex.xor2 cell
          ~name:(Printf.sprintf "g%d" i)
          (Wire.bit binary i)
          (Wire.bit binary (i + 1))
          (Wire.bit q i)
      in
      ()
    end
  done;
  cell
