module Wire = Jhdl_circuit.Wire
module Cell = Jhdl_circuit.Cell
module Types = Jhdl_circuit.Types
module Virtex = Jhdl_virtex.Virtex

let rec log2_ceil n = if n <= 1 then 0 else 1 + log2_ceil ((n + 1) / 2)

let mux_n parent ?(name = "muxn") ~sel ~inputs ~out () =
  let width = Wire.width out in
  (match inputs with
   | [] -> invalid_arg "Datapath.mux_n: no inputs"
   | ins ->
     List.iter
       (fun w ->
          if Wire.width w <> width then
            invalid_arg "Datapath.mux_n: input width mismatch")
       ins);
  let needed = log2_ceil (List.length inputs) in
  if Wire.width sel < needed then
    invalid_arg
      (Printf.sprintf "Datapath.mux_n: %d select bits for %d inputs"
         (Wire.width sel) (List.length inputs));
  let cell =
    Cell.composite parent ~name ~type_name:"MuxN"
      ~ports:
        (("sel", Types.Input, sel) :: ("out", Types.Output, out)
         :: List.mapi (fun i w -> (Printf.sprintf "in%d" i, Types.Input, w)) inputs)
      ()
  in
  (* reduce pairwise with 2:1 muxes, one select bit per level *)
  let rec reduce level wires =
    match wires with
    | [] -> assert false
    | [ last ] -> last
    | many ->
      let sel_bit = Wire.bit sel level in
      let rec pair acc idx = function
        | [] -> List.rev acc
        | [ odd ] -> List.rev (odd :: acc)
        | a :: b :: rest ->
          let o =
            Wire.create cell ~name:(Printf.sprintf "l%d_%d" level idx) width
          in
          for j = 0 to width - 1 do
            let _ =
              Virtex.mux2 cell
                ~name:(Printf.sprintf "mx%d_%d_%d" level idx j)
                ~sel:sel_bit (Wire.bit a j) (Wire.bit b j) (Wire.bit o j)
            in
            ()
          done;
          pair (o :: acc) (idx + 1) rest
      in
      reduce (level + 1) (pair [] 0 many)
  in
  let result = reduce 0 inputs in
  Util.buffer cell ~name:"out_buf" ~from:result ~into:out ();
  cell

let parity parent ?(name = "parity") ~x ~p () =
  if Wire.width p <> 1 then invalid_arg "Datapath.parity: p must be 1 bit";
  let cell =
    Cell.composite parent ~name ~type_name:"Parity"
      ~ports:[ ("x", Types.Input, x); ("p", Types.Output, p) ]
      ()
  in
  let rec reduce level wires =
    match wires with
    | [] -> invalid_arg "Datapath.parity: empty input"
    | [ last ] -> last
    | many ->
      (* xor-reduce in groups of up to 4 with single LUTs *)
      let rec group acc idx = function
        | [] -> List.rev acc
        | chunk ->
          let take = min 4 (List.length chunk) in
          let rec split n xs =
            if n = 0 then ([], xs)
            else
              match xs with
              | [] -> ([], [])
              | x :: rest ->
                let taken, left = split (n - 1) rest in
                (x :: taken, left)
          in
          let taken, rest = split take chunk in
          (match taken with
           | [ one ] -> group (one :: acc) (idx + 1) rest
           | multiple ->
             let o =
               Wire.create cell ~name:(Printf.sprintf "x%d_%d" level idx) 1
             in
             let k = List.length multiple in
             let _ =
               Virtex.lut_of_function cell
                 ~name:(Printf.sprintf "xr%d_%d" level idx)
                 multiple o
                 ~f:(fun addr ->
                   let rec pop n = if n = 0 then 0 else (n land 1) + pop (n lsr 1) in
                   pop (addr land ((1 lsl k) - 1)) land 1 = 1)
             in
             group (o :: acc) (idx + 1) rest)
      in
      reduce (level + 1) (group [] 0 many)
  in
  let bits = List.init (Wire.width x) (fun i -> Wire.bit x i) in
  let result = reduce 0 bits in
  Util.buffer cell ~name:"p_buf" ~from:result ~into:p ();
  cell

let delay_line parent ?(name = "delayline") ~clk ~ce ~depth ~d ~q () =
  if depth < 1 || depth > 16 then
    invalid_arg "Datapath.delay_line: depth must be in 1..16";
  if Wire.width d <> Wire.width q then
    invalid_arg "Datapath.delay_line: width mismatch";
  let cell =
    Cell.composite parent ~name ~type_name:"DelayLine"
      ~ports:
        [ ("clk", Types.Input, clk); ("ce", Types.Input, ce);
          ("d", Types.Input, d); ("q", Types.Output, q) ]
      ()
  in
  Cell.set_property cell "DEPTH" (string_of_int depth);
  let addr =
    Util.constant cell ~name:"tap"
      ~value:(Jhdl_logic.Bits.of_int ~width:4 (depth - 1))
      ()
  in
  for i = 0 to Wire.width d - 1 do
    let srl =
      Virtex.srl16e cell
        ~name:(Printf.sprintf "srl%d" i)
        ~clk ~ce ~d:(Wire.bit d i) ~a:addr ~q:(Wire.bit q i) ()
    in
    Cell.set_rloc srl ~row:(i / 2) ~col:0
  done;
  cell

let register_file parent ?(name = "regfile") ~clk ~we ~waddr ~raddr ~d ~q () =
  let abits = Wire.width waddr in
  if Wire.width raddr <> abits then
    invalid_arg "Datapath.register_file: address width mismatch";
  if abits < 1 || abits > 4 then
    invalid_arg "Datapath.register_file: address must be 1..4 bits";
  if Wire.width d <> Wire.width q then
    invalid_arg "Datapath.register_file: data width mismatch";
  let entries = 1 lsl abits in
  let width = Wire.width d in
  let cell =
    Cell.composite parent ~name ~type_name:"RegisterFile"
      ~ports:
        [ ("clk", Types.Input, clk); ("we", Types.Input, we);
          ("waddr", Types.Input, waddr); ("raddr", Types.Input, raddr);
          ("d", Types.Input, d); ("q", Types.Output, q) ]
      ()
  in
  let rows =
    List.init entries (fun e ->
      (* write-enable decode: we & (waddr = e) *)
      let en = Wire.create cell ~name:(Printf.sprintf "en%d" e) 1 in
      let inputs = we :: List.init abits (fun i -> Wire.bit waddr i) in
      let _ =
        Virtex.lut_of_function cell
          ~name:(Printf.sprintf "dec%d" e)
          inputs en
          ~f:(fun addr -> addr land 1 = 1 && addr lsr 1 = e)
      in
      let row = Wire.create cell ~name:(Printf.sprintf "r%d" e) width in
      Util.register_vector cell
        ~name:(Printf.sprintf "row%d" e)
        ~clk ~ce:en ~d ~q:row ();
      row)
  in
  let _ = mux_n cell ~name:"read_mux" ~sel:raddr ~inputs:rows ~out:q () in
  cell
