module Wire = Jhdl_circuit.Wire
module Cell = Jhdl_circuit.Cell
module Types = Jhdl_circuit.Types
module Virtex = Jhdl_virtex.Virtex
module Bits = Jhdl_logic.Bits

type t = {
  cell : Cell.t;
  latency : int;
  full_width : int;
  table_count : int;
}

type adder_structure =
  [ `Chain
  | `Tree ]

(* Value of the constant times the digit addressed by [addr]; the top digit
   of a signed multiplicand is read as two's complement. *)
let table_value ~constant ~digit_width ~digit_is_signed addr =
  let v =
    if digit_is_signed && addr land (1 lsl (digit_width - 1)) <> 0 then
      addr - (1 lsl digit_width)
    else addr
  in
  constant * v

(* Minimal two's-complement width holding every entry of a table. *)
let table_width ~constant ~digit_width ~digit_is_signed =
  let worst = ref 1 in
  for addr = 0 to (1 lsl digit_width) - 1 do
    let pp = table_value ~constant ~digit_width ~digit_is_signed addr in
    worst := max !worst (Util.bits_for_constant pp)
  done;
  !worst

let expected_product ~signed_mode ~constant ~full_width ~product_width x =
  let xv = if signed_mode then Bits.to_signed_int x else Bits.to_int x in
  match xv with
  | None -> Bits.undefined product_width
  | Some xv ->
    let full = Bits.of_int ~width:full_width (constant * xv) in
    if product_width <= full_width then
      Bits.slice full ~lo:(full_width - product_width) ~hi:(full_width - 1)
    else if signed_mode then Bits.sign_extend full product_width
    else Bits.zero_extend full product_width

let create parent ?(name = "kcm") ?clk ?(adder_structure = `Chain)
    ~multiplicand ~product ~signed_mode ~pipelined_mode ~constant () =
  if (not signed_mode) && constant < 0 then
    invalid_arg "Kcm.create: negative constant requires signed mode";
  (match adder_structure, pipelined_mode with
   | `Tree, true ->
     invalid_arg "Kcm.create: pipelined mode is only supported with `Chain"
   | (`Tree | `Chain), _ -> ());
  let clk =
    match clk, pipelined_mode with
    | Some c, _ -> Some c
    | None, false -> None
    | None, true -> invalid_arg "Kcm.create: pipelined mode requires a clock"
  in
  let n = Wire.width multiplicand in
  let pw = Wire.width product in
  let kw = Util.bits_for_constant constant in
  let full_width = n + kw in
  let cell =
    Cell.composite parent ~name ~type_name:"VirtexKCMMultiplier"
      ~ports:
        ([ ("multiplicand", Types.Input, multiplicand);
           ("product", Types.Output, product) ]
         @ (match clk with Some c -> [ ("clk", Types.Input, c) ] | None -> []))
      ()
  in
  Cell.set_property cell "CONSTANT" (string_of_int constant);
  Cell.set_property cell "SIGNED" (string_of_bool signed_mode);
  Cell.set_property cell "PIPELINED" (string_of_bool pipelined_mode);
  let ranges = Util.digit_split ~width:n ~digit_bits:4 in
  let table_count = List.length ranges in
  (* one partial-product look-up table per digit *)
  let make_table index (lo, hi) ~delay_cycles =
    let digit_width = hi - lo + 1 in
    let digit_is_signed = signed_mode && hi = n - 1 in
    let tw = table_width ~constant ~digit_width ~digit_is_signed in
    let digit = Wire.slice multiplicand ~lo ~hi in
    let digit =
      match clk with
      | Some clk when delay_cycles > 0 ->
        Util.delay cell ~name:(Printf.sprintf "dig%d_dly" index) ~clk
          ~cycles:delay_cycles digit
      | Some _ | None -> digit
    in
    let pp = Wire.create cell ~name:(Printf.sprintf "pp%d" index) tw in
    let inputs = List.init digit_width (fun i -> Wire.bit digit i) in
    for j = 0 to tw - 1 do
      let f addr =
        (table_value ~constant ~digit_width ~digit_is_signed addr asr j) land 1
        = 1
      in
      let lut =
        Virtex.lut_of_function cell
          ~name:(Printf.sprintf "t%d_%d" index j)
          inputs (Wire.bit pp j) ~f
      in
      Cell.set_rloc lut ~row:(j / 2) ~col:(index + 1)
    done;
    (lo, pp)
  in
  (* sign-extend a partial product to [target] bits by replicating its MSB
     net: free in hardware, a concat view here *)
  let sign_extend_view pp target =
    let tw = Wire.width pp in
    assert (target >= tw);
    if target = tw then pp
    else
      Wire.concat
        (Util.fanout_bit (Wire.bit pp (tw - 1)) ~width:(target - tw))
        pp
  in
  (* accumulate the shifted partial products; low bits below each adder's
     range pass through unchanged *)
  let lo0, pp0 = make_table 0 (List.nth ranges 0) ~delay_cycles:0 in
  assert (lo0 = 0);
  let acc0 = sign_extend_view pp0 full_width in
  (* tree accumulation: all addends at full width, reduced pairwise *)
  let tree_final () =
    let gnd = lazy (Virtex.gnd cell) in
    let addend_at_full ~lo pp =
      let ext = sign_extend_view pp (full_width - lo) in
      if lo = 0 then ext
      else Wire.concat ext (Util.fanout_bit (Lazy.force gnd) ~width:lo)
    in
    let addends =
      acc0
      :: List.mapi
           (fun i (lo, hi) ->
              let index = i + 1 in
              let _, pp = make_table index (lo, hi) ~delay_cycles:0 in
              addend_at_full ~lo pp)
           (List.tl ranges)
    in
    let level = ref 0 in
    let rec reduce wires =
      match wires with
      | [] -> assert false
      | [ last ] -> last
      | many ->
        incr level;
        let rec pair acc idx = function
          | [] -> List.rev acc
          | [ odd ] -> List.rev (odd :: acc)
          | a :: b :: rest ->
            let sum =
              Wire.create cell
                ~name:(Printf.sprintf "t%d_%d_sum" !level idx)
                full_width
            in
            let _ =
              Adders.carry_chain cell
                ~name:(Printf.sprintf "tadd%d_%d" !level idx)
                ~a ~b ~sum ()
            in
            pair (sum :: acc) (idx + 1) rest
        in
        reduce (pair [] 0 many)
    in
    reduce addends
  in
  let chain_final () =
    List.fold_left
      (fun (acc, stage) (lo, hi) ->
         let index = stage in
         let delay_cycles = if pipelined_mode then stage - 1 else 0 in
         let _, pp = make_table index (lo, hi) ~delay_cycles in
         let addend = sign_extend_view pp (full_width - lo) in
         let high_sum =
           Wire.create cell
             ~name:(Printf.sprintf "acc%d" stage)
             (full_width - lo)
         in
         let adder =
           Adders.carry_chain cell
             ~name:(Printf.sprintf "add%d" stage)
             ~a:(Wire.slice acc ~lo ~hi:(full_width - 1))
             ~b:addend ~sum:high_sum ()
         in
         Cell.set_rloc adder ~row:0 ~col:(stage * 2);
         let combined = Wire.concat high_sum (Wire.slice acc ~lo:0 ~hi:(lo - 1)) in
         let staged =
           match clk with
           | Some clk when pipelined_mode ->
             let reg_out =
               Wire.create cell ~name:(Printf.sprintf "acc%d_r" stage) full_width
             in
             Util.register_vector cell
               ~name:(Printf.sprintf "acc%d_reg" stage)
               ~clk ~d:combined ~q:reg_out ();
             reg_out
           | Some _ | None -> combined
         in
         (staged, stage + 1))
      (acc0, 1)
      (List.tl ranges)
  in
  let final_acc, stages =
    match adder_structure with
    | `Chain -> chain_final ()
    | `Tree -> (tree_final (), 1)
  in
  let adder_stages = stages - 1 in
  (* deliver the requested slice of the full product *)
  let delivered =
    if pw <= full_width then
      Wire.slice final_acc ~lo:(full_width - pw) ~hi:(full_width - 1)
    else
      let msb = Wire.bit final_acc (full_width - 1) in
      let ext =
        if signed_mode then Util.fanout_bit msb ~width:(pw - full_width)
        else begin
          let gnd = Virtex.gnd cell in
          Util.fanout_bit gnd ~width:(pw - full_width)
        end
      in
      Wire.concat ext final_acc
  in
  let latency =
    if not pipelined_mode then 0
    else if adder_stages = 0 then 1
    else adder_stages
  in
  (match clk with
   | Some clk when pipelined_mode && adder_stages = 0 ->
     (* single-digit constant multiplier: register the output once *)
     let reg_out = Wire.create cell ~name:"out_r" pw in
     Util.register_vector cell ~name:"out_reg" ~clk ~d:delivered ~q:reg_out ();
     Util.buffer cell ~name:"prod" ~from:reg_out ~into:product ()
   | Some _ | None ->
     Util.buffer cell ~name:"prod" ~from:delivered ~into:product ());
  { cell; latency; full_width; table_count }
