(** Counter and comparator module generators. *)

module Wire = Jhdl_circuit.Wire
module Cell = Jhdl_circuit.Cell

(** [up_counter parent ~clk ?ce ?sclr ~q ()] — a carry-chain incrementer
    feeding a register bank; [q] holds the count. [sclr], when given,
    synchronously clears. *)
val up_counter :
  Cell.t -> ?name:string ->
  clk:Wire.t -> ?ce:Wire.t -> ?sclr:Wire.t -> q:Wire.t -> unit -> Cell.t

(** [equal_const parent ~x ~value ~eq ()] — [eq = (x = value)] via a LUT
    reduction tree. *)
val equal_const :
  Cell.t -> ?name:string -> x:Wire.t -> value:int -> eq:Wire.t -> unit -> Cell.t

(** [less_than parent ~a ~b ~lt ()] — unsigned [a < b] on the carry chain
    (computes a - b and takes the borrow). *)
val less_than :
  Cell.t -> ?name:string -> a:Wire.t -> b:Wire.t -> lt:Wire.t -> unit -> Cell.t
