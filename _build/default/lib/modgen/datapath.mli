(** Miscellaneous datapath generators: mux trees, parity, delay lines and
    register files — the "variety of arithmetic, signal processing, logic,
    and memory modules" of Section 3. *)

module Wire = Jhdl_circuit.Wire
module Cell = Jhdl_circuit.Cell

(** [mux_n parent ~sel ~inputs ~out ()] — an n-way multiplexer tree of
    2:1 LUT muxes. [inputs] must be non-empty, all the width of [out];
    [sel] must have at least ceil(log2 n) bits. Selections beyond the
    input count return the last input. *)
val mux_n :
  Cell.t -> ?name:string ->
  sel:Wire.t -> inputs:Wire.t list -> out:Wire.t -> unit -> Cell.t

(** [parity parent ~x ~p ()] — xor-reduction tree of [x] into the 1-bit
    [p]. *)
val parity : Cell.t -> ?name:string -> x:Wire.t -> p:Wire.t -> unit -> Cell.t

(** [delay_line parent ~clk ~ce ~depth ~d ~q ()] — an SRL16E-based fixed
    delay of [depth] cycles (1..16) on every bit of [d]. *)
val delay_line :
  Cell.t -> ?name:string ->
  clk:Wire.t -> ce:Wire.t -> depth:int -> d:Wire.t -> q:Wire.t -> unit -> Cell.t

(** [register_file parent ~clk ~we ~waddr ~raddr ~d ~q ()] — a register
    file of [2^width waddr] entries built from clock-enabled registers
    with a one-hot write decoder and a LUT-mux read tree. Writes land on
    the clock edge; reads are asynchronous. [waddr] and [raddr] must have
    the same width (at most 4). *)
val register_file :
  Cell.t -> ?name:string ->
  clk:Wire.t -> we:Wire.t -> waddr:Wire.t -> raddr:Wire.t -> d:Wire.t ->
  q:Wire.t -> unit -> Cell.t
