(** Adder module generators.

    [full_adder] is the paper's Section 2 example, transliterated from its
    Java fragment. [ripple_carry] composes full adders gate-by-gate.
    [carry_chain] is the Virtex-mapped adder (LUT2 propagate + MUXCY/XORCY
    per bit) that the optimized module generators use; it is both smaller
    and faster under the delay model, since carry hops cost far less than
    LUT levels. *)

module Wire = Jhdl_circuit.Wire
module Cell = Jhdl_circuit.Cell

(** [full_adder parent ~a ~b ~ci ~s ~co] builds the 1-bit full adder:
    [co = a&b | a&ci | b&ci], [s = a ^ b ^ ci]. *)
val full_adder :
  Cell.t -> ?name:string ->
  a:Wire.t -> b:Wire.t -> ci:Wire.t -> s:Wire.t -> co:Wire.t -> unit -> Cell.t

(** [ripple_carry parent ~a ~b ~sum ?cin ?cout ()] — widths of [a], [b],
    [sum] must be equal. [cin] defaults to constant 0. *)
val ripple_carry :
  Cell.t -> ?name:string ->
  a:Wire.t -> b:Wire.t -> sum:Wire.t -> ?cin:Wire.t -> ?cout:Wire.t -> unit ->
  Cell.t

(** [carry_chain parent ~a ~b ~sum ?cin ?cout ()] — the carry-chain adder,
    with relative placement attributes assigning each bit to a row. *)
val carry_chain :
  Cell.t -> ?name:string ->
  a:Wire.t -> b:Wire.t -> sum:Wire.t -> ?cin:Wire.t -> ?cout:Wire.t -> unit ->
  Cell.t

(** [subtractor parent ~a ~b ~diff ()] computes [a - b] on the carry
    chain (b inverted, carry-in 1). *)
val subtractor :
  Cell.t -> ?name:string -> a:Wire.t -> b:Wire.t -> diff:Wire.t -> unit -> Cell.t

(** [add_sub parent ~sub ~a ~b ~result ()] adds when [sub]=0, subtracts
    when [sub]=1 (xor-conditioned b, [sub] as carry-in). *)
val add_sub :
  Cell.t -> ?name:string ->
  sub:Wire.t -> a:Wire.t -> b:Wire.t -> result:Wire.t -> unit -> Cell.t

(** [accumulator parent ~clk ?ce ~x ~acc ()] registers [acc <= acc + x]
    every (enabled) cycle; [acc] is also the registered output. *)
val accumulator :
  Cell.t -> ?name:string ->
  clk:Wire.t -> ?ce:Wire.t -> x:Wire.t -> acc:Wire.t -> unit -> Cell.t
