module Wire = Jhdl_circuit.Wire
module Cell = Jhdl_circuit.Cell
module Types = Jhdl_circuit.Types
module Virtex = Jhdl_virtex.Virtex

let up_counter parent ?(name = "counter") ~clk ?ce ?sclr ~q () =
  let width = Wire.width q in
  let cell =
    Cell.composite parent ~name ~type_name:"UpCounter"
      ~ports:
        ([ ("clk", Types.Input, clk); ("q", Types.Output, q) ]
         @ (match ce with Some w -> [ ("ce", Types.Input, w) ] | None -> [])
         @ (match sclr with Some w -> [ ("sclr", Types.Input, w) ] | None -> []))
      ()
  in
  let inc = Wire.create cell ~name:"inc" width in
  let vcc = Virtex.vcc cell in
  let one_vec =
    if width = 1 then vcc
    else begin
      let gnd = Virtex.gnd cell in
      Wire.concat (Util.fanout_bit gnd ~width:(width - 1)) vcc
    end
  in
  let _ = Adders.carry_chain cell ~name:"inc_add" ~a:q ~b:one_vec ~sum:inc () in
  let next =
    match sclr with
    | None -> inc
    | Some sclr ->
      let nclr = Wire.create cell ~name:"nclr" 1 in
      let _ = Virtex.inv cell ~name:"nclr_inv" sclr nclr in
      let cleared = Wire.create cell ~name:"cleared" width in
      for i = 0 to width - 1 do
        let _ =
          Virtex.and2 cell
            ~name:(Printf.sprintf "clr_gate%d" i)
            (Wire.bit inc i) nclr (Wire.bit cleared i)
        in
        ()
      done;
      cleared
  in
  Util.register_vector cell ~name:"count_reg" ~clk ?ce ~d:next ~q ();
  cell

(* AND-reduce a list of 1-bit wires with a LUT tree. *)
let rec and_reduce cell ~name ~into wires =
  match wires with
  | [] -> invalid_arg "Counter.and_reduce: no inputs"
  | [ w ] ->
    let _ = Virtex.buf cell ~name:(name ^ "_buf") w into in
    ()
  | [ a; b ] ->
    let _ = Virtex.and2 cell ~name:(name ^ "_and2") a b into in
    ()
  | [ a; b; c ] ->
    let _ = Virtex.and3 cell ~name:(name ^ "_and3") a b c into in
    ()
  | [ a; b; c; d ] ->
    let _ = Virtex.and4 cell ~name:(name ^ "_and4") a b c d into in
    ()
  | many ->
    (* group by four, reduce each group, recurse on the group outputs *)
    let rec groups acc current count = function
      | [] ->
        let acc = if current = [] then acc else List.rev current :: acc in
        List.rev acc
      | w :: rest ->
        if count = 4 then groups (List.rev current :: acc) [ w ] 1 rest
        else groups acc (w :: current) (count + 1) rest
    in
    let gs = groups [] [] 0 many in
    let outs =
      List.mapi
        (fun i g ->
           let o = Wire.create cell ~name:(Printf.sprintf "%s_g%d" name i) 1 in
           and_reduce cell ~name:(Printf.sprintf "%s_l%d" name i) ~into:o g;
           o)
        gs
    in
    and_reduce cell ~name:(name ^ "_t") ~into outs

let equal_const parent ?(name = "eqconst") ~x ~value ~eq () =
  let width = Wire.width x in
  if value < 0 || (width < 62 && value >= 1 lsl width) then
    invalid_arg "Counter.equal_const: value out of range for the wire width";
  let cell =
    Cell.composite parent ~name ~type_name:"EqualConst"
      ~ports:[ ("x", Types.Input, x); ("eq", Types.Output, eq) ]
      ()
  in
  Cell.set_property cell "VALUE" (string_of_int value);
  (* one LUT per 4-bit chunk deciding whether the chunk matches *)
  let chunk_outputs =
    List.mapi
      (fun i (lo, hi) ->
         let expected = (value lsr lo) land ((1 lsl (hi - lo + 1)) - 1) in
         let o = Wire.create cell ~name:(Printf.sprintf "m%d" i) 1 in
         let inputs = List.init (hi - lo + 1) (fun j -> Wire.bit x (lo + j)) in
         let _ =
           Virtex.lut_of_function cell
             ~name:(Printf.sprintf "match%d" i)
             inputs o
             ~f:(fun addr -> addr = expected)
         in
         o)
      (Util.digit_split ~width ~digit_bits:4)
  in
  and_reduce cell ~name:"all" ~into:eq chunk_outputs;
  cell

let less_than parent ?(name = "lessthan") ~a ~b ~lt () =
  if Wire.width a <> Wire.width b then
    invalid_arg "Counter.less_than: width mismatch";
  let width = Wire.width a in
  let cell =
    Cell.composite parent ~name ~type_name:"LessThan"
      ~ports:
        [ ("a", Types.Input, a); ("b", Types.Input, b);
          ("lt", Types.Output, lt) ]
      ()
  in
  (* a < b  <=>  no carry out of a + ~b + 1 *)
  let b_inv = Wire.create cell ~name:"b_inv" width in
  for i = 0 to width - 1 do
    let _ =
      Virtex.inv cell ~name:(Printf.sprintf "inv%d" i) (Wire.bit b i)
        (Wire.bit b_inv i)
    in
    ()
  done;
  let vcc = Virtex.vcc cell in
  let diff = Wire.create cell ~name:"diff" width in
  let cout = Wire.create cell ~name:"cout" 1 in
  let _ =
    Adders.carry_chain cell ~name:"cmp" ~a ~b:b_inv ~sum:diff ~cin:vcc ~cout ()
  in
  let _ = Virtex.inv cell ~name:"borrow" cout lt in
  cell
