module Wire = Jhdl_circuit.Wire
module Cell = Jhdl_circuit.Cell
module Types = Jhdl_circuit.Types
module Virtex = Jhdl_virtex.Virtex

let full_adder parent ?(name = "fulladder") ~a ~b ~ci ~s ~co () =
  let fa =
    Cell.composite parent ~name ~type_name:"FullAdder"
      ~ports:
        [ ("a", Types.Input, a); ("b", Types.Input, b); ("ci", Types.Input, ci);
          ("s", Types.Output, s); ("co", Types.Output, co) ]
      ()
  in
  let t1 = Wire.create fa ~name:"t1" 1 in
  let t2 = Wire.create fa ~name:"t2" 1 in
  let t3 = Wire.create fa ~name:"t3" 1 in
  let _ = Virtex.and2 fa a b t1 in
  let _ = Virtex.and2 fa a ci t2 in
  let _ = Virtex.and2 fa b ci t3 in
  let _ = Virtex.or3 fa t1 t2 t3 co in
  let _ = Virtex.xor3 fa a b ci s in
  fa

let check_widths what a b sum =
  let wa = Wire.width a and wb = Wire.width b and ws = Wire.width sum in
  if wa <> wb || wa <> ws then
    invalid_arg
      (Printf.sprintf "Adders.%s: width mismatch a=%d b=%d sum=%d" what wa wb ws)

let ripple_carry parent ?(name = "rca") ~a ~b ~sum ?cin ?cout () =
  check_widths "ripple_carry" a b sum;
  let width = Wire.width a in
  let cell =
    Cell.composite parent ~name ~type_name:"RippleCarryAdder"
      ~ports:
        ([ ("a", Types.Input, a); ("b", Types.Input, b);
           ("sum", Types.Output, sum) ]
         @ (match cin with Some w -> [ ("cin", Types.Input, w) ] | None -> [])
         @ (match cout with Some w -> [ ("cout", Types.Output, w) ] | None -> []))
      ()
  in
  let carry = Wire.create cell ~name:"carry" (width + 1) in
  (match cin with
   | Some w -> Util.buffer cell ~name:"cin_buf" ~from:w ~into:(Wire.bit carry 0) ()
   | None ->
     let gnd = Virtex.gnd cell in
     Util.buffer cell ~name:"cin_buf" ~from:gnd ~into:(Wire.bit carry 0) ());
  for i = 0 to width - 1 do
    let _ =
      full_adder cell
        ~name:(Printf.sprintf "fa%d" i)
        ~a:(Wire.bit a i) ~b:(Wire.bit b i) ~ci:(Wire.bit carry i)
        ~s:(Wire.bit sum i)
        ~co:(Wire.bit carry (i + 1))
        ()
    in
    ()
  done;
  (match cout with
   | Some w ->
     Util.buffer cell ~name:"cout_buf" ~from:(Wire.bit carry width) ~into:w ()
   | None -> ());
  cell

(* One slice row per bit: LUT2 computes the propagate (a xor b), MUXCY
   forwards the carry, XORCY forms the sum. This is the standard Virtex
   mapping the optimized module generators use. *)
let carry_chain parent ?(name = "adder") ~a ~b ~sum ?cin ?cout () =
  check_widths "carry_chain" a b sum;
  let width = Wire.width a in
  let cell =
    Cell.composite parent ~name ~type_name:"CarryChainAdder"
      ~ports:
        ([ ("a", Types.Input, a); ("b", Types.Input, b);
           ("sum", Types.Output, sum) ]
         @ (match cin with Some w -> [ ("cin", Types.Input, w) ] | None -> [])
         @ (match cout with Some w -> [ ("cout", Types.Output, w) ] | None -> []))
      ()
  in
  let carry = Wire.create cell ~name:"carry" (width + 1) in
  (match cin with
   | Some w -> Util.buffer cell ~name:"cin_buf" ~from:w ~into:(Wire.bit carry 0) ()
   | None ->
     let gnd = Virtex.gnd cell in
     Util.buffer cell ~name:"cin_buf" ~from:gnd ~into:(Wire.bit carry 0) ());
  for i = 0 to width - 1 do
    let prop = Wire.create cell ~name:(Printf.sprintf "p%d" i) 1 in
    let lut = Virtex.xor2 cell ~name:(Printf.sprintf "prop%d" i) (Wire.bit a i) (Wire.bit b i) prop in
    let mux =
      Virtex.muxcy cell
        ~name:(Printf.sprintf "cy%d" i)
        ~s:prop ~di:(Wire.bit a i) ~ci:(Wire.bit carry i)
        ~o:(Wire.bit carry (i + 1))
        ()
    in
    let xor =
      Virtex.xorcy cell
        ~name:(Printf.sprintf "sum%d" i)
        ~li:prop ~ci:(Wire.bit carry i) ~o:(Wire.bit sum i) ()
    in
    (* relative placement: two bits per slice, one slice per row *)
    let row = i / 2 in
    Cell.set_rloc lut ~row ~col:0;
    Cell.set_rloc mux ~row ~col:0;
    Cell.set_rloc xor ~row ~col:0
  done;
  (match cout with
   | Some w ->
     Util.buffer cell ~name:"cout_buf" ~from:(Wire.bit carry width) ~into:w ()
   | None -> ());
  cell

let subtractor parent ?(name = "sub") ~a ~b ~diff () =
  check_widths "subtractor" a b diff;
  let width = Wire.width a in
  let cell =
    Cell.composite parent ~name ~type_name:"Subtractor"
      ~ports:
        [ ("a", Types.Input, a); ("b", Types.Input, b);
          ("diff", Types.Output, diff) ]
      ()
  in
  let b_inv = Wire.create cell ~name:"b_inv" width in
  for i = 0 to width - 1 do
    let _ =
      Virtex.inv cell ~name:(Printf.sprintf "inv%d" i) (Wire.bit b i)
        (Wire.bit b_inv i)
    in
    ()
  done;
  let one = Virtex.vcc cell in
  let _ = carry_chain cell ~name:"core" ~a ~b:b_inv ~sum:diff ~cin:one () in
  cell

let add_sub parent ?(name = "addsub") ~sub ~a ~b ~result () =
  check_widths "add_sub" a b result;
  let width = Wire.width a in
  let cell =
    Cell.composite parent ~name ~type_name:"AddSub"
      ~ports:
        [ ("sub", Types.Input, sub); ("a", Types.Input, a);
          ("b", Types.Input, b); ("result", Types.Output, result) ]
      ()
  in
  let b_cond = Wire.create cell ~name:"b_cond" width in
  for i = 0 to width - 1 do
    let _ =
      Virtex.xor2 cell ~name:(Printf.sprintf "bx%d" i) (Wire.bit b i) sub
        (Wire.bit b_cond i)
    in
    ()
  done;
  let _ = carry_chain cell ~name:"core" ~a ~b:b_cond ~sum:result ~cin:sub () in
  cell

let accumulator parent ?(name = "accum") ~clk ?ce ~x ~acc () =
  if Wire.width x <> Wire.width acc then
    invalid_arg "Adders.accumulator: width mismatch";
  let cell =
    Cell.composite parent ~name ~type_name:"Accumulator"
      ~ports:
        ([ ("clk", Types.Input, clk); ("x", Types.Input, x);
           ("acc", Types.Output, acc) ]
         @ (match ce with Some w -> [ ("ce", Types.Input, w) ] | None -> []))
      ()
  in
  let next = Wire.create cell ~name:"next" (Wire.width x) in
  let _ = carry_chain cell ~name:"add" ~a:acc ~b:x ~sum:next () in
  Util.register_vector cell ~name:"acc_reg" ~clk ?ce ~d:next ~q:acc ();
  cell

