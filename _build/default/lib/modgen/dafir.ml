module Wire = Jhdl_circuit.Wire
module Cell = Jhdl_circuit.Cell
module Types = Jhdl_circuit.Types
module Virtex = Jhdl_virtex.Virtex

type t = {
  cell : Cell.t;
  full_width : int;
  taps : int;
  table_entries : int;
}

(* inner-product table: F(addr) = sum of coefficients whose address bit
   is set *)
let table_value coefficients addr =
  List.fold_left
    (fun (acc, k) c ->
       ((if addr land (1 lsl k) <> 0 then acc + c else acc), k + 1))
    (0, 0) coefficients
  |> fst

let table_width coefficients =
  let taps = List.length coefficients in
  let worst = ref 1 in
  for addr = 0 to (1 lsl taps) - 1 do
    worst := max !worst (Util.bits_for_constant (table_value coefficients addr))
  done;
  !worst

let create parent ?(name = "dafir") ~clk ~x ~y ~signed_mode ~coefficients () =
  let taps = List.length coefficients in
  if taps < 1 || taps > 4 then
    invalid_arg "Dafir.create: 1 to 4 taps supported (one LUT4 address each)";
  if (not signed_mode) && List.exists (fun c -> c < 0) coefficients then
    invalid_arg "Dafir.create: negative coefficients require signed mode";
  let b_width = Wire.width x in
  let wf = table_width coefficients in
  let full_width = b_width + wf in
  let cell =
    Cell.composite parent ~name ~type_name:"DaFirFilter"
      ~ports:
        [ ("clk", Types.Input, clk); ("x", Types.Input, x);
          ("y", Types.Output, y) ]
      ()
  in
  Cell.set_property cell "TAPS" (string_of_int taps);
  Cell.set_property cell "COEFFICIENTS"
    (String.concat "," (List.map string_of_int coefficients));
  (* sample history: x_0 = current sample, x_k = k-cycle delay *)
  let samples =
    let rec build k prev acc =
      if k = taps then List.rev acc
      else begin
        let delayed =
          if k = 0 then prev
          else begin
            let next =
              Wire.create cell ~name:(Printf.sprintf "xd%d" k) b_width
            in
            Util.register_vector cell
              ~name:(Printf.sprintf "hist%d" k)
              ~clk ~d:prev ~q:next ();
            next
          end
        in
        build (k + 1) delayed (delayed :: acc)
      end
    in
    build 0 x []
  in
  (* one table bank per input bit position *)
  let bank b =
    let out = Wire.create cell ~name:(Printf.sprintf "f%d" b) wf in
    let inputs = List.map (fun s -> Wire.bit s b) samples in
    for j = 0 to wf - 1 do
      let lut =
        Virtex.lut_of_function cell
          ~name:(Printf.sprintf "da%d_%d" b j)
          inputs (Wire.bit out j)
          ~f:(fun addr -> (table_value coefficients addr asr j) land 1 = 1)
      in
      Cell.set_rloc lut ~row:(j / 2) ~col:b
    done;
    out
  in
  let sign_extend_view pp target =
    let tw = Wire.width pp in
    if target = tw then pp
    else
      Wire.concat
        (Util.fanout_bit (Wire.bit pp (tw - 1)) ~width:(target - tw))
        pp
  in
  (* accumulate shifted table outputs; the sign position subtracts *)
  let acc0 = sign_extend_view (bank 0) full_width in
  let final =
    List.fold_left
      (fun acc b ->
         let is_sign = signed_mode && b = b_width - 1 in
         let addend = sign_extend_view (bank b) (full_width - b) in
         let high =
           Wire.create cell ~name:(Printf.sprintf "acc%d" b) (full_width - b)
         in
         let high_in = Wire.slice acc ~lo:b ~hi:(full_width - 1) in
         (if is_sign then
            let _ =
              Adders.subtractor cell
                ~name:(Printf.sprintf "sub%d" b)
                ~a:high_in ~b:addend ~diff:high ()
            in
            ()
          else
            let _ =
              Adders.carry_chain cell
                ~name:(Printf.sprintf "add%d" b)
                ~a:high_in ~b:addend ~sum:high ()
            in
            ());
         Wire.concat high (Wire.slice acc ~lo:0 ~hi:(b - 1)))
      acc0
      (List.init (b_width - 1) (fun b -> b + 1))
  in
  let out_width = Wire.width y in
  let delivered =
    if out_width <= full_width then
      Wire.slice final ~lo:(full_width - out_width) ~hi:(full_width - 1)
    else if signed_mode then
      Wire.concat
        (Util.fanout_bit (Wire.bit final (full_width - 1))
           ~width:(out_width - full_width))
        final
    else begin
      let gnd = Virtex.gnd cell in
      Wire.concat (Util.fanout_bit gnd ~width:(out_width - full_width)) final
    end
  in
  Util.buffer cell ~name:"y_buf" ~from:delivered ~into:y ();
  { cell; full_width; taps; table_entries = 1 lsl taps }
