(** Additional logic module generators: LFSR, barrel shifter, priority
    encoder and Gray-code counter — rounding out the "variety of
    arithmetic, signal processing, logic, and memory modules" the paper
    attributes to the JHDL generator catalog (Section 3). *)

module Wire = Jhdl_circuit.Wire
module Cell = Jhdl_circuit.Cell

(** [lfsr parent ~clk ?ce ~taps ~q ()] — Fibonacci LFSR over [q]'s
    width: feedback is the XOR of the 1-based tap positions; state
    initializes to all-ones (a LFSR must avoid the all-zero state, so
    registers carry INIT=1). Raises [Invalid_argument] for empty taps or
    taps out of 1..width. *)
val lfsr :
  Cell.t -> ?name:string ->
  clk:Wire.t -> ?ce:Wire.t -> taps:int list -> q:Wire.t -> unit -> Cell.t

(** [lfsr_reference ~width ~taps ~cycles] — golden state sequence, one
    entry per cycle after initialization (all-ones start). *)
val lfsr_reference : width:int -> taps:int list -> cycles:int -> int list

(** [barrel_shift_left parent ~x ~amount ~y ()] — logical left shifter:
    [y = x << amount], built as log2 stages of 2:1 muxes, one stage per
    amount bit. [x] and [y] share a width; [amount] may be any width
    (amounts >= width shift in zeros). *)
val barrel_shift_left :
  Cell.t -> ?name:string -> x:Wire.t -> amount:Wire.t -> y:Wire.t -> unit -> Cell.t

(** [priority_encoder parent ~x ~index ~valid ()] — index of the
    highest set bit of [x] ([valid] = 0 when [x] is all zero). [index]
    must hold ceil(log2 (width x)) bits. *)
val priority_encoder :
  Cell.t -> ?name:string -> x:Wire.t -> index:Wire.t -> valid:Wire.t -> unit -> Cell.t

(** [gray_counter parent ~clk ?ce ~q ()] — counter whose output is the
    Gray code of an internal binary counter (adjacent outputs differ in
    one bit). *)
val gray_counter :
  Cell.t -> ?name:string -> clk:Wire.t -> ?ce:Wire.t -> q:Wire.t -> unit -> Cell.t
