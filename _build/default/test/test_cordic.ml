(* CORDIC generator tests: bit-exact agreement with the integer golden
   model, accuracy against the real-valued reference, pipelining. *)

module Bits = Jhdl_logic.Bits
module Wire = Jhdl_circuit.Wire
module Cell = Jhdl_circuit.Cell
module Design = Jhdl_circuit.Design
module Types = Jhdl_circuit.Types
module Simulator = Jhdl_sim.Simulator
module Cordic = Jhdl_modgen.Cordic

let cordic_sim ~width ~iterations ~pipelined =
  let top = Cell.root ~name:"top" () in
  let clk = Wire.create top ~name:"clk" 1 in
  let angle = Wire.create top ~name:"angle" width in
  let cos_out = Wire.create top ~name:"cos" width in
  let sin_out = Wire.create top ~name:"sin" width in
  let cordic =
    Cordic.create top ~clk ~angle ~cos_out ~sin_out ~iterations ~pipelined ()
  in
  let d = Design.create top in
  Design.add_port d "clk" Types.Input clk;
  Design.add_port d "angle" Types.Input angle;
  Design.add_port d "cos" Types.Output cos_out;
  Design.add_port d "sin" Types.Output sin_out;
  (Simulator.create ~clock:clk d, cordic)

let read_signed sim port =
  match Bits.to_signed_int (Simulator.get_port sim port) with
  | Some v -> v
  | None -> Alcotest.failf "port %s undefined" port

let test_matches_integer_model () =
  let width = 12 and iterations = 10 in
  let sim, _ = cordic_sim ~width ~iterations ~pipelined:false in
  let quarter = 1 lsl (width - 2) in
  List.iter
    (fun angle ->
       Simulator.set_input sim "angle" (Bits.of_int ~width angle);
       let cos_ref, sin_ref = Cordic.reference ~width ~iterations angle in
       Alcotest.(check int)
         (Printf.sprintf "cos at %d" angle)
         cos_ref (read_signed sim "cos");
       Alcotest.(check int)
         (Printf.sprintf "sin at %d" angle)
         sin_ref (read_signed sim "sin"))
    [ 0; 1; -1; quarter / 2; -quarter / 2; quarter; -quarter; 100; -317 ]

let test_accuracy_vs_float () =
  let width = 14 and iterations = 12 in
  let sim, _ = cordic_sim ~width ~iterations ~pipelined:false in
  let quarter = 1 lsl (width - 2) in
  let tolerance = float_of_int iterations in
  for step = -8 to 8 do
    let angle = step * quarter / 8 in
    Simulator.set_input sim "angle" (Bits.of_int ~width angle);
    let cos_f, sin_f = Cordic.float_reference ~width angle in
    let cos_m = float_of_int (read_signed sim "cos") in
    let sin_m = float_of_int (read_signed sim "sin") in
    Alcotest.(check bool)
      (Printf.sprintf "cos accuracy at %d (got %.0f want %.1f)" angle cos_m cos_f)
      true
      (Float.abs (cos_m -. cos_f) <= tolerance);
    Alcotest.(check bool)
      (Printf.sprintf "sin accuracy at %d" angle)
      true
      (Float.abs (sin_m -. sin_f) <= tolerance)
  done

let test_identity_sin2_cos2 () =
  (* x^2 + y^2 should be close to (2^(w-2))^2 at every angle *)
  let width = 12 and iterations = 10 in
  let sim, _ = cordic_sim ~width ~iterations ~pipelined:false in
  let amplitude = float_of_int (1 lsl (width - 2)) in
  for step = -4 to 4 do
    let angle = step * (1 lsl (width - 2)) / 4 in
    Simulator.set_input sim "angle" (Bits.of_int ~width angle);
    let x = float_of_int (read_signed sim "cos") in
    let y = float_of_int (read_signed sim "sin") in
    let radius = Float.sqrt ((x *. x) +. (y *. y)) in
    Alcotest.(check bool)
      (Printf.sprintf "radius at %d (got %.1f)" angle radius)
      true
      (Float.abs (radius -. amplitude) <= amplitude *. 0.02)
  done

let test_pipelined_latency_and_value () =
  let width = 10 and iterations = 8 in
  let sim, cordic = cordic_sim ~width ~iterations ~pipelined:true in
  Alcotest.(check int) "latency = iterations" iterations cordic.Cordic.latency;
  let angle = 1 lsl (width - 3) in
  Simulator.set_input sim "angle" (Bits.of_int ~width angle);
  Simulator.cycle ~n:cordic.Cordic.latency sim;
  let cos_ref, sin_ref = Cordic.reference ~width ~iterations angle in
  Alcotest.(check int) "pipelined cos" cos_ref (read_signed sim "cos");
  Alcotest.(check int) "pipelined sin" sin_ref (read_signed sim "sin")

let test_pipelined_throughput () =
  let width = 10 and iterations = 6 in
  let sim, cordic = cordic_sim ~width ~iterations ~pipelined:true in
  let angles = List.init 10 (fun i -> (i * 53 mod 256) - 128) in
  let results = ref [] in
  List.iteri
    (fun i angle ->
       Simulator.set_input sim "angle" (Bits.of_int ~width angle);
       Simulator.cycle sim;
       if i >= cordic.Cordic.latency - 1 then
         results := read_signed sim "cos" :: !results)
    angles;
  let results = List.rev !results in
  List.iteri
    (fun i angle ->
       match List.nth_opt results i with
       | None -> ()
       | Some got ->
         let expect, _ = Cordic.reference ~width ~iterations angle in
         Alcotest.(check int) (Printf.sprintf "stream sample %d" i) expect got)
    angles

let test_rejects_bad_args () =
  let top = Cell.root ~name:"top" () in
  let angle = Wire.create top ~name:"angle" 12 in
  let c = Wire.create top ~name:"c" 12 in
  let s = Wire.create top ~name:"s" 10 in
  Alcotest.(check bool) "width mismatch" true
    (try
       ignore
         (Cordic.create top ~angle ~cos_out:c ~sin_out:s ~iterations:8
            ~pipelined:false ());
       false
     with Invalid_argument _ -> true);
  let s12 = Wire.create top ~name:"s12" 12 in
  Alcotest.(check bool) "pipelined needs clock" true
    (try
       ignore
         (Cordic.create top ~angle ~cos_out:c ~sin_out:s12 ~iterations:8
            ~pipelined:true ());
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "too many iterations" true
    (try
       ignore
         (Cordic.create top ~angle ~cos_out:c ~sin_out:s12 ~iterations:40
            ~pipelined:false ());
       false
     with Invalid_argument _ -> true)

let prop_cordic_matches_reference =
  let sim = lazy (cordic_sim ~width:12 ~iterations:10 ~pipelined:false) in
  QCheck.Test.make ~name:"cordic matches integer model on random angles"
    ~count:100
    (QCheck.int_range (-(1 lsl 10)) (1 lsl 10))
    (fun angle ->
       let sim, _ = Lazy.force sim in
       Simulator.set_input sim "angle" (Bits.of_int ~width:12 angle);
       let cos_ref, sin_ref = Cordic.reference ~width:12 ~iterations:10 angle in
       read_signed sim "cos" = cos_ref && read_signed sim "sin" = sin_ref)

let suite =
  [ Alcotest.test_case "matches integer model" `Quick test_matches_integer_model;
    Alcotest.test_case "accuracy vs float" `Quick test_accuracy_vs_float;
    Alcotest.test_case "sin^2+cos^2 identity" `Quick test_identity_sin2_cos2;
    Alcotest.test_case "pipelined latency and value" `Quick
      test_pipelined_latency_and_value;
    Alcotest.test_case "pipelined throughput" `Quick test_pipelined_throughput;
    Alcotest.test_case "rejects bad args" `Quick test_rejects_bad_args ]
  @ List.map QCheck_alcotest.to_alcotest [ prop_cordic_matches_reference ]
