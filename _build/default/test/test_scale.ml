(* Scale test: a design in the thousands of primitives flows through
   elaboration, DRC, simulation, estimation, netlisting, placement and
   bitstream without pathological behaviour — the "large,
   high-performance FPGA designs" claim of Section 2.3, at test-suite
   scale. *)

module Bits = Jhdl_logic.Bits
module Wire = Jhdl_circuit.Wire
module Cell = Jhdl_circuit.Cell
module Design = Jhdl_circuit.Design
module Types = Jhdl_circuit.Types
module Simulator = Jhdl_sim.Simulator
module Estimate = Jhdl_estimate.Estimate
module Model = Jhdl_netlist.Model
module Fir = Jhdl_modgen.Fir
module Placer = Jhdl_place.Placer
module Config_mem = Jhdl_bitstream.Config_mem

(* a 16-tap, 10-bit KCM filter bank: two filters sharing an input *)
let big_design () =
  let coefficients =
    [ 3; -5; 7; -9; 11; -13; 17; -19; 23; -29; 31; -37; 41; -43; 47; -53 ]
  in
  let top = Cell.root ~name:"bank" () in
  let clk = Wire.create top ~name:"clk" 1 in
  let x = Wire.create top ~name:"x" 10 in
  let y0 = Wire.create top ~name:"y0" 24 in
  let y1 = Wire.create top ~name:"y1" 24 in
  let _ = Fir.create top ~name:"f0" ~clk ~x ~y:y0 ~signed_mode:true ~coefficients () in
  let _ =
    Fir.create top ~name:"f1" ~clk ~x ~y:y1 ~signed_mode:true
      ~coefficients:(List.rev coefficients) ()
  in
  let d = Design.create top in
  Design.add_port d "clk" Types.Input clk;
  Design.add_port d "x" Types.Input x;
  Design.add_port d "y0" Types.Output y0;
  Design.add_port d "y1" Types.Output y1;
  (d, coefficients)

let test_scale_pipeline () =
  let d, coefficients = big_design () in
  let stats = Design.stats d in
  Alcotest.(check bool)
    (Printf.sprintf "thousands of primitives (%d)" stats.Design.primitive_instances)
    true
    (stats.Design.primitive_instances > 3000);
  Alcotest.(check int) "drc clean" 0 (List.length (Design.errors d));
  (* simulate a short stream and check filter 0 against the reference *)
  let clk = (Option.get (Design.find_port d "clk")).Design.port_wire in
  let sim = Simulator.create ~clock:clk d in
  let samples = List.init 24 (fun i -> ((i * 97) mod 1024) - 512) in
  let expected =
    Fir.expected_response ~signed_mode:true ~coefficients
      ~full_width:(Fir.accumulation_width ~x_width:10 ~coefficients)
      ~out_width:24 samples
  in
  List.iteri
    (fun i x ->
       Simulator.set_input sim "x" (Bits.of_int ~width:10 x);
       let y = Simulator.get_port sim "y0" in
       Simulator.cycle sim;
       Alcotest.(check bool)
         (Printf.sprintf "sample %d" i)
         true
         (Bits.equal y (List.nth expected i)))
    samples;
  (* the rest of the flow stays linear-ish: estimate, model, place *)
  let area = Estimate.area_of_design d in
  Alcotest.(check bool) "hundreds of slices" true (area.Estimate.slices > 400);
  let timing = Estimate.timing_of_design d in
  Alcotest.(check bool) "critical path found" true
    (timing.Estimate.critical_path_ps > 0);
  let model = Model.of_design d in
  Alcotest.(check int) "model complete" stats.Design.primitive_instances
    (Model.instance_count model);
  let placed = Placer.auto_place d ~rows:48 ~cols:48 in
  Alcotest.(check bool) "placer fits" true (placed.Placer.placed > 3000);
  let config = Config_mem.create ~rows:48 ~cols:48 in
  let slices = Config_mem.configure config d in
  Alcotest.(check bool) "bitstream configured" true (slices > 3000)

let suite = [ Alcotest.test_case "16-tap filter bank flow" `Quick test_scale_pipeline ]
