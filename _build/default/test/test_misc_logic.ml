(* Tests for the LFSR, barrel shifter, priority encoder and Gray
   counter generators. *)

module Bits = Jhdl_logic.Bits
module Wire = Jhdl_circuit.Wire
module Cell = Jhdl_circuit.Cell
module Design = Jhdl_circuit.Design
module Types = Jhdl_circuit.Types
module Simulator = Jhdl_sim.Simulator
module Misc_logic = Jhdl_modgen.Misc_logic

let bits = Alcotest.testable Bits.pp Bits.equal

(* {1 lfsr} *)

let lfsr_sim ~width ~taps =
  let top = Cell.root ~name:"top" () in
  let clk = Wire.create top ~name:"clk" 1 in
  let q = Wire.create top ~name:"q" width in
  let _ = Misc_logic.lfsr top ~clk ~taps ~q () in
  let d = Design.create top in
  Design.add_port d "clk" Types.Input clk;
  Design.add_port d "q" Types.Output q;
  Simulator.create ~clock:clk d

let test_lfsr_matches_reference () =
  let width = 8 and taps = [ 8; 6; 5; 4 ] in
  let sim = lfsr_sim ~width ~taps in
  let expected = Misc_logic.lfsr_reference ~width ~taps ~cycles:40 in
  List.iteri
    (fun i e ->
       Simulator.cycle sim;
       Alcotest.check bits
         (Printf.sprintf "state after cycle %d" (i + 1))
         (Bits.of_int ~width e)
         (Simulator.get_port sim "q"))
    expected

let test_lfsr_maximal_period () =
  (* x^4 + x^3 + 1 is maximal: period 15 *)
  let width = 4 and taps = [ 4; 3 ] in
  let states = Misc_logic.lfsr_reference ~width ~taps ~cycles:15 in
  Alcotest.(check int) "15 distinct states" 15
    (List.length (List.sort_uniq Int.compare states));
  Alcotest.(check bool) "never all-zero" true
    (List.for_all (fun s -> s <> 0) states);
  Alcotest.(check (list int)) "returns to seed"
    [ 15 ]
    (List.filteri (fun i _ -> i = 14) states)

let test_lfsr_bad_taps () =
  let top = Cell.root ~name:"top" () in
  let clk = Wire.create top ~name:"clk" 1 in
  let q = Wire.create top ~name:"q" 8 in
  Alcotest.(check bool) "tap out of range" true
    (try ignore (Misc_logic.lfsr top ~clk ~taps:[ 9 ] ~q ()); false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "empty taps" true
    (try ignore (Misc_logic.lfsr top ~clk ~taps:[] ~q ()); false
     with Invalid_argument _ -> true)

(* {1 barrel shifter} *)

let test_barrel_shifter () =
  let top = Cell.root ~name:"top" () in
  let x = Wire.create top ~name:"x" 8 in
  let amount = Wire.create top ~name:"amount" 4 in
  let y = Wire.create top ~name:"y" 8 in
  let _ = Misc_logic.barrel_shift_left top ~x ~amount ~y () in
  let d = Design.create top in
  Design.add_port d "x" Types.Input x;
  Design.add_port d "amount" Types.Input amount;
  Design.add_port d "y" Types.Output y;
  let sim = Simulator.create d in
  List.iter
    (fun (value, shift) ->
       Simulator.set_input sim "x" (Bits.of_int ~width:8 value);
       Simulator.set_input sim "amount" (Bits.of_int ~width:4 shift);
       Alcotest.check bits
         (Printf.sprintf "%d << %d" value shift)
         (Bits.of_int ~width:8 (if shift >= 8 then 0 else (value lsl shift) land 0xFF))
         (Simulator.get_port sim "y"))
    [ (0b1, 0); (0b1, 3); (0xFF, 4); (0xAB, 1); (0x80, 1); (0x0F, 8);
      (0xFF, 15); (0x55, 7) ]

(* {1 priority encoder} *)

let test_priority_encoder () =
  let top = Cell.root ~name:"top" () in
  let x = Wire.create top ~name:"x" 8 in
  let index = Wire.create top ~name:"index" 3 in
  let valid = Wire.create top ~name:"valid" 1 in
  let _ = Misc_logic.priority_encoder top ~x ~index ~valid () in
  let d = Design.create top in
  Design.add_port d "x" Types.Input x;
  Design.add_port d "index" Types.Output index;
  Design.add_port d "valid" Types.Output valid;
  let sim = Simulator.create d in
  for value = 0 to 255 do
    Simulator.set_input sim "x" (Bits.of_int ~width:8 value);
    if value = 0 then
      Alcotest.check bits "invalid on zero" (Bits.of_int ~width:1 0)
        (Simulator.get_port sim "valid")
    else begin
      let expected =
        let rec top_bit i = if value lsr i <> 0 then top_bit (i + 1) else i - 1 in
        top_bit 0
      in
      Alcotest.check bits
        (Printf.sprintf "index of %d" value)
        (Bits.of_int ~width:3 expected)
        (Simulator.get_port sim "index");
      Alcotest.check bits "valid" (Bits.of_int ~width:1 1)
        (Simulator.get_port sim "valid")
    end
  done

(* {1 gray counter} *)

let test_gray_counter () =
  let top = Cell.root ~name:"top" () in
  let clk = Wire.create top ~name:"clk" 1 in
  let q = Wire.create top ~name:"q" 4 in
  let _ = Misc_logic.gray_counter top ~clk ~q () in
  let d = Design.create top in
  Design.add_port d "clk" Types.Input clk;
  Design.add_port d "q" Types.Output q;
  let sim = Simulator.create ~clock:clk d in
  let gray n = n lxor (n lsr 1) in
  let previous = ref (Bits.to_int (Simulator.get_port sim "q")) in
  for n = 1 to 20 do
    Simulator.cycle sim;
    let got = Simulator.get_port sim "q" in
    Alcotest.check bits
      (Printf.sprintf "gray of %d" n)
      (Bits.of_int ~width:4 (gray (n land 15)))
      got;
    (* adjacent Gray codes differ in exactly one bit *)
    (match !previous, Bits.to_int got with
     | Some p, Some g ->
       let rec popcount v = if v = 0 then 0 else (v land 1) + popcount (v lsr 1) in
       Alcotest.(check int)
         (Printf.sprintf "hamming distance at %d" n)
         1
         (popcount (p lxor g))
     | _ -> Alcotest.fail "undefined counter output");
    previous := Bits.to_int got
  done

let suite =
  [ Alcotest.test_case "lfsr matches reference" `Quick
      test_lfsr_matches_reference;
    Alcotest.test_case "lfsr maximal period" `Quick test_lfsr_maximal_period;
    Alcotest.test_case "lfsr bad taps" `Quick test_lfsr_bad_taps;
    Alcotest.test_case "barrel shifter" `Quick test_barrel_shifter;
    Alcotest.test_case "priority encoder" `Quick test_priority_encoder;
    Alcotest.test_case "gray counter" `Quick test_gray_counter ]
