(* Netlist tests: the flattened model, identifier legalization and the
   three writers. *)

module Wire = Jhdl_circuit.Wire
module Cell = Jhdl_circuit.Cell
module Design = Jhdl_circuit.Design
module Types = Jhdl_circuit.Types
module Virtex = Jhdl_virtex.Virtex
module Model = Jhdl_netlist.Model
module Ident = Jhdl_netlist.Ident
module Edif = Jhdl_netlist.Edif
module Vhdl = Jhdl_netlist.Vhdl
module Verilog = Jhdl_netlist.Verilog
module Format_kind = Jhdl_netlist.Format_kind
module Kcm = Jhdl_modgen.Kcm

let small_design () =
  let top = Cell.root ~name:"top" () in
  let a = Wire.create top ~name:"a" 2 in
  let b = Wire.create top ~name:"b" 1 in
  let o = Wire.create top ~name:"o" 1 in
  let clk = Wire.create top ~name:"clk" 1 in
  let t = Wire.create top ~name:"t" 1 in
  let _ = Virtex.and2 top (Wire.bit a 0) (Wire.bit a 1) t in
  let _ = Virtex.xor2 top t b o in
  let q = Wire.create top ~name:"q" 1 in
  let _ = Virtex.fd top ~c:clk ~d:o ~q () in
  let d = Design.create top in
  Design.add_port d "a" Types.Input a;
  Design.add_port d "b" Types.Input b;
  Design.add_port d "clk" Types.Input clk;
  Design.add_port d "q" Types.Output q;
  d

let kcm_design () =
  let top = Cell.root ~name:"kcm_top" () in
  let clk = Wire.create top ~name:"clk" 1 in
  let m = Wire.create top ~name:"m" 8 in
  let p = Wire.create top ~name:"p" 12 in
  let _ =
    Kcm.create top ~clk ~multiplicand:m ~product:p ~signed_mode:true
      ~pipelined_mode:false ~constant:(-56) ()
  in
  let d = Design.create top in
  Design.add_port d "clk" Types.Input clk;
  Design.add_port d "m" Types.Input m;
  Design.add_port d "p" Types.Output p;
  d

(* {1 model} *)

let test_model_extraction () =
  let m = Model.of_design (small_design ()) in
  Alcotest.(check string) "design name" "top" m.Model.design_name;
  Alcotest.(check int) "3 instances" 3 (Model.instance_count m);
  Alcotest.(check int) "4 ports" 4 (List.length m.Model.ports);
  (* nets: a0 a1 b o clk t q = 7 *)
  Alcotest.(check int) "7 nets" 7 (Model.net_count m)

let test_model_attrs () =
  let m = Model.of_design (small_design ()) in
  let and_inst =
    Array.to_list m.Model.instances
    |> List.find (fun i -> i.Model.inst_lib_cell = "LUT2")
  in
  Alcotest.(check bool) "has INIT" true
    (List.exists (fun a -> a.Model.attr_name = "INIT") and_inst.Model.inst_attrs);
  let ff =
    Array.to_list m.Model.instances
    |> List.find (fun i -> i.Model.inst_lib_cell = "FD")
  in
  Alcotest.(check bool) "ff INIT=0" true
    (List.exists
       (fun a -> a.Model.attr_name = "INIT" && a.Model.attr_value = "0")
       ff.Model.inst_attrs)

let test_model_driver_tracking () =
  let m = Model.of_design (small_design ()) in
  let driven =
    Array.to_list m.Model.nets
    |> List.filter (fun n -> n.Model.driver_instance <> None)
  in
  (* t, o, q driven by instances; inputs driven externally *)
  Alcotest.(check int) "3 instance-driven nets" 3 (List.length driven)

let test_lib_cells () =
  let m = Model.of_design (small_design ()) in
  let cells = List.map fst (Model.lib_cells m) in
  Alcotest.(check (list string)) "lib cells" [ "FD"; "LUT2" ] cells

let test_model_rloc_attr () =
  let m = Model.of_design (kcm_design ()) in
  let with_rloc =
    Array.to_list m.Model.instances
    |> List.filter (fun i ->
      List.exists (fun a -> a.Model.attr_name = "RLOC") i.Model.inst_attrs)
  in
  Alcotest.(check bool) "kcm carries placement" true (List.length with_rloc > 10)

(* {1 identifiers} *)

let test_ident_sanitize () =
  let t = Ident.create Ident.Vhdl in
  Alcotest.(check string) "slashes" "kcm_add1_p0"
    (Ident.legalize t "kcm/add1/p0");
  Alcotest.(check string) "stable" "kcm_add1_p0"
    (Ident.legalize t "kcm/add1/p0")

let test_ident_collisions () =
  let t = Ident.create Ident.Verilog in
  let a = Ident.legalize t "x/y" in
  let b = Ident.legalize t "x_y" in
  Alcotest.(check bool) "distinct outputs" true (a <> b)

let test_ident_reserved () =
  let t = Ident.create Ident.Vhdl in
  Alcotest.(check bool) "vhdl keyword avoided" true
    (Ident.legalize t "signal" <> "signal");
  let v = Ident.create Ident.Verilog in
  Alcotest.(check bool) "verilog keyword avoided" true
    (Ident.legalize v "module" <> "module")

let test_ident_leading_digit () =
  let t = Ident.create Ident.Edif in
  let out = Ident.legalize t "0net" in
  Alcotest.(check bool) "no leading digit" true
    (out.[0] < '0' || out.[0] > '9')

let test_ident_vhdl_case_insensitive () =
  let t = Ident.create Ident.Vhdl in
  let a = Ident.legalize t "Foo" in
  let b = Ident.legalize t "foo" in
  Alcotest.(check bool) "case collision avoided" true
    (String.lowercase_ascii a <> String.lowercase_ascii b)

let test_ident_vhdl_underscores () =
  let t = Ident.create Ident.Vhdl in
  let out = Ident.legalize t "a//b_" in
  Alcotest.(check bool) "no double underscore" true
    (not
       (let rec has_double i =
          i < String.length out - 1
          && ((out.[i] = '_' && out.[i + 1] = '_') || has_double (i + 1))
        in
        has_double 0));
  Alcotest.(check bool) "no trailing underscore" true
    (out.[String.length out - 1] <> '_')

let prop_ident_injective =
  QCheck.Test.make ~name:"legalization never collides" ~count:300
    QCheck.(small_list (string_gen_of_size (QCheck.Gen.int_range 1 12) QCheck.Gen.printable))
    (fun names ->
       let t = Ident.create Ident.Vhdl in
       let distinct = List.sort_uniq String.compare names in
       let outputs = List.map (Ident.legalize t) distinct in
       List.length (List.sort_uniq String.compare outputs)
       = List.length distinct)

(* {1 writers} *)

let balanced_parens s =
  let depth = ref 0 and ok = ref true in
  String.iter
    (fun c ->
       if c = '(' then incr depth
       else if c = ')' then begin
         decr depth;
         if !depth < 0 then ok := false
       end)
    s;
  !ok && !depth = 0

let contains ~needle haystack =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  go 0

let test_edif_structure () =
  let edif = Edif.of_design (small_design ()) in
  Alcotest.(check bool) "balanced" true (balanced_parens edif);
  Alcotest.(check bool) "has header" true (contains ~needle:"(edifVersion 2 0 0)" edif);
  Alcotest.(check bool) "declares LUT2" true (contains ~needle:"(cell LUT2" edif);
  Alcotest.(check bool) "declares FD" true (contains ~needle:"(cell FD" edif);
  Alcotest.(check bool) "port array" true (contains ~needle:"(array a 2)" edif);
  Alcotest.(check bool) "has design" true (contains ~needle:"(design top" edif)

let test_edif_instances_and_nets () =
  let m = Model.of_design (small_design ()) in
  let edif = Edif.to_string m in
  let count needle =
    let rec go i acc =
      if i + String.length needle > String.length edif then acc
      else if String.sub edif i (String.length needle) = needle then
        go (i + 1) (acc + 1)
      else go (i + 1) acc
    in
    go 0 0
  in
  Alcotest.(check int) "3 instances" 3 (count "(instance ");
  Alcotest.(check int) "7 nets" 7 (count "(net ")

let test_vhdl_structure () =
  let vhdl = Vhdl.of_design (small_design ()) in
  Alcotest.(check bool) "entity" true (contains ~needle:"entity entity_top is" vhdl);
  Alcotest.(check bool) "architecture" true
    (contains ~needle:"architecture structural of entity_top" vhdl);
  Alcotest.(check bool) "vector port" true
    (contains ~needle:"std_logic_vector(1 downto 0)" vhdl);
  Alcotest.(check bool) "component decl" true (contains ~needle:"component comp_FD" vhdl);
  Alcotest.(check bool) "init attribute" true (contains ~needle:"attribute init" vhdl);
  Alcotest.(check bool) "port map" true (contains ~needle:"port map" vhdl)

let test_verilog_structure () =
  let v = Verilog.of_design (small_design ()) in
  Alcotest.(check bool) "module" true (contains ~needle:"module module_top" v);
  Alcotest.(check bool) "endmodule" true (contains ~needle:"endmodule" v);
  Alcotest.(check bool) "input vector" true (contains ~needle:"input [1:0]" v);
  Alcotest.(check bool) "attribute comment" true (contains ~needle:"(* INIT" v);
  Alcotest.(check bool) "named connection" true (contains ~needle:".lport_FD_D(" v)

let test_kcm_netlists_all_formats () =
  let m = Model.of_design (kcm_design ()) in
  List.iter
    (fun fmt ->
       let text = Format_kind.write fmt m in
       Alcotest.(check bool)
         (Format_kind.to_string fmt ^ " non-trivial")
         true
         (String.length text > 2000))
    Format_kind.all;
  Alcotest.(check bool) "edif balanced" true
    (balanced_parens (Format_kind.write Format_kind.Edif m))

let test_format_kind_parse () =
  Alcotest.(check bool) "edif" true (Format_kind.of_string "EDIF" = Some Format_kind.Edif);
  Alcotest.(check bool) "edn ext" true (Format_kind.of_string "edn" = Some Format_kind.Edif);
  Alcotest.(check bool) "vhd" true (Format_kind.of_string "vhd" = Some Format_kind.Vhdl);
  Alcotest.(check bool) "v" true (Format_kind.of_string "v" = Some Format_kind.Verilog);
  Alcotest.(check bool) "junk" true (Format_kind.of_string "xml" = None)

let test_netlist_includes_blackbox () =
  let top = Cell.root ~name:"top" () in
  let a = Wire.create top ~name:"a" 4 in
  let o = Wire.create top ~name:"o" 4 in
  let make_behavior () =
    { Jhdl_circuit.Prim.comb = (fun ~read -> [ ("O", read "A") ]);
      clock_edge = None;
      state_reset = None }
  in
  let _ =
    Cell.black_box top ~model_name:"MYSTERY" ~make_behavior
      ~ports:[ ("A", Types.Input, a); ("O", Types.Output, o) ]
      ()
  in
  let d = Design.create top in
  Design.add_port d "a" Types.Input a;
  Design.add_port d "o" Types.Output o;
  let edif = Edif.of_design d in
  Alcotest.(check bool) "black box cell declared" true
    (contains ~needle:"(cell MYSTERY" edif)

let suite =
  [ Alcotest.test_case "model extraction" `Quick test_model_extraction;
    Alcotest.test_case "model attrs" `Quick test_model_attrs;
    Alcotest.test_case "model driver tracking" `Quick test_model_driver_tracking;
    Alcotest.test_case "lib cells" `Quick test_lib_cells;
    Alcotest.test_case "model rloc attr" `Quick test_model_rloc_attr;
    Alcotest.test_case "ident sanitize" `Quick test_ident_sanitize;
    Alcotest.test_case "ident collisions" `Quick test_ident_collisions;
    Alcotest.test_case "ident reserved" `Quick test_ident_reserved;
    Alcotest.test_case "ident leading digit" `Quick test_ident_leading_digit;
    Alcotest.test_case "ident vhdl case" `Quick test_ident_vhdl_case_insensitive;
    Alcotest.test_case "ident vhdl underscores" `Quick test_ident_vhdl_underscores;
    Alcotest.test_case "edif structure" `Quick test_edif_structure;
    Alcotest.test_case "edif instances and nets" `Quick
      test_edif_instances_and_nets;
    Alcotest.test_case "vhdl structure" `Quick test_vhdl_structure;
    Alcotest.test_case "verilog structure" `Quick test_verilog_structure;
    Alcotest.test_case "kcm all formats" `Quick test_kcm_netlists_all_formats;
    Alcotest.test_case "format kind parse" `Quick test_format_kind_parse;
    Alcotest.test_case "black box in netlist" `Quick
      test_netlist_includes_blackbox ]
  @ List.map QCheck_alcotest.to_alcotest [ prop_ident_injective ]
