(* Web server tests: per-license serving, browser caching, updates. *)

module Server = Jhdl_webserver.Server
module Catalog = Jhdl_applet.Catalog
module License = Jhdl_applet.License
module Applet = Jhdl_applet.Applet
module Feature = Jhdl_applet.Feature
module Jar = Jhdl_bundle.Jar
module Download = Jhdl_bundle.Download

let fresh_server () =
  let server = Server.create ~vendor:"test-vendor" () in
  let _ = Server.publish server Catalog.kcm in
  let _ = Server.publish server Catalog.fir in
  Server.register_user server ~user:"alice" ~tier:License.Licensed;
  Server.register_user server ~user:"bob" ~tier:License.Passive;
  server

let request ?(user = "alice") ?(ip = "VirtexKCMMultiplier") server =
  match Server.request server ~user ~ip_name:ip ~link:Download.dsl_1m () with
  | Ok session -> session
  | Error message -> Alcotest.failf "request failed: %s" message

let test_unknown_user () =
  let server = fresh_server () in
  match
    Server.request server ~user:"mallory" ~ip_name:"VirtexKCMMultiplier"
      ~link:Download.dsl_1m ()
  with
  | Error message ->
    Alcotest.(check bool) "names the user" true
      (String.length message > 0)
  | Ok _ -> Alcotest.fail "should fail"

let test_unknown_ip () =
  let server = fresh_server () in
  match
    Server.request server ~user:"alice" ~ip_name:"Cordic" ~link:Download.dsl_1m ()
  with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "should fail"

let test_catalog () =
  let server = fresh_server () in
  Alcotest.(check (list (pair string int))) "two entries at v1"
    [ ("VirtexKCMMultiplier", 1); ("FirFilter", 1) ]
    (Server.catalog server)

let test_license_drives_applet () =
  let server = fresh_server () in
  let alice = request server in
  let bob = request ~user:"bob" server in
  Alcotest.(check bool) "alice can netlist" true
    (List.mem Feature.Netlister (Applet.features alice.Server.applet));
  Alcotest.(check bool) "bob cannot" false
    (List.mem Feature.Netlister (Applet.features bob.Server.applet));
  Alcotest.(check bool) "bob's jar set is smaller" true
    (List.length bob.Server.jars < List.length alice.Server.jars)

let test_first_visit_fetches_everything () =
  let server = fresh_server () in
  let session = request server in
  Alcotest.(check int) "cache empty: all jars fetched"
    (List.length session.Server.jars)
    (List.length session.Server.fetched);
  Alcotest.(check bool) "download takes time" true
    (session.Server.download_seconds > 1.0)

let test_revisit_hits_cache () =
  let server = fresh_server () in
  let _ = request server in
  let second = request server in
  Alcotest.(check int) "nothing re-fetched" 0
    (List.length second.Server.fetched);
  Alcotest.(check bool) "instant" true (second.Server.download_seconds < 0.001)

let test_update_refetches_applet_jar_only () =
  let server = fresh_server () in
  let _ = request server in
  let v = Server.publish server Catalog.kcm in
  Alcotest.(check int) "version bumped" 2 v;
  let session = request server in
  Alcotest.(check int) "served the new version" 2 session.Server.version;
  Alcotest.(check (list string)) "only the applet jar moved"
    [ "Applet.jar" ]
    (List.map (fun j -> j.Jar.jar_name) session.Server.fetched)

let test_cache_is_per_user () =
  let server = fresh_server () in
  let _ = request server in
  (* bob's first visit still downloads everything *)
  let bob = request ~user:"bob" server in
  Alcotest.(check bool) "bob fetched jars" true
    (List.length bob.Server.fetched > 0)

let test_access_log () =
  let server = fresh_server () in
  let _ = request server in
  let _ = request ~user:"bob" server in
  Alcotest.(check int) "two entries" 2 (List.length (Server.access_log server))

let test_served_applet_works () =
  let server = fresh_server () in
  let session = request server in
  let applet = session.Server.applet in
  (match Applet.exec applet Applet.Build with
   | Ok _ -> ()
   | Error message -> Alcotest.failf "build failed: %s" message);
  match Applet.exec applet (Applet.Netlist "VHDL") with
  | Ok text -> Alcotest.(check bool) "vhdl produced" true (String.length text > 500)
  | Error message -> Alcotest.failf "netlist failed: %s" message

let test_secure_request () =
  let server = fresh_server () in
  match
    Server.secure_request server ~user:"alice" ~ip_name:"VirtexKCMMultiplier"
      ~link:Download.dsl_1m ()
  with
  | Error message -> Alcotest.fail message
  | Ok (session, sealed) ->
    Alcotest.(check int) "one sealed jar per fetched jar"
      (List.length session.Server.fetched)
      (List.length sealed);
    let token = Option.get (Server.user_token server ~user:"alice") in
    List.iter
      (fun s ->
         match Jhdl_webserver.Secure_channel.open_sealed ~token s with
         | Ok _ -> ()
         | Error m -> Alcotest.fail m)
      sealed;
    (* another user's token cannot open alice's jars *)
    Server.register_user server ~user:"mallory" ~tier:License.Passive;
    let bad = Option.get (Server.user_token server ~user:"mallory") in
    (match sealed with
     | s :: _ ->
       Alcotest.(check bool) "cross-user decryption fails" true
         (Result.is_error (Jhdl_webserver.Secure_channel.open_sealed ~token:bad s))
     | [] -> Alcotest.fail "expected sealed jars")

let suite =
  [ Alcotest.test_case "unknown user" `Quick test_unknown_user;
    Alcotest.test_case "secure request" `Quick test_secure_request;
    Alcotest.test_case "unknown ip" `Quick test_unknown_ip;
    Alcotest.test_case "catalog" `Quick test_catalog;
    Alcotest.test_case "license drives applet" `Quick test_license_drives_applet;
    Alcotest.test_case "first visit fetches all" `Quick
      test_first_visit_fetches_everything;
    Alcotest.test_case "revisit hits cache" `Quick test_revisit_hits_cache;
    Alcotest.test_case "update refetches applet jar" `Quick
      test_update_refetches_applet_jar_only;
    Alcotest.test_case "cache is per user" `Quick test_cache_is_per_user;
    Alcotest.test_case "access log" `Quick test_access_log;
    Alcotest.test_case "served applet works" `Quick test_served_applet_works ]
