(* Placer tests: legality, determinism, quality vs the random baseline,
   and the effect on placement-aware timing. *)

module Wire = Jhdl_circuit.Wire
module Cell = Jhdl_circuit.Cell
module Design = Jhdl_circuit.Design
module Types = Jhdl_circuit.Types
module Prim = Jhdl_circuit.Prim
module Estimate = Jhdl_estimate.Estimate
module Placer = Jhdl_place.Placer
module Kcm = Jhdl_modgen.Kcm
module Floorplan = Jhdl_viewer.Floorplan
module Router = Jhdl_place.Router

let kcm_design () =
  let top = Cell.root ~name:"kcm_top" () in
  let clk = Wire.create top ~name:"clk" 1 in
  let m = Wire.create top ~name:"m" 8 in
  let p = Wire.create top ~name:"p" 15 in
  let _ =
    Kcm.create top ~clk ~multiplicand:m ~product:p ~signed_mode:true
      ~pipelined_mode:false ~constant:(-56) ()
  in
  let d = Design.create top in
  Design.add_port d "clk" Types.Input clk;
  Design.add_port d "m" Types.Input m;
  Design.add_port d "p" Types.Output p;
  d

let area_prims d =
  Design.all_prims d
  |> List.filter (fun c ->
    match Cell.prim_of c with
    | Some (Prim.Buf | Prim.Gnd | Prim.Vcc | Prim.Black_box _) | None -> false
    | Some _ -> true)
  |> List.length

let test_auto_place_legality () =
  let d = kcm_design () in
  let result = Placer.auto_place d ~rows:16 ~cols:16 in
  Alcotest.(check int) "every area primitive placed" (area_prims d)
    result.Placer.placed;
  (* capacity: no more than 2 of each resource per site *)
  let counts = Hashtbl.create 64 in
  List.iter
    (fun c ->
       match Cell.prim_of c, Cell.rloc c with
       | Some prim, Some (r, k) ->
         let key =
           ( (match prim with
              | Prim.Lut _ | Prim.Inv | Prim.Srl16 _ | Prim.Ram16x1 _ -> 0
              | Prim.Ff _ -> 1
              | Prim.Muxcy | Prim.Xorcy | Prim.Mult_and -> 2
              | Prim.Buf | Prim.Gnd | Prim.Vcc | Prim.Black_box _ -> 3),
             r, k )
         in
         Hashtbl.replace counts key
           (1 + Option.value (Hashtbl.find_opt counts key) ~default:0);
         Alcotest.(check bool) "within bounds" true
           (r >= 0 && r < 16 && k >= 0 && k < 16)
       | _, (Some _ | None) -> ())
    (Design.all_prims d);
  Hashtbl.iter
    (fun _ n -> Alcotest.(check bool) "site capacity <= 2" true (n <= 2))
    counts

let test_auto_place_deterministic () =
  let wl () = (Placer.auto_place (kcm_design ()) ~rows:16 ~cols:16).Placer.wirelength in
  Alcotest.(check int) "same wirelength twice" (wl ()) (wl ())

let test_auto_beats_random () =
  let auto = Placer.auto_place (kcm_design ()) ~rows:16 ~cols:16 in
  let random =
    Placer.random_place (kcm_design ()) ~rows:16 ~cols:16 ~seed:12345
  in
  Alcotest.(check bool)
    (Printf.sprintf "auto (%d) < random (%d) wirelength" auto.Placer.wirelength
       random.Placer.wirelength)
    true
    (auto.Placer.wirelength < random.Placer.wirelength)

let test_auto_place_improves_timing_vs_random () =
  let time place =
    let d = kcm_design () in
    let (_ : Placer.result) = place d in
    (Estimate.timing_of_design ~use_placement:true d).Estimate.critical_path_ps
  in
  let auto = time (Placer.auto_place ~rows:16 ~cols:16) in
  let random = time (Placer.random_place ~rows:16 ~cols:16 ~seed:99) in
  Alcotest.(check bool)
    (Printf.sprintf "auto (%d ps) <= random (%d ps)" auto random)
    true (auto <= random)

let test_placement_visible_in_floorplan () =
  let d = kcm_design () in
  let _ = Placer.auto_place d ~rows:16 ~cols:16 in
  match Floorplan.bounding_box (Design.root d) with
  | Some (rows, cols) ->
    Alcotest.(check bool) "fits grid" true (rows <= 16 && cols <= 16)
  | None -> Alcotest.fail "expected placed sites"

let test_does_not_fit () =
  let d = kcm_design () in
  Alcotest.(check bool) "tiny grid rejected" true
    (try ignore (Placer.auto_place d ~rows:2 ~cols:2); false
     with Invalid_argument _ -> true)

let test_wirelength_none_when_unplaced () =
  let d = kcm_design () in
  Cell.iter_rec Cell.clear_rloc (Design.root d);
  Alcotest.(check bool) "no measurement" true (Placer.wirelength d = None)

(* {1 router} *)

let test_route_placed_kcm () =
  let d = kcm_design () in
  let _ = Placer.auto_place d ~rows:16 ~cols:16 in
  let report = Router.route d ~rows:16 ~cols:16 ~capacity:8 in
  Alcotest.(check int)
    (Format.asprintf "all nets route: %a" Router.pp_report report)
    0 report.Router.failed;
  Alcotest.(check bool) "segments used" true (report.Router.total_segments > 0);
  Alcotest.(check bool) "detour sane" true
    (report.Router.mean_detour >= 1.0 && report.Router.mean_detour < 3.0)

let test_route_capacity_pressure () =
  (* shrinking channel capacity can only increase failures and must
     never exceed 100% utilization *)
  let run capacity =
    let d = kcm_design () in
    let _ = Placer.auto_place d ~rows:16 ~cols:16 in
    Router.route d ~rows:16 ~cols:16 ~capacity
  in
  let tight = run 1 in
  let roomy = run 16 in
  Alcotest.(check bool) "tight fails at least as much" true
    (tight.Router.failed >= roomy.Router.failed);
  Alcotest.(check bool) "utilization capped" true
    (tight.Router.max_utilization <= 1.0 +. 1e-9);
  Alcotest.(check int) "roomy routes everything" 0 roomy.Router.failed

let test_route_good_placement_uses_fewer_segments () =
  let run place =
    let d = kcm_design () in
    let (_ : Placer.result) = place d in
    Router.route d ~rows:16 ~cols:16 ~capacity:16
  in
  let auto = run (Placer.auto_place ~rows:16 ~cols:16) in
  let random = run (Placer.random_place ~rows:16 ~cols:16 ~seed:5) in
  Alcotest.(check bool)
    (Printf.sprintf "auto (%d) < random (%d) segments"
       auto.Router.total_segments random.Router.total_segments)
    true
    (auto.Router.total_segments < random.Router.total_segments)

let test_route_hand_placement () =
  (* the generator's own RLOCs route cleanly too *)
  let d = kcm_design () in
  let report = Router.route d ~rows:16 ~cols:16 ~capacity:8 in
  Alcotest.(check int) "no failures" 0 report.Router.failed

let test_route_bad_capacity () =
  let d = kcm_design () in
  Alcotest.(check bool) "zero capacity rejected" true
    (try ignore (Router.route d ~rows:8 ~cols:8 ~capacity:0); false
     with Invalid_argument _ -> true)

let suite =
  [ Alcotest.test_case "legality" `Quick test_auto_place_legality;
    Alcotest.test_case "route placed kcm" `Quick test_route_placed_kcm;
    Alcotest.test_case "route capacity pressure" `Quick
      test_route_capacity_pressure;
    Alcotest.test_case "route placement quality" `Quick
      test_route_good_placement_uses_fewer_segments;
    Alcotest.test_case "route hand placement" `Quick test_route_hand_placement;
    Alcotest.test_case "route bad capacity" `Quick test_route_bad_capacity;
    Alcotest.test_case "deterministic" `Quick test_auto_place_deterministic;
    Alcotest.test_case "auto beats random" `Quick test_auto_beats_random;
    Alcotest.test_case "auto timing <= random" `Quick
      test_auto_place_improves_timing_vs_random;
    Alcotest.test_case "visible in floorplan" `Quick
      test_placement_visible_in_floorplan;
    Alcotest.test_case "does not fit" `Quick test_does_not_fit;
    Alcotest.test_case "wirelength none when unplaced" `Quick
      test_wirelength_none_when_unplaced ]
