  $ jhdl-netlist-tool --ip VirtexKCMMultiplier --format verilog \
  >   -p constant=9 -p multiplicand_width=4 -p product_width=8 \
  >   -p pipelined=false | head -6
  $ jhdl-netlist-tool --ip Booth 2>&1
  $ jhdl-netlist-tool --format xml 2>&1
  $ jhdl-netlist-tool -p multiplicand_width=99 2>&1
