  $ cat > bench.v <<'VEOF'
  > module tb;
  >   reg [7:0] x;
  >   wire [18:0] p;
  >   initial begin
  >     x = 8'd10;
  >     #1;
  >     $check(p, -19'd560);
  >     $display("product:", p);
  >     $finish;
  >   end
  > endmodule
  > VEOF
  $ jhdl-cosim-tool --tb bench.v -p constant=-56 -p product_width=19 \
  >   -p pipelined=false --bind x=multiplicand --bind p=product
  $ cat > bad.v <<'VEOF'
  > module tb;
  >   reg [7:0] x;
  >   wire [18:0] p;
  >   initial begin
  >     x = 8'd1;
  >     #1;
  >     $check(p, 19'd42);
  >   end
  > endmodule
  > VEOF
  $ jhdl-cosim-tool --tb bad.v -p constant=-56 -p product_width=19 \
  >   -p pipelined=false --bind x=multiplicand --bind p=product
