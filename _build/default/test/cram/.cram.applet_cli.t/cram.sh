  $ printf 'set constant = 7\nset pipelined = false\nbuild\ncycle 1\nquit\n' \
  >   | jhdl-applet-cli --tier passive | grep -E 'built|ERROR'
