The vendor server serves per-license applets with browser caching.

  $ printf 'register pat licensed\nget pat FirFilter dsl\nget pat FirFilter dsl\nlog\nquit\n' \
  >   | jhdl-ip-server | grep -vE '^server> *$'
  IP delivery server for BYU Configurable Computing Lab (type `help`)
  server> registered pat as licensed
  server> served v1; tools: generator interface, circuit estimator, schematic viewer, layout viewer, simulator, waveform viewer, netlister
  fetched 4 jar(s) in 6.98 s: JHDLBase.jar, Virtex.jar, Viewer.jar, Applet.jar
  server> served v1; tools: generator interface, circuit estimator, schematic viewer, layout viewer, simulator, waveform viewer, netlister
  fetched 0 jar(s) in 0.00 s: 
  server>   pat GET /applets/FirFilter v1 (licensed license, 4 jar(s), 7.0 s)
    pat GET /applets/FirFilter v1 (licensed license, 0 jar(s), 0.0 s)
