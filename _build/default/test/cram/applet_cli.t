The applet honours its license tier from the command line: a passive
user can build and estimate but has no simulator.

  $ printf 'set constant = 7\nset pipelined = false\nbuild\ncycle 1\nquit\n' \
  >   | jhdl-applet-cli --tier passive | grep -E 'built|ERROR'
  applet> built VirtexKCMMultiplier with multiplicand_width=8, product_width=12, signed=true, pipelined=false, constant=7
  applet> ERROR: the simulator is not included in your passive applet
