  $ printf 'register pat licensed\nget pat FirFilter dsl\nget pat FirFilter dsl\nlog\nquit\n' \
  >   | jhdl-ip-server | grep -vE '^server> *$'
