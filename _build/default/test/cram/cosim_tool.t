A Verilog testbench drives the protected KCM over the PLI wrapper.

  $ cat > bench.v <<'VEOF'
  > module tb;
  >   reg [7:0] x;
  >   wire [18:0] p;
  >   initial begin
  >     x = 8'd10;
  >     #1;
  >     $check(p, -19'd560);
  >     $display("product:", p);
  >     $finish;
  >   end
  > endmodule
  > VEOF

  $ jhdl-cosim-tool --tb bench.v -p constant=-56 -p product_width=19 \
  >   -p pipelined=false --bind x=multiplicand --bind p=product
  product: p=-560
  1/1 checks passed, 1 cycles, 8 protocol messages (652 bytes)

A failing check exits non-zero and reports expected/got.

  $ cat > bad.v <<'VEOF'
  > module tb;
  >   reg [7:0] x;
  >   wire [18:0] p;
  >   initial begin
  >     x = 8'd1;
  >     #1;
  >     $check(p, 19'd42);
  >   end
  > endmodule
  > VEOF

  $ jhdl-cosim-tool --tb bad.v -p constant=-56 -p product_width=19 \
  >   -p pipelined=false --bind x=multiplicand --bind p=product
  FAIL $check p: expected 0000000000000101010, got 1111111111111001000
  0/1 checks passed, 1 cycles, 6 protocol messages (475 bytes)
  [1]
