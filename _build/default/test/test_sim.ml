(* Simulator tests: combinational propagation, registers, memories, clock
   domains, X semantics, black boxes, watches. *)

module Bit = Jhdl_logic.Bit
module Bits = Jhdl_logic.Bits
module Wire = Jhdl_circuit.Wire
module Cell = Jhdl_circuit.Cell
module Design = Jhdl_circuit.Design
module Prim = Jhdl_circuit.Prim
module Types = Jhdl_circuit.Types
module Virtex = Jhdl_virtex.Virtex
module Simulator = Jhdl_sim.Simulator

let bits = Alcotest.testable Bits.pp Bits.equal

let b1 v = Bits.of_int ~width:1 v
let b s = Bits.of_string s

let full_adder_design () =
  let top = Cell.root ~name:"top" () in
  let a = Wire.create top ~name:"a" 1 in
  let b_ = Wire.create top ~name:"b" 1 in
  let ci = Wire.create top ~name:"ci" 1 in
  let s = Wire.create top ~name:"s" 1 in
  let co = Wire.create top ~name:"co" 1 in
  let t1 = Wire.create top ~name:"t1" 1 in
  let t2 = Wire.create top ~name:"t2" 1 in
  let t3 = Wire.create top ~name:"t3" 1 in
  let _ = Virtex.and2 top a b_ t1 in
  let _ = Virtex.and2 top a ci t2 in
  let _ = Virtex.and2 top b_ ci t3 in
  let _ = Virtex.or3 top t1 t2 t3 co in
  let _ = Virtex.xor3 top a b_ ci s in
  let d = Design.create top in
  Design.add_port d "a" Types.Input a;
  Design.add_port d "b" Types.Input b_;
  Design.add_port d "ci" Types.Input ci;
  Design.add_port d "s" Types.Output s;
  Design.add_port d "co" Types.Output co;
  d

let test_full_adder_truth_table () =
  let sim = Simulator.create (full_adder_design ()) in
  for a = 0 to 1 do
    for b_ = 0 to 1 do
      for ci = 0 to 1 do
        Simulator.set_input sim "a" (b1 a);
        Simulator.set_input sim "b" (b1 b_);
        Simulator.set_input sim "ci" (b1 ci);
        let total = a + b_ + ci in
        Alcotest.check bits
          (Printf.sprintf "s for %d%d%d" a b_ ci)
          (b1 (total land 1))
          (Simulator.get_port sim "s");
        Alcotest.check bits
          (Printf.sprintf "co for %d%d%d" a b_ ci)
          (b1 (total lsr 1))
          (Simulator.get_port sim "co")
      done
    done
  done

let test_inputs_default_x () =
  let sim = Simulator.create (full_adder_design ()) in
  Alcotest.(check bool) "s undefined before inputs" false
    (Bits.is_fully_defined (Simulator.get_port sim "s"))

let test_x_dominance_through_gates () =
  let sim = Simulator.create (full_adder_design ()) in
  Simulator.set_input sim "a" (b "0");
  Simulator.set_input sim "b" (b "0");
  (* a=0, b=0 force co=0 regardless of ci *)
  Alcotest.check bits "co defined despite x ci" (b "0")
    (Simulator.get_port sim "co");
  Alcotest.(check bool) "s still x" false
    (Bits.is_fully_defined (Simulator.get_port sim "s"))

let register_design ~ff =
  let top = Cell.root ~name:"top" () in
  let clk = Wire.create top ~name:"clk" 1 in
  let d_in = Wire.create top ~name:"d" 1 in
  let q = Wire.create top ~name:"q" 1 in
  let extra = ff top ~clk ~d:d_in ~q in
  let d = Design.create top in
  Design.add_port d "clk" Types.Input clk;
  Design.add_port d "d" Types.Input d_in;
  Design.add_port d "q" Types.Output q;
  List.iter (fun (n, w) -> Design.add_port d n Types.Input w) extra;
  (d, clk)

let test_fd_register () =
  let d, clk =
    register_design ~ff:(fun top ~clk ~d ~q ->
      let _ = Virtex.fd top ~c:clk ~d ~q () in
      [])
  in
  let sim = Simulator.create ~clock:clk d in
  Alcotest.check bits "init 0" (b "0") (Simulator.get_port sim "q");
  Simulator.set_input sim "d" (b "1");
  Alcotest.check bits "no change before edge" (b "0") (Simulator.get_port sim "q");
  Simulator.cycle sim;
  Alcotest.check bits "captured on edge" (b "1") (Simulator.get_port sim "q");
  Simulator.set_input sim "d" (b "0");
  Simulator.cycle sim;
  Alcotest.check bits "captured 0" (b "0") (Simulator.get_port sim "q")

let test_fd_init_value () =
  let d, clk =
    register_design ~ff:(fun top ~clk ~d ~q ->
      let _ = Virtex.fd top ~init:Bit.One ~c:clk ~d ~q () in
      [])
  in
  let sim = Simulator.create ~clock:clk d in
  Alcotest.check bits "init 1" (b "1") (Simulator.get_port sim "q");
  Simulator.set_input sim "d" (b "0");
  Simulator.cycle sim;
  Alcotest.check bits "captured" (b "0") (Simulator.get_port sim "q");
  Simulator.reset sim;
  Alcotest.check bits "reset restores init" (b "1") (Simulator.get_port sim "q")

let test_fde_clock_enable () =
  let d, clk =
    register_design ~ff:(fun top ~clk ~d ~q ->
      let ce = Wire.create top ~name:"ce" 1 in
      let _ = Virtex.fde top ~c:clk ~ce ~d ~q () in
      [ ("ce", ce) ])
  in
  let sim = Simulator.create ~clock:clk d in
  Simulator.set_input sim "d" (b "1");
  Simulator.set_input sim "ce" (b "0");
  Simulator.cycle sim;
  Alcotest.check bits "held while ce=0" (b "0") (Simulator.get_port sim "q");
  Simulator.set_input sim "ce" (b "1");
  Simulator.cycle sim;
  Alcotest.check bits "loads while ce=1" (b "1") (Simulator.get_port sim "q")

let test_fdce_async_clear () =
  let d, clk =
    register_design ~ff:(fun top ~clk ~d ~q ->
      let ce = Wire.create top ~name:"ce" 1 in
      let clr = Wire.create top ~name:"clr" 1 in
      let _ = Virtex.fdce top ~c:clk ~ce ~clr ~d ~q () in
      [ ("ce", ce); ("clr", clr) ])
  in
  let sim = Simulator.create ~clock:clk d in
  Simulator.set_input sim "ce" (b "1");
  Simulator.set_input sim "clr" (b "0");
  Simulator.set_input sim "d" (b "1");
  Simulator.cycle sim;
  Alcotest.check bits "loaded" (b "1") (Simulator.get_port sim "q");
  (* asynchronous: clear visible without a clock edge *)
  Simulator.set_input sim "clr" (b "1");
  Alcotest.check bits "cleared without edge" (b "0") (Simulator.get_port sim "q");
  Simulator.cycle sim;
  Alcotest.check bits "stays cleared" (b "0") (Simulator.get_port sim "q")

let test_fdre_sync_reset () =
  let d, clk =
    register_design ~ff:(fun top ~clk ~d ~q ->
      let ce = Wire.create top ~name:"ce" 1 in
      let r = Wire.create top ~name:"r" 1 in
      let _ = Virtex.fdre top ~c:clk ~ce ~r ~d ~q () in
      [ ("ce", ce); ("r", r) ])
  in
  let sim = Simulator.create ~clock:clk d in
  Simulator.set_input sim "ce" (b "1");
  Simulator.set_input sim "r" (b "0");
  Simulator.set_input sim "d" (b "1");
  Simulator.cycle sim;
  Alcotest.check bits "loaded" (b "1") (Simulator.get_port sim "q");
  Simulator.set_input sim "r" (b "1");
  Alcotest.check bits "synchronous: no change before edge" (b "1")
    (Simulator.get_port sim "q");
  Simulator.cycle sim;
  Alcotest.check bits "reset on edge" (b "0") (Simulator.get_port sim "q")

let test_shift_register_pipeline () =
  (* three FDs in a row delay the input by three cycles *)
  let top = Cell.root ~name:"top" () in
  let clk = Wire.create top ~name:"clk" 1 in
  let d_in = Wire.create top ~name:"d" 1 in
  let q1 = Wire.create top 1 and q2 = Wire.create top 1 in
  let q3 = Wire.create top ~name:"q" 1 in
  let _ = Virtex.fd top ~c:clk ~d:d_in ~q:q1 () in
  let _ = Virtex.fd top ~c:clk ~d:q1 ~q:q2 () in
  let _ = Virtex.fd top ~c:clk ~d:q2 ~q:q3 () in
  let d = Design.create top in
  Design.add_port d "clk" Types.Input clk;
  Design.add_port d "d" Types.Input d_in;
  Design.add_port d "q" Types.Output q3;
  let sim = Simulator.create ~clock:clk d in
  Simulator.set_input sim "d" (b "1");
  Simulator.cycle sim;
  Simulator.set_input sim "d" (b "0");
  Alcotest.check bits "after 1 cycle" (b "0") (Simulator.get_port sim "q");
  Simulator.cycle ~n:2 sim;
  Alcotest.check bits "pulse arrives after 3" (b "1") (Simulator.get_port sim "q");
  Simulator.cycle sim;
  Alcotest.check bits "pulse passes" (b "0") (Simulator.get_port sim "q")

let test_srl16 () =
  let top = Cell.root ~name:"top" () in
  let clk = Wire.create top ~name:"clk" 1 in
  let d_in = Wire.create top ~name:"d" 1 in
  let q = Wire.create top ~name:"q" 1 in
  let a = Wire.create top ~name:"a" 4 in
  let ce = Virtex.vcc top in
  let _ = Virtex.srl16e top ~clk ~ce ~d:d_in ~a ~q () in
  let d = Design.create top in
  Design.add_port d "clk" Types.Input clk;
  Design.add_port d "d" Types.Input d_in;
  Design.add_port d "a" Types.Input a;
  Design.add_port d "q" Types.Output q;
  let sim = Simulator.create ~clock:clk d in
  Simulator.set_input sim "a" (Bits.of_int ~width:4 3);
  (* push 1,0,0,0: after 4 cycles the 1 sits at tap 3 *)
  Simulator.set_input sim "d" (b "1");
  Simulator.cycle sim;
  Simulator.set_input sim "d" (b "0");
  Simulator.cycle ~n:3 sim;
  Alcotest.check bits "tap 3 sees the pulse" (b "1") (Simulator.get_port sim "q");
  Simulator.set_input sim "a" (Bits.of_int ~width:4 0);
  Alcotest.check bits "tap 0 is 0" (b "0") (Simulator.get_port sim "q")

let test_ram16x1s () =
  let top = Cell.root ~name:"top" () in
  let clk = Wire.create top ~name:"clk" 1 in
  let d_in = Wire.create top ~name:"d" 1 in
  let we = Wire.create top ~name:"we" 1 in
  let a = Wire.create top ~name:"a" 4 in
  let o = Wire.create top ~name:"o" 1 in
  let _ = Virtex.ram16x1s top ~wclk:clk ~we ~d:d_in ~a ~o () in
  let d = Design.create top in
  Design.add_port d "clk" Types.Input clk;
  Design.add_port d "d" Types.Input d_in;
  Design.add_port d "we" Types.Input we;
  Design.add_port d "a" Types.Input a;
  Design.add_port d "o" Types.Output o;
  let sim = Simulator.create ~clock:clk d in
  Simulator.set_input sim "a" (Bits.of_int ~width:4 5);
  Simulator.set_input sim "d" (b "1");
  Simulator.set_input sim "we" (b "1");
  Simulator.cycle sim;
  Alcotest.check bits "written and read back" (b "1") (Simulator.get_port sim "o");
  Simulator.set_input sim "we" (b "0");
  Simulator.set_input sim "a" (Bits.of_int ~width:4 2);
  Alcotest.check bits "other address still 0" (b "0") (Simulator.get_port sim "o");
  Simulator.set_input sim "a" (Bits.of_int ~width:4 5);
  Alcotest.check bits "async read, no edge needed" (b "1")
    (Simulator.get_port sim "o")

let test_ram_init () =
  let top = Cell.root ~name:"top" () in
  let clk = Wire.create top ~name:"clk" 1 in
  let a = Wire.create top ~name:"a" 4 in
  let o = Wire.create top ~name:"o" 1 in
  let gnd = Virtex.gnd top in
  let _ = Virtex.ram16x1s top ~init:0b1010 ~wclk:clk ~we:gnd ~d:gnd ~a ~o () in
  let d = Design.create top in
  Design.add_port d "clk" Types.Input clk;
  Design.add_port d "a" Types.Input a;
  Design.add_port d "o" Types.Output o;
  let sim = Simulator.create ~clock:clk d in
  Simulator.set_input sim "a" (Bits.of_int ~width:4 1);
  Alcotest.check bits "init bit 1" (b "1") (Simulator.get_port sim "o");
  Simulator.set_input sim "a" (Bits.of_int ~width:4 2);
  Alcotest.check bits "init bit 2" (b "0") (Simulator.get_port sim "o")

let test_comb_cycle_detected () =
  let top = Cell.root ~name:"top" () in
  let a = Wire.create top 1 and b_ = Wire.create top 1 in
  let _ = Virtex.inv top a b_ in
  let _ = Virtex.inv top b_ a in
  let d = Design.create top in
  Alcotest.(check bool) "raises" true
    (try ignore (Simulator.create d); false
     with Simulator.Combinational_cycle _ | Invalid_argument _ -> true)

let test_black_box_comb () =
  (* a behavioural 4-bit adder black box *)
  let top = Cell.root ~name:"top" () in
  let a = Wire.create top ~name:"a" 4 in
  let b_ = Wire.create top ~name:"b" 4 in
  let s = Wire.create top ~name:"s" 4 in
  let make_behavior () =
    { Prim.comb =
        (fun ~read -> [ ("S", Bits.add (read "A") (read "B")) ]);
      clock_edge = None;
      state_reset = None }
  in
  let _ =
    Cell.black_box top ~model_name:"ADDER4" ~make_behavior
      ~ports:[ ("A", Types.Input, a); ("B", Types.Input, b_); ("S", Types.Output, s) ]
      ()
  in
  let d = Design.create top in
  Design.add_port d "a" Types.Input a;
  Design.add_port d "b" Types.Input b_;
  Design.add_port d "s" Types.Output s;
  let sim = Simulator.create d in
  Simulator.set_input sim "a" (Bits.of_int ~width:4 9);
  Simulator.set_input sim "b" (Bits.of_int ~width:4 4);
  Alcotest.check bits "9+4" (Bits.of_int ~width:4 13) (Simulator.get_port sim "s")

let test_black_box_sequential () =
  (* a behavioural accumulator with reset support *)
  let top = Cell.root ~name:"top" () in
  let clk = Wire.create top ~name:"clk" 1 in
  let x = Wire.create top ~name:"x" 8 in
  let acc = Wire.create top ~name:"acc" 8 in
  let make_behavior () =
    let state = ref (Bits.zero 8) in
    { Prim.comb = (fun ~read:_ -> [ ("ACC", !state) ]);
      clock_edge = Some (fun ~read -> state := Bits.add !state (read "X"));
      state_reset = Some (fun () -> state := Bits.zero 8) }
  in
  let _ =
    Cell.black_box top ~model_name:"ACCUM" ~make_behavior
      ~ports:[ ("X", Types.Input, x); ("ACC", Types.Output, acc) ]
      ()
  in
  let d = Design.create top in
  Design.add_port d "clk" Types.Input clk;
  Design.add_port d "x" Types.Input x;
  Design.add_port d "acc" Types.Output acc;
  let sim = Simulator.create ~clock:clk d in
  Simulator.set_input sim "x" (Bits.of_int ~width:8 5);
  Simulator.cycle ~n:3 sim;
  Alcotest.check bits "3 * 5" (Bits.of_int ~width:8 15) (Simulator.get_port sim "acc");
  Simulator.reset sim;
  Alcotest.check bits "reset clears bb state" (Bits.zero 8)
    (Simulator.get_port sim "acc")

let test_watch_history () =
  let d, clk =
    register_design ~ff:(fun top ~clk ~d ~q ->
      let _ = Virtex.fd top ~c:clk ~d ~q () in
      [])
  in
  let sim = Simulator.create ~clock:clk d in
  (match Design.find_port (Simulator.design sim) "q" with
   | Some p -> Simulator.watch sim ~label:"q" p.Design.port_wire
   | None -> Alcotest.fail "port q missing");
  Simulator.set_input sim "d" (b "1");
  Simulator.cycle sim;
  Simulator.set_input sim "d" (b "0");
  Simulator.cycle sim;
  match Simulator.history sim with
  | [ ("q", samples) ] ->
    Alcotest.(check int) "3 samples (watch + 2 cycles)" 3 (List.length samples);
    let values = List.map (fun (_, v) -> Bits.to_string v) samples in
    Alcotest.(check (list string)) "values" [ "0"; "1"; "0" ] values
  | _ -> Alcotest.fail "expected one watch"

let test_cycle_count_and_hook () =
  let d, clk =
    register_design ~ff:(fun top ~clk ~d ~q ->
      let _ = Virtex.fd top ~c:clk ~d ~q () in
      [])
  in
  let sim = Simulator.create ~clock:clk d in
  let seen = ref [] in
  Simulator.on_cycle sim (fun n -> seen := n :: !seen);
  Simulator.set_input sim "d" (b "0");
  Simulator.cycle ~n:3 sim;
  Alcotest.(check int) "cycle count" 3 (Simulator.cycle_count sim);
  Alcotest.(check (list int)) "hook calls" [ 3; 2; 1 ] !seen;
  Simulator.reset sim;
  Alcotest.(check int) "reset zeroes count" 0 (Simulator.cycle_count sim)

let test_levels () =
  let sim = Simulator.create (full_adder_design ()) in
  Alcotest.(check int) "prim count" 5 (Simulator.prim_count sim);
  Alcotest.(check bool) "two levels of logic" true (Simulator.levels sim >= 1)

(* Property: a LUT-built 4-bit ripple adder matches Bits.add for all inputs. *)
let ripple_adder_design width =
  let top = Cell.root ~name:"top" () in
  let a = Wire.create top ~name:"a" width in
  let b_ = Wire.create top ~name:"b" width in
  let s = Wire.create top ~name:"s" width in
  let carry = Wire.create top ~name:"c" (width + 1) in
  let gnd = Virtex.gnd top in
  let _ = Virtex.buf top gnd (Wire.bit carry 0) in
  for i = 0 to width - 1 do
    let ai = Wire.bit a i and bi = Wire.bit b_ i in
    let ci = Wire.bit carry i and ci1 = Wire.bit carry (i + 1) in
    let _ = Virtex.xor3 top ai bi ci (Wire.bit s i) in
    let t1 = Wire.create top 1 and t2 = Wire.create top 1 and t3 = Wire.create top 1 in
    let _ = Virtex.and2 top ai bi t1 in
    let _ = Virtex.and2 top ai ci t2 in
    let _ = Virtex.and2 top bi ci t3 in
    let _ = Virtex.or3 top t1 t2 t3 ci1 in
    ()
  done;
  let d = Design.create top in
  Design.add_port d "a" Types.Input a;
  Design.add_port d "b" Types.Input b_;
  Design.add_port d "s" Types.Output s;
  d

let prop_ripple_adder_matches =
  let sim = lazy (Simulator.create (ripple_adder_design 6)) in
  QCheck.Test.make ~name:"gate-level ripple adder matches Bits.add" ~count:200
    QCheck.(pair (int_bound 63) (int_bound 63))
    (fun (x, y) ->
       let sim = Lazy.force sim in
       Simulator.set_input sim "a" (Bits.of_int ~width:6 x);
       Simulator.set_input sim "b" (Bits.of_int ~width:6 y);
       Simulator.get_port sim "s" |> Bits.to_int = Some ((x + y) land 63))

let suite =
  [ Alcotest.test_case "full adder truth table" `Quick test_full_adder_truth_table;
    Alcotest.test_case "inputs default to x" `Quick test_inputs_default_x;
    Alcotest.test_case "x dominance" `Quick test_x_dominance_through_gates;
    Alcotest.test_case "fd register" `Quick test_fd_register;
    Alcotest.test_case "fd init value" `Quick test_fd_init_value;
    Alcotest.test_case "fde clock enable" `Quick test_fde_clock_enable;
    Alcotest.test_case "fdce async clear" `Quick test_fdce_async_clear;
    Alcotest.test_case "fdre sync reset" `Quick test_fdre_sync_reset;
    Alcotest.test_case "shift register pipeline" `Quick test_shift_register_pipeline;
    Alcotest.test_case "srl16" `Quick test_srl16;
    Alcotest.test_case "ram16x1s" `Quick test_ram16x1s;
    Alcotest.test_case "ram init" `Quick test_ram_init;
    Alcotest.test_case "comb cycle detected" `Quick test_comb_cycle_detected;
    Alcotest.test_case "black box comb" `Quick test_black_box_comb;
    Alcotest.test_case "black box sequential" `Quick test_black_box_sequential;
    Alcotest.test_case "watch history" `Quick test_watch_history;
    Alcotest.test_case "cycle count and hook" `Quick test_cycle_count_and_hook;
    Alcotest.test_case "levels" `Quick test_levels ]
  @ List.map QCheck_alcotest.to_alcotest [ prop_ripple_adder_matches ]
