(* Distributed-arithmetic FIR tests: equivalence with the reference
   response and with the KCM-based filter. *)

module Bits = Jhdl_logic.Bits
module Wire = Jhdl_circuit.Wire
module Cell = Jhdl_circuit.Cell
module Design = Jhdl_circuit.Design
module Types = Jhdl_circuit.Types
module Simulator = Jhdl_sim.Simulator
module Estimate = Jhdl_estimate.Estimate
module Fir = Jhdl_modgen.Fir
module Dafir = Jhdl_modgen.Dafir

let bits = Alcotest.testable Bits.pp Bits.equal

let dafir_sim ~xw ~yw ~signed_mode ~coefficients =
  let top = Cell.root ~name:"top" () in
  let clk = Wire.create top ~name:"clk" 1 in
  let x = Wire.create top ~name:"x" xw in
  let y = Wire.create top ~name:"y" yw in
  let dafir = Dafir.create top ~clk ~x ~y ~signed_mode ~coefficients () in
  let d = Design.create top in
  Design.add_port d "clk" Types.Input clk;
  Design.add_port d "x" Types.Input x;
  Design.add_port d "y" Types.Output y;
  (Simulator.create ~clock:clk d, dafir)

let run sim ~xw samples =
  List.map
    (fun x ->
       Simulator.set_input sim "x" (Bits.of_int ~width:xw x);
       let y = Simulator.get_port sim "y" in
       Simulator.cycle sim;
       y)
    samples

let test_da_unsigned () =
  let coefficients = [ 3; 7; 1; 5 ] in
  let sim, dafir = dafir_sim ~xw:6 ~yw:24 ~signed_mode:false ~coefficients in
  let samples = [ 1; 0; 0; 0; 5; 63; 0; 17; 42; 9 ] in
  let got = run sim ~xw:6 samples in
  let expected =
    Fir.expected_response ~signed_mode:false ~coefficients
      ~full_width:dafir.Dafir.full_width ~out_width:24 samples
  in
  List.iteri
    (fun i (e, g) -> Alcotest.check bits (Printf.sprintf "sample %d" i) e g)
    (List.combine expected got)

let test_da_signed () =
  let coefficients = [ -2; 5; -7; 3 ] in
  let sim, dafir = dafir_sim ~xw:6 ~yw:24 ~signed_mode:true ~coefficients in
  let samples = [ 5; -3; 17; -32; 31; 0; 8; -8; 13; 2 ] in
  let got = run sim ~xw:6 samples in
  let expected =
    Fir.expected_response ~signed_mode:true ~coefficients
      ~full_width:dafir.Dafir.full_width ~out_width:24 samples
  in
  List.iteri
    (fun i (e, g) -> Alcotest.check bits (Printf.sprintf "sample %d" i) e g)
    (List.combine expected got)

let test_da_single_tap () =
  (* one tap degenerates to a constant multiplier *)
  let sim, dafir = dafir_sim ~xw:5 ~yw:16 ~signed_mode:false ~coefficients:[ 11 ] in
  let samples = [ 0; 1; 31; 16; 7 ] in
  let got = run sim ~xw:5 samples in
  let expected =
    Fir.expected_response ~signed_mode:false ~coefficients:[ 11 ]
      ~full_width:dafir.Dafir.full_width ~out_width:16 samples
  in
  List.iteri
    (fun i (e, g) -> Alcotest.check bits (Printf.sprintf "sample %d" i) e g)
    (List.combine expected got)

let test_da_rejects_bad () =
  let top = Cell.root ~name:"top" () in
  let clk = Wire.create top ~name:"clk" 1 in
  let x = Wire.create top ~name:"x" 6 in
  let y = Wire.create top ~name:"y" 20 in
  Alcotest.(check bool) "5 taps refused" true
    (try
       ignore
         (Dafir.create top ~clk ~x ~y ~signed_mode:true
            ~coefficients:[ 1; 2; 3; 4; 5 ] ());
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "negative unsigned refused" true
    (try
       ignore
         (Dafir.create top ~clk ~x ~y ~signed_mode:false
            ~coefficients:[ 1; -2 ] ());
       false
     with Invalid_argument _ -> true)

(* equivalence of the two filter architectures, output widths aligned *)
let test_da_matches_kcm_fir () =
  let coefficients = [ -1; -2; 6; -2 ] in
  let xw = 6 in
  let yw = 24 in
  let da_sim, _ = dafir_sim ~xw ~yw ~signed_mode:true ~coefficients in
  let kcm_sim =
    let top = Cell.root ~name:"top" () in
    let clk = Wire.create top ~name:"clk" 1 in
    let x = Wire.create top ~name:"x" xw in
    let y = Wire.create top ~name:"y" yw in
    let _ = Fir.create top ~clk ~x ~y ~signed_mode:true ~coefficients () in
    let d = Design.create top in
    Design.add_port d "clk" Types.Input clk;
    Design.add_port d "x" Types.Input x;
    Design.add_port d "y" Types.Output y;
    Simulator.create ~clock:clk d
  in
  let samples = List.init 16 (fun i -> ((i * 29) mod 64) - 32) in
  List.iteri
    (fun i x ->
       let xb = Bits.of_int ~width:xw x in
       Simulator.set_input da_sim "x" xb;
       Simulator.set_input kcm_sim "x" xb;
       let da_y = Simulator.get_port da_sim "y" in
       let kcm_y = Simulator.get_port kcm_sim "y" in
       (* both deliver sign-extended full values at yw = 24 > both
          accumulation widths, so the numeric values must agree *)
       Alcotest.(check (option int))
         (Printf.sprintf "architectures agree on sample %d" i)
         (Bits.to_signed_int kcm_y) (Bits.to_signed_int da_y);
       Simulator.cycle da_sim;
       Simulator.cycle kcm_sim)
    samples

let test_da_area_tradeoff () =
  (* DA area tracks input width; KCM-FIR area tracks coefficient width *)
  let coefficients = [ 3; 5; 7; 9 ] in
  let da_area xw =
    let top = Cell.root ~name:"top" () in
    let clk = Wire.create top ~name:"clk" 1 in
    let x = Wire.create top ~name:"x" xw in
    let y = Wire.create top ~name:"y" 24 in
    let _ = Dafir.create top ~clk ~x ~y ~signed_mode:false ~coefficients () in
    (Estimate.area_of_cell top).Estimate.area.Jhdl_virtex.Virtex.luts
  in
  Alcotest.(check bool) "wider input, more DA LUTs" true
    (da_area 12 > da_area 4)

let suite =
  [ Alcotest.test_case "da unsigned" `Quick test_da_unsigned;
    Alcotest.test_case "da signed" `Quick test_da_signed;
    Alcotest.test_case "da single tap" `Quick test_da_single_tap;
    Alcotest.test_case "da rejects bad" `Quick test_da_rejects_bad;
    Alcotest.test_case "da matches kcm fir" `Quick test_da_matches_kcm_fir;
    Alcotest.test_case "da area tradeoff" `Quick test_da_area_tradeoff ]
