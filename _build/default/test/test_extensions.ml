(* Tests for the extension subsystems: the XNF user-defined format, the
   EDIF reader (structural parse-back verification of the writer), the
   Verilog-testbench PLI wrapper, the multi-IP applet suite, and the
   JBits-style bitstream delivery substrate. *)

module Bits = Jhdl_logic.Bits
module Lut_init = Jhdl_logic.Lut_init
module Wire = Jhdl_circuit.Wire
module Cell = Jhdl_circuit.Cell
module Design = Jhdl_circuit.Design
module Types = Jhdl_circuit.Types
module Prim = Jhdl_circuit.Prim
module Virtex = Jhdl_virtex.Virtex
module Simulator = Jhdl_sim.Simulator
module Model = Jhdl_netlist.Model
module Edif = Jhdl_netlist.Edif
module Edif_reader = Jhdl_netlist.Edif_reader
module Xnf = Jhdl_netlist.Xnf
module Kcm = Jhdl_modgen.Kcm
module Network = Jhdl_netproto.Network
module Endpoint = Jhdl_netproto.Endpoint
module Cosim = Jhdl_netproto.Cosim
module Verilog_tb = Jhdl_netproto.Verilog_tb
module Suite = Jhdl_applet.Suite
module Applet = Jhdl_applet.Applet
module Catalog = Jhdl_applet.Catalog
module License = Jhdl_applet.License
module Config_mem = Jhdl_bitstream.Config_mem
module Jbits = Jhdl_bitstream.Jbits

let contains ~needle haystack =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  go 0

let kcm_design ?(pipelined = false) ~constant () =
  let top = Cell.root ~name:"kcm_top" () in
  let clk = Wire.create top ~name:"clk" 1 in
  let m = Wire.create top ~name:"multiplicand" 8 in
  let p = Wire.create top ~name:"product" 19 in
  let _ =
    Kcm.create top ~clk ~multiplicand:m ~product:p ~signed_mode:true
      ~pipelined_mode:pipelined ~constant ()
  in
  let d = Design.create top in
  Design.add_port d "clk" Types.Input clk;
  Design.add_port d "multiplicand" Types.Input m;
  Design.add_port d "product" Types.Output p;
  d

(* {1 XNF} *)

let test_xnf_output () =
  let xnf = Xnf.of_design (kcm_design ~constant:(-56) ()) in
  Alcotest.(check bool) "header" true (contains ~needle:"LCANET, 6" xnf);
  Alcotest.(check bool) "symbols" true (contains ~needle:"SYM, " xnf);
  Alcotest.(check bool) "init params" true (contains ~needle:"INIT=" xnf);
  Alcotest.(check bool) "pins" true (contains ~needle:"PIN, O, O, " xnf);
  Alcotest.(check bool) "external pads" true (contains ~needle:"EXT, " xnf);
  Alcotest.(check bool) "bus pad naming" true
    (contains ~needle:"multiplicand<0>" xnf);
  Alcotest.(check bool) "terminated" true (contains ~needle:"EOF" xnf)

let test_xnf_symbol_count () =
  let d = kcm_design ~constant:7 () in
  let m = Model.of_design d in
  let xnf = Xnf.to_string m in
  let count needle =
    let rec go i acc =
      if i + String.length needle > String.length xnf then acc
      else if String.sub xnf i (String.length needle) = needle then
        go (i + 1) (acc + 1)
      else go (i + 1) acc
    in
    go 0 0
  in
  Alcotest.(check int) "one SYM per instance" (Model.instance_count m)
    (count "SYM, ")

(* {1 EDIF reader: parse-back verification} *)

let test_edif_parse_back () =
  let d = kcm_design ~constant:(-56) () in
  let m = Model.of_design d in
  let edif = Edif.to_string m in
  match Edif_reader.read edif with
  | Error message -> Alcotest.failf "parse-back failed: %s" message
  | Ok summary ->
    Alcotest.(check string) "design name" "kcm_top"
      summary.Edif_reader.design_name;
    Alcotest.(check int) "instance count survives"
      (Model.instance_count m)
      summary.Edif_reader.instance_count;
    Alcotest.(check int) "net count survives" (Model.net_count m)
      summary.Edif_reader.net_count;
    Alcotest.(check int) "3 external ports" 3 summary.Edif_reader.port_count;
    Alcotest.(check bool) "LUT4 declared" true
      (List.mem "LUT4" summary.Edif_reader.library_cells);
    Alcotest.(check bool) "INITs recovered" true
      (List.length summary.Edif_reader.init_properties > 10)

let test_edif_reader_rejects_garbage () =
  Alcotest.(check bool) "unbalanced" true
    (Result.is_error (Edif_reader.parse "(edif foo"));
  Alcotest.(check bool) "trailing" true
    (Result.is_error (Edif_reader.parse "(a) b"));
  Alcotest.(check bool) "not edif" true
    (Result.is_error (Edif_reader.read "(library x)"))

let test_edif_reader_sexp () =
  match Edif_reader.parse "(a (b \"c d\") 42)" with
  | Ok (Edif_reader.List
          [ Edif_reader.Atom "a";
            Edif_reader.List [ Edif_reader.Atom "b"; Edif_reader.Atom "c d" ];
            Edif_reader.Atom "42" ]) -> ()
  | Ok _ -> Alcotest.fail "wrong shape"
  | Error m -> Alcotest.fail m

(* property: writer/reader agree on instance count for random small designs *)
let prop_edif_roundtrip_counts =
  QCheck.Test.make ~name:"edif parse-back preserves instance count" ~count:40
    QCheck.(int_range 1 12)
    (fun gates ->
       let top = Cell.root ~name:"rand" () in
       let a = Wire.create top ~name:"a" 1 in
       let b = Wire.create top ~name:"b" 1 in
       let prev = ref a in
       for i = 0 to gates - 1 do
         let o = Wire.create top ~name:(Printf.sprintf "o%d" i) 1 in
         let _ = Virtex.xor2 top !prev b o in
         prev := o
       done;
       let d = Design.create top in
       Design.add_port d "a" Types.Input a;
       Design.add_port d "b" Types.Input b;
       Design.add_port d "o" Types.Output !prev;
       match Edif_reader.read (Edif.of_design d) with
       | Ok summary -> summary.Edif_reader.instance_count = gates
       | Error _ -> false)

(* {1 Verilog testbench wrapper} *)

let kcm_cosim () =
  let d = kcm_design ~constant:(-56) () in
  let clk =
    match Design.find_port d "clk" with
    | Some p -> p.Design.port_wire
    | None -> assert false
  in
  let endpoint =
    Endpoint.of_simulator ~name:"kcm" (Simulator.create ~clock:clk d)
  in
  let cosim = Cosim.create () in
  Cosim.attach cosim endpoint Network.loopback;
  cosim

let kcm_bindings =
  [ { Verilog_tb.signal = "x"; box = "kcm"; port = "multiplicand" };
    { Verilog_tb.signal = "p"; box = "kcm"; port = "product" } ]

let tb_source =
  {|
// PLI wrapper testbench: drive the protected KCM black box
module tb;
  reg [7:0] x;
  wire [18:0] p;

  initial begin
    x = 8'd100;
    #1;
    $display("negative six thousand", p);
    $check(p, -19'd5600);
    x = -8'sd3;
    #1;
    $check(p, 19'd168);
    $finish;
  end
endmodule
|}

let test_tb_parse () =
  match Verilog_tb.parse tb_source with
  | Error message -> Alcotest.fail message
  | Ok program ->
    Alcotest.(check (list (triple string int bool)))
      "declarations"
      [ ("x", 8, true); ("p", 19, false) ]
      (Verilog_tb.signals program)

let test_tb_run_against_blackbox () =
  match Verilog_tb.parse tb_source with
  | Error message -> Alcotest.fail message
  | Ok program ->
    let result =
      Verilog_tb.run program ~cosim:(kcm_cosim ()) ~bindings:kcm_bindings
    in
    Alcotest.(check bool) "finished" true result.Verilog_tb.finished;
    Alcotest.(check int) "two cycles" 2 result.Verilog_tb.cycles_run;
    Alcotest.(check int) "two checks" 2 (List.length result.Verilog_tb.checks);
    List.iter
      (fun c ->
         Alcotest.(check bool)
           (Printf.sprintf "check on %s (got %s)" c.Verilog_tb.check_signal
              (Bits.to_string c.Verilog_tb.actual))
           true c.Verilog_tb.passed)
      result.Verilog_tb.checks;
    (match result.Verilog_tb.transcript with
     | [ line ] ->
       Alcotest.(check bool) "display shows signed value" true
         (contains ~needle:"p=-5600" line)
     | _ -> Alcotest.fail "expected one $display line")

let test_tb_parse_errors () =
  let bad source expect =
    match Verilog_tb.parse source with
    | Ok _ -> Alcotest.failf "should reject: %s" expect
    | Error message ->
      Alcotest.(check bool)
        (Printf.sprintf "error mentions %s (got %s)" expect message)
        true
        (contains ~needle:expect message)
  in
  bad "module tb; initial begin always; end endmodule" "expected";
  bad "module tb; initial begin @; end endmodule" "unsupported";
  bad "module tb; reg [3:1] x; initial begin end endmodule" "lsb";
  bad "module tb; initial begin $monitor(x); end endmodule" "monitor"

let test_tb_failed_check_reported () =
  let source =
    {|module tb;
  reg [7:0] x;
  wire [18:0] p;
  initial begin
    x = 8'd1;
    #1;
    $check(p, 19'd12345);
  end
endmodule|}
  in
  match Verilog_tb.parse source with
  | Error message -> Alcotest.fail message
  | Ok program ->
    let result =
      Verilog_tb.run program ~cosim:(kcm_cosim ()) ~bindings:kcm_bindings
    in
    (match result.Verilog_tb.checks with
     | [ c ] -> Alcotest.(check bool) "check failed as expected" false c.Verilog_tb.passed
     | _ -> Alcotest.fail "expected one check");
    Alcotest.(check bool) "did not reach $finish" false
      result.Verilog_tb.finished

let test_tb_unbound_signal () =
  let source =
    "module tb; reg [7:0] x; initial begin x = 8'd1; end endmodule"
  in
  match Verilog_tb.parse source with
  | Error message -> Alcotest.fail message
  | Ok program ->
    Alcotest.(check bool) "unbound raises" true
      (try
         ignore (Verilog_tb.run program ~cosim:(kcm_cosim ()) ~bindings:[]);
         false
       with Invalid_argument _ -> true)

(* {1 multi-IP suite} *)

let test_suite_select_and_run () =
  let suite =
    Suite.create ~ips:Catalog.all
      ~license:(License.of_tier License.Licensed) ~user:"multi" ()
  in
  Alcotest.(check string) "first selected" "VirtexKCMMultiplier"
    (Suite.selected suite).Jhdl_applet.Ip_module.ip_name;
  (match Suite.exec suite (Suite.Select "FirFilter") with
   | Ok _ -> ()
   | Error m -> Alcotest.fail m);
  (match Suite.exec suite (Suite.Ip_command Applet.Build) with
   | Ok text -> Alcotest.(check bool) "built the fir" true (contains ~needle:"FirFilter" text)
   | Error m -> Alcotest.fail m);
  match Suite.exec suite Suite.List_ips with
  | Ok text ->
    Alcotest.(check bool) "lists all three" true
      (contains ~needle:"UpCounter" text
       && contains ~needle:"VirtexKCMMultiplier" text)
  | Error m -> Alcotest.fail m

let test_suite_shared_meter () =
  (* passive tier caps builds at 20 across the whole suite *)
  let suite =
    Suite.create
      ~ips:[ Catalog.kcm; Catalog.counter ]
      ~license:(License.of_tier License.Passive) ~user:"multi" ()
  in
  for _ = 1 to 10 do
    match Suite.exec suite (Suite.Ip_command Applet.Build) with
    | Ok _ -> ()
    | Error m -> Alcotest.fail m
  done;
  (match Suite.exec suite (Suite.Select "UpCounter") with
   | Ok _ -> ()
   | Error m -> Alcotest.fail m);
  for _ = 1 to 10 do
    match Suite.exec suite (Suite.Ip_command Applet.Build) with
    | Ok _ -> ()
    | Error m -> Alcotest.fail m
  done;
  match Suite.exec suite (Suite.Ip_command Applet.Build) with
  | Error message ->
    Alcotest.(check bool) "cap shared across IPs" true
      (contains ~needle:"limit" message)
  | Ok _ -> Alcotest.fail "21st build should be refused"

let test_suite_bad_select () =
  let suite =
    Suite.create ~ips:[ Catalog.kcm ]
      ~license:(License.of_tier License.Vendor) ~user:"multi" ()
  in
  match Suite.exec suite (Suite.Select "Cordic") with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "should refuse unknown IP"

(* {1 bitstream / JBits} *)

let test_configure_and_readback () =
  let d = kcm_design ~constant:(-56) () in
  let config = Config_mem.create ~rows:32 ~cols:16 in
  let slices = Config_mem.configure config d in
  Alcotest.(check bool) "placed something" true (slices > 30);
  let luts = Config_mem.readback_luts config in
  let design_luts =
    Design.all_prims d
    |> List.filter (fun c ->
      match Cell.prim_of c with
      | Some (Prim.Lut _) | Some (Prim.Inv) -> true
      | Some _ | None -> false)
  in
  Alcotest.(check int) "every LUT configured" (List.length design_luts)
    (List.length luts)

let test_readback_recovers_inits () =
  (* a design with one distinctive LUT INIT must surface in readback *)
  let top = Cell.root ~name:"top" () in
  let a = Wire.create top ~name:"a" 4 in
  let o = Wire.create top ~name:"o" 1 in
  let init = Lut_init.of_hex ~inputs:4 "CAFE" in
  let _ = Virtex.lut4 top ~init (Wire.bit a 0) (Wire.bit a 1) (Wire.bit a 2) (Wire.bit a 3) o in
  let d = Design.create top in
  Design.add_port d "a" Types.Input a;
  Design.add_port d "o" Types.Output o;
  let config = Config_mem.create ~rows:4 ~cols:4 in
  let _ = Config_mem.configure config d in
  Alcotest.(check bool) "CAFE recovered" true
    (List.exists
       (fun (_, _, _, recovered) -> Lut_init.to_hex recovered = "CAFE")
       (Config_mem.readback_luts config))

let test_too_small_device () =
  let d = kcm_design ~constant:(-56) () in
  let config = Config_mem.create ~rows:2 ~cols:2 in
  Alcotest.(check bool) "does not fit" true
    (try ignore (Config_mem.configure config d); false
     with Invalid_argument _ -> true)

let test_partial_reconfiguration () =
  let base = Config_mem.create ~rows:32 ~cols:16 in
  let target = Config_mem.copy base in
  let d = kcm_design ~constant:(-56) () in
  let _ = Config_mem.configure target d in
  let delta = Config_mem.diff ~base ~target in
  Alcotest.(check bool) "touches a strict subset of columns" true
    (List.length delta < Config_mem.cols target);
  Config_mem.apply base delta;
  Alcotest.(check bool) "apply reproduces target" true
    (Config_mem.equal base target)

let test_jbits_delivery_roundtrip () =
  let d = kcm_design ~constant:(-56) () in
  let p = Jbits.package ~device_rows:32 ~device_cols:16 d in
  Alcotest.(check bool) "payload smaller than full bitstream" true
    (p.Jbits.payload_bytes
     < Config_mem.total_bytes (Config_mem.create ~rows:32 ~cols:16));
  let customer = Config_mem.create ~rows:32 ~cols:16 in
  Jbits.install ~into:customer p;
  let vendor_side = Config_mem.create ~rows:32 ~cols:16 in
  let _ = Config_mem.configure vendor_side d in
  Alcotest.(check bool) "customer config matches vendor's" true
    (Config_mem.equal customer vendor_side)

let test_jbits_geometry_check () =
  let d = kcm_design ~constant:7 () in
  let p = Jbits.package ~device_rows:32 ~device_cols:16 d in
  let wrong = Config_mem.create ~rows:16 ~cols:16 in
  Alcotest.(check bool) "geometry mismatch raises" true
    (try Jbits.install ~into:wrong p; false
     with Invalid_argument _ -> true)

let test_visibility_table () =
  let d = kcm_design ~constant:(-56) () in
  let p = Jbits.package ~device_rows:32 ~device_cols:16 d in
  let edif_bytes = String.length (Edif.of_design d) in
  let table =
    Format.asprintf "%a" Jbits.pp_visibility_table
      [ Jbits.visibility_of_netlist ~bytes:edif_bytes;
        Jbits.visibility_of_package p;
        Jbits.visibility_of_applet ~bytes:16009 ]
  in
  Alcotest.(check bool) "netlist row shows everything" true
    (contains ~needle:"structural netlist" table);
  Alcotest.(check bool) "jbits row present" true
    (contains ~needle:"JBits" table)

let test_bitstream_determinism () =
  let build () =
    let config = Config_mem.create ~rows:32 ~cols:16 in
    let _ = Config_mem.configure config (kcm_design ~constant:(-56) ()) in
    config
  in
  Alcotest.(check bool) "same design, same bits" true
    (Config_mem.equal (build ()) (build ()))

let suite =
  [ Alcotest.test_case "xnf output" `Quick test_xnf_output;
    Alcotest.test_case "xnf symbol count" `Quick test_xnf_symbol_count;
    Alcotest.test_case "edif parse-back" `Quick test_edif_parse_back;
    Alcotest.test_case "edif reader rejects garbage" `Quick
      test_edif_reader_rejects_garbage;
    Alcotest.test_case "edif reader sexp" `Quick test_edif_reader_sexp;
    Alcotest.test_case "tb parse" `Quick test_tb_parse;
    Alcotest.test_case "tb run against black box" `Quick
      test_tb_run_against_blackbox;
    Alcotest.test_case "tb parse errors" `Quick test_tb_parse_errors;
    Alcotest.test_case "tb failed check" `Quick test_tb_failed_check_reported;
    Alcotest.test_case "tb unbound signal" `Quick test_tb_unbound_signal;
    Alcotest.test_case "suite select and run" `Quick test_suite_select_and_run;
    Alcotest.test_case "suite shared meter" `Quick test_suite_shared_meter;
    Alcotest.test_case "suite bad select" `Quick test_suite_bad_select;
    Alcotest.test_case "configure and readback" `Quick
      test_configure_and_readback;
    Alcotest.test_case "readback recovers inits" `Quick
      test_readback_recovers_inits;
    Alcotest.test_case "too small device" `Quick test_too_small_device;
    Alcotest.test_case "partial reconfiguration" `Quick
      test_partial_reconfiguration;
    Alcotest.test_case "jbits delivery roundtrip" `Quick
      test_jbits_delivery_roundtrip;
    Alcotest.test_case "jbits geometry check" `Quick test_jbits_geometry_check;
    Alcotest.test_case "visibility table" `Quick test_visibility_table;
    Alcotest.test_case "bitstream determinism" `Quick test_bitstream_determinism ]
  @ List.map QCheck_alcotest.to_alcotest [ prop_edif_roundtrip_counts ]
