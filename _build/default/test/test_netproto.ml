(* Network-protocol tests: wire format, endpoints, black-box
   co-simulation against the monolithic simulator, and the Figure 4 /
   C1 cost model's shape. *)

module Bits = Jhdl_logic.Bits
module Wire = Jhdl_circuit.Wire
module Cell = Jhdl_circuit.Cell
module Design = Jhdl_circuit.Design
module Types = Jhdl_circuit.Types
module Simulator = Jhdl_sim.Simulator
module Network = Jhdl_netproto.Network
module Protocol = Jhdl_netproto.Protocol
module Endpoint = Jhdl_netproto.Endpoint
module Cosim = Jhdl_netproto.Cosim
module Kcm = Jhdl_modgen.Kcm
module Counter = Jhdl_modgen.Counter

let bits = Alcotest.testable Bits.pp Bits.equal

(* {1 protocol} *)

let roundtrip message =
  match Protocol.decode (Protocol.encode message) with
  | Ok decoded -> decoded
  | Error reason -> Alcotest.failf "decode failed: %s" reason

let test_protocol_roundtrips () =
  let messages =
    [ Protocol.Set_inputs [ ("a", Bits.of_string "1x0z"); ("clk", Bits.of_string "1") ];
      Protocol.Cycle 1;
      Protocol.Cycle 1_000_000;
      Protocol.Reset;
      Protocol.Get_outputs [ "p"; "q" ];
      Protocol.Outputs_are [ ("p", Bits.of_string "0101") ];
      Protocol.Ack;
      Protocol.Protocol_error "no such port" ]
  in
  List.iter
    (fun m ->
       let back = roundtrip m in
       Alcotest.(check string)
         (Format.asprintf "%a" Protocol.pp m)
         (Format.asprintf "%a" Protocol.pp m)
         (Format.asprintf "%a" Protocol.pp back))
    messages

let test_protocol_rejects_garbage () =
  Alcotest.(check bool) "empty" true (Result.is_error (Protocol.decode ""));
  Alcotest.(check bool) "unknown tag" true (Result.is_error (Protocol.decode "Z"));
  Alcotest.(check bool) "truncated" true
    (Result.is_error (Protocol.decode "I\x00\x02"));
  Alcotest.(check bool) "trailing" true
    (Result.is_error (Protocol.decode (Protocol.encode Protocol.Ack ^ "x")))

let test_protocol_sizes () =
  Alcotest.(check int) "ack is one byte" 1 (Protocol.size Protocol.Ack);
  Alcotest.(check bool) "inputs scale with payload" true
    (Protocol.size (Protocol.Set_inputs [ ("a", Bits.zero 64) ])
     > Protocol.size (Protocol.Set_inputs [ ("a", Bits.zero 8) ]))

let prop_protocol_roundtrip =
  let gen =
    QCheck.Gen.(
      let name = string_size ~gen:(char_range 'a' 'z') (int_range 1 8) in
      let value =
        map
          (fun (w, k) -> Bits.of_int ~width:w k)
          (pair (int_range 1 24) (int_bound 0xFFFF))
      in
      oneof
        [ map (fun pairs -> Protocol.Set_inputs pairs)
            (small_list (pair name value));
          map (fun n -> Protocol.Cycle n) (int_bound 1000000);
          return Protocol.Reset;
          map (fun names -> Protocol.Get_outputs names) (small_list name);
          map (fun pairs -> Protocol.Outputs_are pairs)
            (small_list (pair name value));
          return Protocol.Ack;
          map (fun s -> Protocol.Protocol_error s) name ])
  in
  QCheck.Test.make ~name:"protocol encode/decode roundtrip" ~count:500
    (QCheck.make ~print:(Format.asprintf "%a" Protocol.pp) gen)
    (fun m ->
       match Protocol.decode (Protocol.encode m) with
       | Ok back ->
         Format.asprintf "%a" Protocol.pp back = Format.asprintf "%a" Protocol.pp m
       | Error _ -> false)

(* {1 network model} *)

let test_network_accounting () =
  let channel = Network.create (Network.with_rtt Network.lan 0.010) in
  Network.send channel ~bytes:100;
  Network.send channel ~bytes:100;
  Alcotest.(check int) "two messages" 2 (Network.messages channel);
  Alcotest.(check bool) "latency dominates small messages" true
    (Network.elapsed_seconds channel > 0.0099);
  let before = Network.elapsed_seconds channel in
  Network.add_compute channel 1.0;
  Alcotest.(check bool) "compute added" true
    (Network.elapsed_seconds channel -. before >= 1.0)

let test_network_bandwidth_term () =
  let fast = Network.create Network.lan in
  let slow = Network.create Network.modem in
  Network.send fast ~bytes:100_000;
  Network.send slow ~bytes:100_000;
  Alcotest.(check bool) "modem slower" true
    (Network.elapsed_seconds slow > Network.elapsed_seconds fast)

(* {1 endpoints and cosim} *)

let kcm_design ~constant =
  let top = Cell.root ~name:"kcm_top" () in
  let clk = Wire.create top ~name:"clk" 1 in
  let m = Wire.create top ~name:"multiplicand" 8 in
  let p = Wire.create top ~name:"product" 19 in
  let kcm =
    Kcm.create top ~clk ~multiplicand:m ~product:p ~signed_mode:true
      ~pipelined_mode:false ~constant ()
  in
  let d = Design.create top in
  Design.add_port d "clk" Types.Input clk;
  Design.add_port d "multiplicand" Types.Input m;
  Design.add_port d "product" Types.Output p;
  (d, kcm)

let kcm_endpoint ~constant =
  let d, kcm = kcm_design ~constant in
  let clk =
    match Design.find_port d "clk" with
    | Some p -> p.Design.port_wire
    | None -> assert false
  in
  (Endpoint.of_simulator ~name:"kcm" (Simulator.create ~clock:clk d), kcm)

let test_endpoint_handles_messages () =
  let endpoint, kcm = kcm_endpoint ~constant:(-56) in
  ignore kcm;
  (match
     Endpoint.handle endpoint
       (Protocol.Set_inputs [ ("multiplicand", Bits.of_int ~width:8 100) ])
   with
   | Protocol.Ack -> ()
   | _ -> Alcotest.fail "expected ack");
  match Endpoint.handle endpoint (Protocol.Get_outputs [ "product" ]) with
  | Protocol.Outputs_are [ ("product", v) ] ->
    Alcotest.(check (option int)) "-56*100" (Some (-5600)) (Bits.to_signed_int v)
  | _ -> Alcotest.fail "expected outputs"

let test_endpoint_bad_port () =
  let endpoint, _ = kcm_endpoint ~constant:7 in
  match Endpoint.handle endpoint (Protocol.Get_outputs [ "bogus" ]) with
  | Protocol.Protocol_error _ -> ()
  | _ -> Alcotest.fail "expected protocol error"

let test_endpoint_reset () =
  let top = Cell.root ~name:"top" () in
  let clk = Wire.create top ~name:"clk" 1 in
  let q = Wire.create top ~name:"q" 4 in
  let _ = Counter.up_counter top ~clk ~q () in
  let d = Design.create top in
  Design.add_port d "clk" Types.Input clk;
  Design.add_port d "q" Types.Output q;
  let endpoint =
    Endpoint.of_simulator ~name:"counter"
      (Simulator.create
         ~clock:(match Design.find_port d "clk" with
                 | Some p -> p.Design.port_wire
                 | None -> assert false)
         d)
  in
  let _ = Endpoint.handle endpoint (Protocol.Cycle 5) in
  let _ = Endpoint.handle endpoint Protocol.Reset in
  match Endpoint.handle endpoint (Protocol.Get_outputs [ "q" ]) with
  | Protocol.Outputs_are [ (_, v) ] ->
    Alcotest.check bits "back to zero" (Bits.zero 4) v
  | _ -> Alcotest.fail "expected outputs"

(* black-box co-simulation must agree with direct simulation *)
let test_cosim_matches_monolithic () =
  let endpoint, _ = kcm_endpoint ~constant:(-56) in
  let cosim = Cosim.create () in
  Cosim.attach cosim endpoint Network.campus;
  let direct_design, _ = kcm_design ~constant:(-56) in
  let direct = Simulator.create direct_design in
  List.iter
    (fun x ->
       let xb = Bits.of_int ~width:8 x in
       Cosim.set_inputs cosim ~box:"kcm" [ ("multiplicand", xb) ];
       Simulator.set_input direct "multiplicand" xb;
       let remote = Cosim.get_output cosim ~box:"kcm" "product" in
       Alcotest.check bits
         (Printf.sprintf "agree on %d" x)
         (Simulator.get_port direct "product")
         remote;
       Cosim.cycle cosim;
       Simulator.cycle direct)
    [ 0; 1; -1; 100; -100; 127; -128 ];
  Alcotest.(check bool) "traffic recorded" true (Cosim.total_messages cosim > 20)

let test_cosim_duplicate_names_rejected () =
  let e1, _ = kcm_endpoint ~constant:1 in
  let e2, _ = kcm_endpoint ~constant:2 in
  let cosim = Cosim.create () in
  Cosim.attach cosim e1 Network.loopback;
  Alcotest.(check bool) "duplicate refused" true
    (try Cosim.attach cosim e2 Network.loopback; false
     with Invalid_argument _ -> true)

(* {1 architecture cost model (claim C1)} *)

let session_cost ~arch ~rtt =
  let endpoint, _ = kcm_endpoint ~constant:(-56) in
  Cosim.simulation_cost ~arch ~network:(Network.with_rtt Network.campus rtt)
    ~endpoint ~cycles:100
    ~drive:(fun i -> [ ("multiplicand", Bits.of_int ~width:8 (i land 0x7F)) ])
    ~observe:[ "product" ] ()

let test_local_beats_remote () =
  let rtt = 0.020 in
  let local = session_cost ~arch:Cosim.Local_applet ~rtt in
  let webcad = session_cost ~arch:Cosim.Webcad ~rtt in
  let javacad = session_cost ~arch:Cosim.Javacad ~rtt in
  Alcotest.(check bool) "local is fastest" true
    (local.Cosim.wall_seconds < webcad.Cosim.wall_seconds
     && local.Cosim.wall_seconds < javacad.Cosim.wall_seconds);
  Alcotest.(check bool) "rmi overhead costs more than raw sockets" true
    (javacad.Cosim.byte_count > webcad.Cosim.byte_count)

let test_remote_scales_with_rtt () =
  let webcad_slow = session_cost ~arch:Cosim.Webcad ~rtt:0.100 in
  let webcad_fast = session_cost ~arch:Cosim.Webcad ~rtt:0.001 in
  let local_slow = session_cost ~arch:Cosim.Local_applet ~rtt:0.100 in
  let local_fast = session_cost ~arch:Cosim.Local_applet ~rtt:0.001 in
  Alcotest.(check bool) "webcad grows with rtt" true
    (webcad_slow.Cosim.wall_seconds > 10.0 *. webcad_fast.Cosim.wall_seconds);
  Alcotest.(check bool) "local is rtt-independent" true
    (abs_float (local_slow.Cosim.wall_seconds -. local_fast.Cosim.wall_seconds)
     < 1e-9)

let test_outputs_functionally_identical_across_archs () =
  let collect arch =
    let acc = ref [] in
    let _ =
      let endpoint, _ = kcm_endpoint ~constant:(-56) in
      Cosim.simulation_cost ~arch ~network:Network.campus ~endpoint ~cycles:10
        ~drive:(fun i -> [ ("multiplicand", Bits.of_int ~width:8 (i * 11)) ])
        ~observe:[ "product" ]
        ~on_outputs:(fun _ pairs -> acc := pairs :: !acc)
        ()
    in
    List.rev !acc
  in
  let local = collect Cosim.Local_applet in
  let webcad = collect Cosim.Webcad in
  Alcotest.(check int) "same sample count" (List.length local) (List.length webcad);
  List.iter2
    (fun a b ->
       match a, b with
       | [ (_, va) ], [ (_, vb) ] -> Alcotest.check bits "same value" va vb
       | _ -> Alcotest.fail "unexpected shape")
    local webcad

(* fuzz: arbitrary bytes never crash the decoder *)
let prop_decode_fuzz =
  QCheck.Test.make ~name:"decoder is total on arbitrary bytes" ~count:500
    QCheck.(string_gen_of_size (QCheck.Gen.int_range 0 64) QCheck.Gen.char)
    (fun junk ->
       match Protocol.decode junk with
       | Ok _ | Error _ -> true)

let suite =
  [ Alcotest.test_case "protocol roundtrips" `Quick test_protocol_roundtrips;
    Alcotest.test_case "protocol rejects garbage" `Quick
      test_protocol_rejects_garbage;
    Alcotest.test_case "protocol sizes" `Quick test_protocol_sizes;
    Alcotest.test_case "network accounting" `Quick test_network_accounting;
    Alcotest.test_case "network bandwidth term" `Quick
      test_network_bandwidth_term;
    Alcotest.test_case "endpoint handles messages" `Quick
      test_endpoint_handles_messages;
    Alcotest.test_case "endpoint bad port" `Quick test_endpoint_bad_port;
    Alcotest.test_case "endpoint reset" `Quick test_endpoint_reset;
    Alcotest.test_case "cosim matches monolithic" `Quick
      test_cosim_matches_monolithic;
    Alcotest.test_case "cosim duplicate names" `Quick
      test_cosim_duplicate_names_rejected;
    Alcotest.test_case "local beats remote" `Quick test_local_beats_remote;
    Alcotest.test_case "remote scales with rtt" `Quick test_remote_scales_with_rtt;
    Alcotest.test_case "outputs identical across archs" `Quick
      test_outputs_functionally_identical_across_archs ]
  @ List.map QCheck_alcotest.to_alcotest
      [ prop_protocol_roundtrip; prop_decode_fuzz ]
