(* End-to-end integration: the complete vendor -> customer lifecycle,
   crossing every subsystem in one scenario.

   Vendor publishes the catalog on a server; an evaluating customer
   browses and black-box simulates; a licensed customer downloads
   (encrypted), builds, runs the vendor's shipped testbench, exports a
   watermarked netlist, parse-backs the EDIF, integrates the IP next to
   local logic, and finally receives the same core as a JBits partial
   bitstream that matches the netlist delivery LUT-for-LUT. *)

module Bits = Jhdl_logic.Bits
module Lut_init = Jhdl_logic.Lut_init
module Wire = Jhdl_circuit.Wire
module Cell = Jhdl_circuit.Cell
module Design = Jhdl_circuit.Design
module Types = Jhdl_circuit.Types
module Prim = Jhdl_circuit.Prim
module Simulator = Jhdl_sim.Simulator
module Testbench = Jhdl_sim.Testbench
module Edif_reader = Jhdl_netlist.Edif_reader
module Model = Jhdl_netlist.Model
module Kcm = Jhdl_modgen.Kcm
module Server = Jhdl_webserver.Server
module Secure_channel = Jhdl_webserver.Secure_channel
module Applet = Jhdl_applet.Applet
module Catalog = Jhdl_applet.Catalog
module License = Jhdl_applet.License
module Ip_module = Jhdl_applet.Ip_module
module Watermark = Jhdl_security.Watermark
module Network = Jhdl_netproto.Network
module Endpoint = Jhdl_netproto.Endpoint
module Cosim = Jhdl_netproto.Cosim
module Config_mem = Jhdl_bitstream.Config_mem
module Jbits = Jhdl_bitstream.Jbits
module Download = Jhdl_bundle.Download

let ok = function
  | Ok v -> v
  | Error message -> Alcotest.failf "unexpected error: %s" message

let test_full_lifecycle () =
  (* 1. vendor stands up the server *)
  let server = Server.create ~vendor:"BYU Configurable Computing Lab" () in
  List.iter (fun ip -> ignore (Server.publish server ip)) Catalog.all;
  Server.register_user server ~user:"eve" ~tier:License.Evaluator;
  Server.register_user server ~user:"pat" ~tier:License.Licensed;

  (* 2. evaluator browses, builds and black-box simulates; cannot export *)
  let eve_session =
    ok (Server.request server ~user:"eve" ~ip_name:"VirtexKCMMultiplier"
          ~link:Download.dsl_1m ())
  in
  let eve_applet = eve_session.Server.applet in
  List.iter
    (fun (k, v) -> ignore (ok (Applet.exec eve_applet (Applet.Set_param (k, v)))))
    [ ("product_width", "19"); ("pipelined", "false"); ("constant", "-56") ];
  let _ = ok (Applet.exec eve_applet Applet.Build) in
  Alcotest.(check bool) "evaluator cannot netlist" true
    (Result.is_error (Applet.exec eve_applet (Applet.Netlist "EDIF")));
  let endpoint = Option.get (Endpoint.of_applet ~name:"kcm" eve_applet) in
  let cosim = Cosim.create () in
  Cosim.attach cosim endpoint Network.dsl;
  Cosim.set_inputs cosim ~box:"kcm"
    [ ("multiplicand", Bits.of_int ~width:8 (-77)) ];
  Alcotest.(check (option int)) "black-box product" (Some (56 * 77))
    (Bits.to_signed_int (Cosim.get_output cosim ~box:"kcm" "product"));

  (* 3. licensed customer downloads encrypted jars and opens them *)
  let pat_session, sealed =
    ok (Server.secure_request server ~user:"pat" ~ip_name:"VirtexKCMMultiplier"
          ~link:Download.dsl_1m ())
  in
  let token = Option.get (Server.user_token server ~user:"pat") in
  List.iter (fun s -> ignore (ok (Secure_channel.open_sealed ~token s))) sealed;

  (* 4. builds and runs a vendor-shipped declarative bench *)
  let pat_applet = pat_session.Server.applet in
  List.iter
    (fun (k, v) -> ignore (ok (Applet.exec pat_applet (Applet.Set_param (k, v)))))
    [ ("product_width", "15"); ("pipelined", "false"); ("constant", "-56") ];
  let _ = ok (Applet.exec pat_applet Applet.Build) in
  let sim = Option.get (Applet.simulator pat_applet) in
  let bench =
    Testbench.vectors ~mode:`Settle ~inputs:[ "multiplicand" ]
      ~outputs:[ "product" ]
      (List.map
         (fun x ->
            ( [ Bits.of_int ~width:8 x ],
              [ Bits.of_int ~width:15 (-56 * x) ] ))
         [ 0; 1; -1; 100; -100; 127; -128 ])
  in
  let report = Testbench.run sim bench in
  Alcotest.(check bool)
    (Format.asprintf "vendor bench passes: %a" Testbench.pp_report report)
    true (Testbench.passed report);

  (* 5. exports a watermarked EDIF and parse-backs it *)
  let edif = ok (Applet.exec pat_applet (Applet.Netlist "EDIF")) in
  let design = Option.get (Applet.built_design pat_applet) in
  Alcotest.(check bool) "watermarked for the vendor" true
    (Watermark.verify design ~vendor:Catalog.kcm.Ip_module.vendor);
  let summary = ok (Edif_reader.read edif) in
  let model = Model.of_design design in
  Alcotest.(check int) "EDIF instances match the model"
    (Model.instance_count model)
    summary.Edif_reader.instance_count;

  (* 6. the same core arrives as a JBits partial bitstream; the LUT
     contents recoverable from the frames equal the netlist's INITs *)
  let package = Jbits.package ~device_rows:32 ~device_cols:16 design in
  let customer_config = Config_mem.create ~rows:32 ~cols:16 in
  Jbits.install ~into:customer_config package;
  let bitstream_inits =
    Config_mem.readback_luts customer_config
    |> List.map (fun (_, _, _, init) -> Lut_init.to_hex init)
    |> List.sort String.compare
  in
  let netlist_inits =
    Design.all_prims design
    |> List.filter_map (fun c ->
      match Cell.prim_of c with
      | Some (Prim.Lut init) ->
        (* the bitstream widens every table to LUT4 *)
        Some
          (Lut_init.to_hex
             (Lut_init.of_function ~inputs:4 (fun addr ->
                Lut_init.eval_int init
                  (addr land ((1 lsl Lut_init.inputs init) - 1)))))
      | Some Prim.Inv ->
        Some
          (Lut_init.to_hex
             (Lut_init.of_function ~inputs:4 (fun addr -> addr land 1 = 0)))
      | Some _ | None -> None)
    |> List.sort String.compare
  in
  Alcotest.(check (list string))
    "bitstream readback equals netlist LUT contents" netlist_inits
    bitstream_inits

(* a second integration axis: one design flowing through every netlist
   format plus the simulator and the estimator without disagreement on
   size *)
let test_design_consistency_across_tools () =
  let top = Cell.root ~name:"consistency" () in
  let clk = Wire.create top ~name:"clk" 1 in
  let m = Wire.create top ~name:"m" 10 in
  let p = Wire.create top ~name:"p" 18 in
  let _ =
    Kcm.create top ~clk ~multiplicand:m ~product:p ~signed_mode:true
      ~pipelined_mode:true ~constant:333 ()
  in
  let d = Design.create top in
  Design.add_port d "clk" Types.Input clk;
  Design.add_port d "m" Types.Input m;
  Design.add_port d "p" Types.Output p;
  let stats = Design.stats d in
  let model = Model.of_design d in
  Alcotest.(check int) "model sees every primitive"
    stats.Design.primitive_instances (Model.instance_count model);
  let sim = Simulator.create ~clock:clk d in
  Alcotest.(check int) "simulator sees every primitive"
    stats.Design.primitive_instances (Simulator.prim_count sim);
  let area = Jhdl_estimate.Estimate.area_of_design d in
  let by_type_total =
    List.fold_left (fun acc (_, n) -> acc + n) 0 area.Jhdl_estimate.Estimate.prims_by_type
  in
  Alcotest.(check int) "estimator sees every primitive"
    stats.Design.primitive_instances by_type_total;
  (* all four formats render without raising and scale together *)
  let sizes =
    List.map
      (fun f -> String.length (Jhdl_netlist.Format_kind.write f model))
      Jhdl_netlist.Format_kind.all
    @ [ String.length (Jhdl_netlist.Xnf.to_string model) ]
  in
  List.iter
    (fun size -> Alcotest.(check bool) "non-trivial netlist" true (size > 3000))
    sizes

let suite =
  [ Alcotest.test_case "full vendor-customer lifecycle" `Quick
      test_full_lifecycle;
    Alcotest.test_case "design consistency across tools" `Quick
      test_design_consistency_across_tools ]
