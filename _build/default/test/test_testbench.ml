(* Declarative testbench + secure delivery channel + random-circuit
   simulator equivalence property. *)

module Bits = Jhdl_logic.Bits
module Bit = Jhdl_logic.Bit
module Wire = Jhdl_circuit.Wire
module Cell = Jhdl_circuit.Cell
module Design = Jhdl_circuit.Design
module Types = Jhdl_circuit.Types
module Virtex = Jhdl_virtex.Virtex
module Simulator = Jhdl_sim.Simulator
module Testbench = Jhdl_sim.Testbench
module Counter = Jhdl_modgen.Counter
module Secure_channel = Jhdl_webserver.Secure_channel
module Partition = Jhdl_bundle.Partition

let b = Bits.of_string

let and_design () =
  let top = Cell.root ~name:"top" () in
  let a = Wire.create top ~name:"a" 1 in
  let b_ = Wire.create top ~name:"b" 1 in
  let o = Wire.create top ~name:"o" 1 in
  let _ = Virtex.and2 top a b_ o in
  let d = Design.create top in
  Design.add_port d "a" Types.Input a;
  Design.add_port d "b" Types.Input b_;
  Design.add_port d "o" Types.Output o;
  d

(* {1 testbench} *)

let test_tb_vectors_pass () =
  let sim = Simulator.create (and_design ()) in
  let steps =
    Testbench.vectors ~mode:`Settle ~inputs:[ "a"; "b" ] ~outputs:[ "o" ]
      [ ([ b "0"; b "0" ], [ b "0" ]);
        ([ b "0"; b "1" ], [ b "0" ]);
        ([ b "1"; b "0" ], [ b "0" ]);
        ([ b "1"; b "1" ], [ b "1" ]) ]
  in
  let report = Testbench.run sim steps in
  Alcotest.(check bool) "passed" true (Testbench.passed report);
  Alcotest.(check int) "four checks" 4 report.Testbench.checks

let test_tb_failure_reported () =
  let sim = Simulator.create (and_design ()) in
  let report =
    Testbench.run sim
      [ Testbench.Comment "deliberately wrong expectation";
        Testbench.Drive ("a", b "1");
        Testbench.Drive ("b", b "1");
        Testbench.Settle;
        Testbench.Expect ("o", b "0") ]
  in
  Alcotest.(check bool) "failed" false (Testbench.passed report);
  (match report.Testbench.failures with
   | [ f ] ->
     Alcotest.(check string) "port" "o" f.Testbench.port;
     Alcotest.(check string) "expected" "0" f.Testbench.expected;
     Alcotest.(check string) "got" "1" f.Testbench.got
   | _ -> Alcotest.fail "expected one failure");
  Alcotest.(check bool) "comment in log" true
    (List.exists
       (fun line -> line = "deliberately wrong expectation")
       report.Testbench.log)

let test_tb_expect_defined () =
  let sim = Simulator.create (and_design ()) in
  let report =
    Testbench.run sim
      [ Testbench.Drive ("a", b "1");
        Testbench.Settle;
        Testbench.Expect_defined "o" ]
  in
  (* b is undriven, so o is x *)
  Alcotest.(check bool) "undefined caught" false (Testbench.passed report)

let test_tb_unknown_port_is_failure () =
  let sim = Simulator.create (and_design ()) in
  let report = Testbench.run sim [ Testbench.Expect ("zz", b "0") ] in
  Alcotest.(check bool) "failure, not exception" false (Testbench.passed report)

let test_tb_clocked_vectors () =
  let top = Cell.root ~name:"top" () in
  let clk = Wire.create top ~name:"clk" 1 in
  let q = Wire.create top ~name:"q" 3 in
  let _ = Counter.up_counter top ~clk ~q () in
  let d = Design.create top in
  Design.add_port d "clk" Types.Input clk;
  Design.add_port d "q" Types.Output q;
  let sim = Simulator.create ~clock:clk d in
  let report =
    Testbench.run sim
      (Testbench.vectors ~mode:`Clocked ~inputs:[] ~outputs:[ "q" ]
         [ ([], [ b "001" ]); ([], [ b "010" ]); ([], [ b "011" ]) ])
  in
  Alcotest.(check bool)
    (Format.asprintf "clocked counter bench: %a" Testbench.pp_report report)
    true (Testbench.passed report)

(* {1 secure delivery channel} *)

let test_seal_roundtrip () =
  let token = Secure_channel.issue_token ~server_secret:"s3cret" ~user:"alice" in
  let jar = Partition.jar_of Partition.Applet in
  let sealed = Secure_channel.seal ~token jar in
  match Secure_channel.open_sealed ~token sealed with
  | Ok plaintext ->
    Alcotest.(check string) "payload recovered"
      (Secure_channel.payload_of_jar jar)
      plaintext
  | Error message -> Alcotest.fail message

let test_wrong_token_rejected () =
  let t_alice = Secure_channel.issue_token ~server_secret:"s3cret" ~user:"alice" in
  let t_bob = Secure_channel.issue_token ~server_secret:"s3cret" ~user:"bob" in
  Alcotest.(check bool) "tokens differ" true (t_alice <> t_bob);
  let sealed = Secure_channel.seal ~token:t_alice (Partition.jar_of Partition.Applet) in
  Alcotest.(check bool) "bob cannot open alice's jar" true
    (Result.is_error (Secure_channel.open_sealed ~token:t_bob sealed))

let test_tampering_detected () =
  let token = Secure_channel.issue_token ~server_secret:"s3cret" ~user:"alice" in
  let sealed = Secure_channel.seal ~token (Partition.jar_of Partition.Applet) in
  let flipped = Bytes.of_string sealed.Secure_channel.ciphertext in
  Bytes.set flipped 40 (Char.chr (Char.code (Bytes.get flipped 40) lxor 1));
  let tampered = { sealed with Secure_channel.ciphertext = Bytes.to_string flipped } in
  Alcotest.(check bool) "bit flip detected" true
    (Result.is_error (Secure_channel.open_sealed ~token tampered))

(* {1 random-circuit simulator equivalence}

   Build a random combinational DAG of gates over 4 inputs, evaluate it
   both through the circuit simulator and through a direct functional
   interpretation built alongside, and compare on every input vector. *)

let prop_random_circuit_equivalence =
  let gen = QCheck.Gen.(pair (int_range 1 24) (int_bound 1_000_000)) in
  QCheck.Test.make ~name:"simulator matches functional model on random DAGs"
    ~count:60 (QCheck.make gen)
    (fun (gate_count, seed) ->
       let state = ref seed in
       let rand n =
         state := ((!state * 1103515245) + 12345) land 0x3FFFFFFF;
         !state mod n
       in
       let top = Cell.root ~name:"rand" () in
       let inputs =
         List.init 4 (fun i -> Wire.create top ~name:(Printf.sprintf "i%d" i) 1)
       in
       (* each node: a gate over two existing signals; keep both the wire
          and a boolean function of the primary inputs *)
       let nodes =
         ref
           (List.mapi
              (fun i w -> (w, fun (v : bool array) -> v.(i)))
              inputs)
       in
       for g = 0 to gate_count - 1 do
         let pick () = List.nth !nodes (rand (List.length !nodes)) in
         let (wa, fa) = pick () and (wb, fb) = pick () in
         let o = Wire.create top ~name:(Printf.sprintf "g%d" g) 1 in
         let kind = rand 4 in
         (match kind with
          | 0 ->
            let _ = Virtex.and2 top wa wb o in
            nodes := (o, fun v -> fa v && fb v) :: !nodes
          | 1 ->
            let _ = Virtex.or2 top wa wb o in
            nodes := (o, fun v -> fa v || fb v) :: !nodes
          | 2 ->
            let _ = Virtex.xor2 top wa wb o in
            nodes := (o, fun v -> fa v <> fb v) :: !nodes
          | _ ->
            let _ = Virtex.inv top wa o in
            nodes := (o, fun v -> not (fa v)) :: !nodes)
       done;
       let out_wire, out_fn =
         match !nodes with
         | (w, f) :: _ -> (w, f)
         | [] -> assert false
       in
       let d = Design.create top in
       List.iteri
         (fun i w -> Design.add_port d (Printf.sprintf "i%d" i) Types.Input w)
         inputs;
       (* the final gate output may coincide with an input if gate_count
          picks badly; only outputs with a driver can be ports *)
       if List.exists (fun w -> Wire.equal w out_wire) inputs then true
       else begin
         Design.add_port d "o" Types.Output out_wire;
         let sim = Simulator.create d in
         let ok = ref true in
         for vector = 0 to 15 do
           let values = Array.init 4 (fun i -> (vector lsr i) land 1 = 1) in
           List.iteri
             (fun i _ ->
                Simulator.set_input sim (Printf.sprintf "i%d" i)
                  (Bits.of_int ~width:1 (if values.(i) then 1 else 0)))
             inputs;
           let got = Simulator.get_port sim "o" in
           let expected = Bits.of_int ~width:1 (if out_fn values then 1 else 0) in
           if not (Bits.equal got expected) then ok := false
         done;
         !ok
       end)

let suite =
  [ Alcotest.test_case "vectors pass" `Quick test_tb_vectors_pass;
    Alcotest.test_case "failure reported" `Quick test_tb_failure_reported;
    Alcotest.test_case "expect defined" `Quick test_tb_expect_defined;
    Alcotest.test_case "unknown port is failure" `Quick
      test_tb_unknown_port_is_failure;
    Alcotest.test_case "clocked vectors" `Quick test_tb_clocked_vectors;
    Alcotest.test_case "seal roundtrip" `Quick test_seal_roundtrip;
    Alcotest.test_case "wrong token rejected" `Quick test_wrong_token_rejected;
    Alcotest.test_case "tampering detected" `Quick test_tampering_detected ]
  @ List.map QCheck_alcotest.to_alcotest [ prop_random_circuit_equivalence ]
