(* Structural tests for the circuit data structure: wires, hierarchy,
   terminals, properties, placement and design-rule checks. *)

module Wire = Jhdl_circuit.Wire
module Cell = Jhdl_circuit.Cell
module Design = Jhdl_circuit.Design
module Prim = Jhdl_circuit.Prim
module Types = Jhdl_circuit.Types
module Virtex = Jhdl_virtex.Virtex
module Lut_init = Jhdl_logic.Lut_init

let test_wire_create () =
  let top = Cell.root ~name:"top" () in
  let w = Wire.create top ~name:"data" 8 in
  Alcotest.(check int) "width" 8 (Wire.width w);
  Alcotest.(check string) "name" "data" (Wire.name w);
  Alcotest.(check string) "full name" "top/data" (Wire.full_name w);
  Alcotest.(check bool) "not a view" false (Wire.is_view w)

let test_wire_unique_names () =
  let top = Cell.root ~name:"top" () in
  let a = Wire.create top ~name:"w" 1 in
  let b = Wire.create top ~name:"w" 1 in
  let c = Wire.create top ~name:"w" 1 in
  Alcotest.(check string) "first keeps name" "w" (Wire.name a);
  Alcotest.(check bool) "second renamed" true (Wire.name b <> Wire.name c);
  Alcotest.(check bool) "all distinct" true
    (List.length
       (List.sort_uniq String.compare [ Wire.name a; Wire.name b; Wire.name c ])
     = 3)

let test_wire_slice_shares_nets () =
  let top = Cell.root ~name:"top" () in
  let w = Wire.create top 8 in
  let s = Wire.slice w ~lo:2 ~hi:5 in
  Alcotest.(check int) "slice width" 4 (Wire.width s);
  Alcotest.(check bool) "is a view" true (Wire.is_view s);
  Alcotest.(check bool) "shares nets" true
    ((Wire.net s 0).Types.net_id = (Wire.net w 2).Types.net_id);
  let b = Wire.bit w 7 in
  Alcotest.(check bool) "bit view" true
    ((Wire.net b 0).Types.net_id = (Wire.net w 7).Types.net_id)

let test_wire_concat () =
  let top = Cell.root ~name:"top" () in
  let hi = Wire.create top ~name:"hi" 3 in
  let lo = Wire.create top ~name:"lo" 2 in
  let cat = Wire.concat hi lo in
  Alcotest.(check int) "width" 5 (Wire.width cat);
  Alcotest.(check bool) "low bits from lo" true
    ((Wire.net cat 0).Types.net_id = (Wire.net lo 0).Types.net_id);
  Alcotest.(check bool) "high bits from hi" true
    ((Wire.net cat 4).Types.net_id = (Wire.net hi 2).Types.net_id)

let test_wire_bad_args () =
  let top = Cell.root ~name:"top" () in
  let w = Wire.create top 4 in
  Alcotest.(check bool) "bad width raises" true
    (try ignore (Wire.create top 0); false with Invalid_argument _ -> true);
  Alcotest.(check bool) "bad slice raises" true
    (try ignore (Wire.slice w ~lo:2 ~hi:1); false with Invalid_argument _ -> true);
  Alcotest.(check bool) "bad bit raises" true
    (try ignore (Wire.net w 4); false with Invalid_argument _ -> true)

let test_hierarchy () =
  let top = Cell.root ~name:"top" () in
  let a = Wire.create top ~name:"a" 1 in
  let child =
    Cell.composite top ~name:"inner" ~ports:[ ("a", Types.Input, a) ] ()
  in
  let grand =
    Cell.composite child ~name:"leaf" ~ports:[ ("a", Types.Input, a) ] ()
  in
  Alcotest.(check string) "path" "top/inner/leaf" (Cell.path grand);
  Alcotest.(check (list string)) "children" [ "inner" ]
    (List.map Cell.name (Cell.children top));
  Alcotest.(check bool) "find_child" true
    (Option.is_some (Cell.find_child top "inner"));
  Alcotest.(check bool) "find_path" true
    (match Cell.find_path top "inner/leaf" with
     | Some c -> Cell.equal c grand
     | None -> false);
  Alcotest.(check bool) "parent" true
    (match Cell.parent grand with
     | Some p -> Cell.equal p child
     | None -> false)

let test_instance_unique_names () =
  let top = Cell.root ~name:"top" () in
  let mk () = Cell.composite top ~name:"u" ~ports:[] () in
  let a = mk () and b = mk () in
  Alcotest.(check bool) "renamed" true (Cell.name a <> Cell.name b)

let test_prim_terminals () =
  let top = Cell.root ~name:"top" () in
  let a = Wire.create top ~name:"a" 1 in
  let b = Wire.create top ~name:"b" 1 in
  let o = Wire.create top ~name:"o" 1 in
  let inst = Virtex.and2 top a b o in
  Alcotest.(check bool) "o driven by inst" true
    (match (Wire.net o 0).Types.driver with
     | Some t -> Cell.equal t.Types.term_cell inst
     | None -> false);
  Alcotest.(check int) "a has one sink" 1
    (List.length (Wire.net a 0).Types.sinks);
  Alcotest.(check bool) "a not driven" true
    (Option.is_none (Wire.net a 0).Types.driver)

let test_double_driver_rejected () =
  let top = Cell.root ~name:"top" () in
  let a = Wire.create top 1 and b = Wire.create top 1 in
  let o = Wire.create top 1 in
  let _ = Virtex.and2 top a b o in
  Alcotest.(check bool) "second driver raises" true
    (try ignore (Virtex.or2 top a b o); false
     with Invalid_argument _ -> true)

let test_prim_missing_port_rejected () =
  let top = Cell.root ~name:"top" () in
  let a = Wire.create top 1 in
  Alcotest.(check bool) "unconnected port raises" true
    (try
       ignore
         (Cell.prim top (Prim.Lut (Lut_init.and_all ~inputs:2))
            ~conns:[ ("I0", a) ]);
       false
     with Invalid_argument _ -> true)

let test_prim_unknown_port_rejected () =
  let top = Cell.root ~name:"top" () in
  let a = Wire.create top 1 in
  Alcotest.(check bool) "unknown port raises" true
    (try ignore (Cell.prim top Prim.Buf ~conns:[ ("BOGUS", a) ]); false
     with Invalid_argument _ -> true)

let test_properties () =
  let top = Cell.root ~name:"top" () in
  Cell.set_property top "VENDOR" "byu";
  Cell.set_property top "VERSION" "1";
  Cell.set_property top "VERSION" "2";
  Alcotest.(check (option string)) "get" (Some "byu")
    (Cell.get_property top "VENDOR");
  Alcotest.(check (option string)) "replaced" (Some "2")
    (Cell.get_property top "VERSION");
  Alcotest.(check int) "two props" 2 (List.length (Cell.properties top))

let test_rloc () =
  let top = Cell.root ~name:"top" () in
  let u = Cell.composite top ~name:"u" ~ports:[] () in
  Alcotest.(check (option (pair int int))) "unset" None (Cell.rloc u);
  Cell.set_rloc u ~row:3 ~col:1;
  Alcotest.(check (option (pair int int))) "set" (Some (3, 1)) (Cell.rloc u)

let full_adder parent ~a ~b ~ci ~s ~co =
  (* the paper's Section 2 example, transliterated *)
  let fa =
    Cell.composite parent ~name:"fulladder" ~type_name:"FullAdder"
      ~ports:
        [ ("a", Types.Input, a); ("b", Types.Input, b); ("ci", Types.Input, ci);
          ("s", Types.Output, s); ("co", Types.Output, co) ]
      ()
  in
  let t1 = Wire.create fa ~name:"t1" 1 in
  let t2 = Wire.create fa ~name:"t2" 1 in
  let t3 = Wire.create fa ~name:"t3" 1 in
  let _ = Virtex.and2 fa a b t1 in
  let _ = Virtex.and2 fa a ci t2 in
  let _ = Virtex.and2 fa b ci t3 in
  let _ = Virtex.or3 fa t1 t2 t3 co in
  let _ = Virtex.xor3 fa a b ci s in
  fa

let make_full_adder_design () =
  let top = Cell.root ~name:"top" () in
  let a = Wire.create top ~name:"a" 1 in
  let b = Wire.create top ~name:"b" 1 in
  let ci = Wire.create top ~name:"ci" 1 in
  let s = Wire.create top ~name:"s" 1 in
  let co = Wire.create top ~name:"co" 1 in
  let _ = full_adder top ~a ~b ~ci ~s ~co in
  let d = Design.create top in
  Design.add_port d "a" Types.Input a;
  Design.add_port d "b" Types.Input b;
  Design.add_port d "ci" Types.Input ci;
  Design.add_port d "s" Types.Output s;
  Design.add_port d "co" Types.Output co;
  d

let test_full_adder_structure () =
  let d = make_full_adder_design () in
  let stats = Design.stats d in
  Alcotest.(check int) "5 primitives" 5 stats.Design.primitive_instances;
  Alcotest.(check int) "2 composites" 2 stats.Design.composite_cells;
  Alcotest.(check (list Alcotest.string)) "clean design" []
    (List.map (Format.asprintf "%a" Design.pp_violation) (Design.validate d))

let test_validate_undriven () =
  let top = Cell.root ~name:"top" () in
  let a = Wire.create top 1 and b = Wire.create top 1 in
  let o = Wire.create top 1 in
  let _ = Virtex.and2 top a b o in
  let d = Design.create top in
  Design.add_port d "o" Types.Output o;
  (* a and b have sinks but no driver and no input-port binding *)
  let undriven =
    List.filter
      (function Design.Undriven_net _ -> true | _ -> false)
      (Design.validate d)
  in
  Alcotest.(check int) "two undriven nets" 2 (List.length undriven)

let test_validate_dangling () =
  let top = Cell.root ~name:"top" () in
  let o = Wire.create top 1 in
  let _ = Cell.prim top Prim.Gnd ~conns:[ ("G", o) ] in
  let d = Design.create top in
  let dangling =
    List.filter
      (function Design.Dangling_driver _ -> true | _ -> false)
      (Design.validate d)
  in
  Alcotest.(check int) "one dangling driver" 1 (List.length dangling);
  Alcotest.(check int) "not an error" 0 (List.length (Design.errors d))

let test_validate_comb_loop () =
  let top = Cell.root ~name:"top" () in
  let a = Wire.create top 1 and b = Wire.create top 1 in
  let _ = Virtex.inv top a b in
  let _ = Virtex.inv top b a in
  let d = Design.create top in
  let loops =
    List.filter
      (function Design.Combinational_loop _ -> true | _ -> false)
      (Design.validate d)
  in
  Alcotest.(check int) "loop found" 1 (List.length loops)

let test_ff_breaks_loop () =
  let top = Cell.root ~name:"top" () in
  let clk = Wire.create top ~name:"clk" 1 in
  let d_w = Wire.create top 1 and q = Wire.create top 1 in
  let _ = Virtex.inv top q d_w in
  let _ = Virtex.fd top ~c:clk ~d:d_w ~q () in
  let d = Design.create top in
  Design.add_port d "clk" Types.Input clk;
  let loops =
    List.filter
      (function Design.Combinational_loop _ -> true | _ -> false)
      (Design.validate d)
  in
  Alcotest.(check int) "no loop through ff" 0 (List.length loops)

let test_stats_by_type () =
  let d = make_full_adder_design () in
  let stats = Design.stats d in
  Alcotest.(check (list (pair string int))) "prims by type"
    [ ("LUT2", 3); ("LUT3", 2) ]
    stats.Design.prims_by_type

let test_all_prims_order () =
  let d = make_full_adder_design () in
  Alcotest.(check int) "5 prims listed" 5 (List.length (Design.all_prims d))

let test_port_lookup () =
  let d = make_full_adder_design () in
  Alcotest.(check bool) "find a" true (Option.is_some (Design.find_port d "a"));
  Alcotest.(check bool) "missing port" true
    (Option.is_none (Design.find_port d "nope"));
  Alcotest.(check int) "3 inputs" 3 (List.length (Design.inputs d));
  Alcotest.(check int) "2 outputs" 2 (List.length (Design.outputs d))

let test_duplicate_port_rejected () =
  let d = make_full_adder_design () in
  let w = Wire.create (Design.root d) 1 in
  Alcotest.(check bool) "duplicate name raises" true
    (try Design.add_port d "a" Types.Input w; false
     with Invalid_argument _ -> true)

(* Property: arbitrary slice of a slice refers to the expected nets. *)
let prop_slice_composition =
  QCheck.Test.make ~name:"slice of slice composes" ~count:200
    QCheck.(triple (int_range 1 24) (int_range 0 23) (int_range 0 23))
    (fun (w, x, y) ->
       QCheck.assume (x < w && y < w);
       let lo = min x y and hi = max x y in
       let top = Cell.root ~name:"t" () in
       let wire = Wire.create top w in
       let s1 = Wire.slice wire ~lo ~hi in
       let s2 = Wire.slice s1 ~lo:0 ~hi:(Wire.width s1 - 1) in
       let ok = ref true in
       for i = 0 to Wire.width s2 - 1 do
         if (Wire.net s2 i).Types.net_id <> (Wire.net wire (lo + i)).Types.net_id
         then ok := false
       done;
       !ok)

let suite =
  [ Alcotest.test_case "wire create" `Quick test_wire_create;
    Alcotest.test_case "wire unique names" `Quick test_wire_unique_names;
    Alcotest.test_case "wire slice shares nets" `Quick test_wire_slice_shares_nets;
    Alcotest.test_case "wire concat" `Quick test_wire_concat;
    Alcotest.test_case "wire bad args" `Quick test_wire_bad_args;
    Alcotest.test_case "hierarchy paths" `Quick test_hierarchy;
    Alcotest.test_case "instance unique names" `Quick test_instance_unique_names;
    Alcotest.test_case "prim terminals" `Quick test_prim_terminals;
    Alcotest.test_case "double driver rejected" `Quick test_double_driver_rejected;
    Alcotest.test_case "missing port rejected" `Quick test_prim_missing_port_rejected;
    Alcotest.test_case "unknown port rejected" `Quick test_prim_unknown_port_rejected;
    Alcotest.test_case "properties" `Quick test_properties;
    Alcotest.test_case "rloc" `Quick test_rloc;
    Alcotest.test_case "full adder structure" `Quick test_full_adder_structure;
    Alcotest.test_case "validate undriven" `Quick test_validate_undriven;
    Alcotest.test_case "validate dangling" `Quick test_validate_dangling;
    Alcotest.test_case "validate comb loop" `Quick test_validate_comb_loop;
    Alcotest.test_case "ff breaks loop" `Quick test_ff_breaks_loop;
    Alcotest.test_case "stats by type" `Quick test_stats_by_type;
    Alcotest.test_case "all prims order" `Quick test_all_prims_order;
    Alcotest.test_case "port lookup" `Quick test_port_lookup;
    Alcotest.test_case "duplicate port rejected" `Quick test_duplicate_port_rejected ]
  @ List.map QCheck_alcotest.to_alcotest [ prop_slice_composition ]
