test/test_equiv.ml: Alcotest Jhdl_circuit Jhdl_logic Jhdl_modgen Jhdl_verify Jhdl_virtex List Option
