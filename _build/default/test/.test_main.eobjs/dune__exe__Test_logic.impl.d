test/test_logic.ml: Alcotest Array Char Jhdl_logic List Option Printf QCheck QCheck_alcotest
