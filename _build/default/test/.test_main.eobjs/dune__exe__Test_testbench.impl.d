test/test_testbench.ml: Alcotest Array Bytes Char Format Jhdl_bundle Jhdl_circuit Jhdl_logic Jhdl_modgen Jhdl_sim Jhdl_virtex Jhdl_webserver List Printf QCheck QCheck_alcotest Result
