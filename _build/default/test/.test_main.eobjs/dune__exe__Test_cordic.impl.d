test/test_cordic.ml: Alcotest Float Jhdl_circuit Jhdl_logic Jhdl_modgen Jhdl_sim Lazy List Printf QCheck QCheck_alcotest
