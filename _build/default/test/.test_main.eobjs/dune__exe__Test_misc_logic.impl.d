test/test_misc_logic.ml: Alcotest Int Jhdl_circuit Jhdl_logic Jhdl_modgen Jhdl_sim List Printf
