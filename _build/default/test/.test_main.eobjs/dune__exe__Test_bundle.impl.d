test/test_bundle.ml: Alcotest Int Jhdl_bundle List Printf QCheck QCheck_alcotest String
