test/test_netlist.ml: Alcotest Array Jhdl_circuit Jhdl_modgen Jhdl_netlist Jhdl_virtex List QCheck QCheck_alcotest String
