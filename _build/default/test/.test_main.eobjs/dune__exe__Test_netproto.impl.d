test/test_netproto.ml: Alcotest Format Jhdl_circuit Jhdl_logic Jhdl_modgen Jhdl_netproto Jhdl_sim List Printf QCheck QCheck_alcotest Result
