test/test_sim.ml: Alcotest Jhdl_circuit Jhdl_logic Jhdl_sim Jhdl_virtex Lazy List Printf QCheck QCheck_alcotest
