test/test_scale.ml: Alcotest Jhdl_bitstream Jhdl_circuit Jhdl_estimate Jhdl_logic Jhdl_modgen Jhdl_netlist Jhdl_place Jhdl_sim List Option Printf
