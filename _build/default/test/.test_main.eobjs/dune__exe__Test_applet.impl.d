test/test_applet.ml: Alcotest Jhdl_applet Jhdl_bundle Jhdl_circuit Jhdl_logic Jhdl_security List Printf String
