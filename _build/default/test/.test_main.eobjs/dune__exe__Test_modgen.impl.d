test/test_modgen.ml: Alcotest Jhdl_circuit Jhdl_estimate Jhdl_logic Jhdl_modgen Jhdl_sim Jhdl_virtex List Printf QCheck QCheck_alcotest
