test/test_placer.ml: Alcotest Format Hashtbl Jhdl_circuit Jhdl_estimate Jhdl_modgen Jhdl_place Jhdl_viewer List Option Printf
