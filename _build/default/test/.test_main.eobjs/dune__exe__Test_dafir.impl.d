test/test_dafir.ml: Alcotest Jhdl_circuit Jhdl_estimate Jhdl_logic Jhdl_modgen Jhdl_sim Jhdl_virtex List Printf
