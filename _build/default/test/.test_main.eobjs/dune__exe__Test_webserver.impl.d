test/test_webserver.ml: Alcotest Jhdl_applet Jhdl_bundle Jhdl_webserver List Option Result String
