test/test_circuit.ml: Alcotest Format Jhdl_circuit Jhdl_logic Jhdl_virtex List Option QCheck QCheck_alcotest String
