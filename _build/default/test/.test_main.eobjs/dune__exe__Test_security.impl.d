test/test_security.ml: Alcotest Jhdl_bundle Jhdl_circuit Jhdl_logic Jhdl_modgen Jhdl_netlist Jhdl_security Jhdl_sim Jhdl_virtex List Printf QCheck QCheck_alcotest Result String
