test/test_viewer.ml: Alcotest Jhdl_circuit Jhdl_logic Jhdl_modgen Jhdl_sim Jhdl_viewer Jhdl_virtex Option String
