test/test_estimate.ml: Alcotest Jhdl_circuit Jhdl_estimate Jhdl_modgen Jhdl_virtex String
