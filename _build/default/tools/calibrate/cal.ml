let () = print_string (Jhdl_bundle.Partition.table (Jhdl_bundle.Partition.jars_for Jhdl_bundle.Partition.all_components))
