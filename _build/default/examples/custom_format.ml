(* The open interchange API in user hands (Section 2.2): "user-defined
   textual or binary interchange formats can be created by exploiting
   this API". This example writes two formats the library does not ship —
   a JSON netlist and a one-line-per-connection CSV — using nothing but
   the public Model, in ~40 lines each.

   Run with: dune exec examples/custom_format.exe *)

open Jhdl

let json_escape s =
  String.concat ""
    (List.map
       (fun c ->
          match c with
          | '"' -> "\\\""
          | '\\' -> "\\\\"
          | c -> String.make 1 c)
       (List.init (String.length s) (String.get s)))

(* a user-defined JSON netlist writer over the public interchange model *)
let to_json (m : Model.t) =
  let buffer = Buffer.create 4096 in
  let add fmt = Printf.ksprintf (Buffer.add_string buffer) fmt in
  add "{\n  \"design\": \"%s\",\n" (json_escape m.Model.design_name);
  add "  \"ports\": [";
  List.iteri
    (fun i p ->
       add "%s{\"name\": \"%s\", \"dir\": \"%s\", \"width\": %d}"
         (if i = 0 then "" else ", ")
         (json_escape p.Model.p_name)
         (match p.Model.p_dir with Types.Input -> "in" | Types.Output -> "out")
         p.Model.p_width)
    m.Model.ports;
  add "],\n  \"instances\": [\n";
  Array.iteri
    (fun i inst ->
       add "    {\"name\": \"%s\", \"cell\": \"%s\", \"pins\": {"
         (json_escape inst.Model.inst_name)
         inst.Model.inst_lib_cell;
       List.iteri
         (fun j c ->
            add "%s\"%s\": %d"
              (if j = 0 then "" else ", ")
              (json_escape c.Model.conn_port)
              c.Model.conn_net)
         inst.Model.inst_conns;
       add "}}%s\n" (if i = Array.length m.Model.instances - 1 then "" else ","))
    m.Model.instances;
  add "  ],\n  \"nets\": %d\n}\n" (Model.net_count m);
  Buffer.contents buffer

(* and a CSV connection list, the kind of ad-hoc format a customer's
   scripts consume *)
let to_csv (m : Model.t) =
  let buffer = Buffer.create 4096 in
  Buffer.add_string buffer "instance,cell,pin,dir,net\n";
  Array.iter
    (fun inst ->
       List.iter
         (fun c ->
            Printf.ksprintf (Buffer.add_string buffer) "%s,%s,%s,%s,%s\n"
              inst.Model.inst_name inst.Model.inst_lib_cell c.Model.conn_port
              (match c.Model.conn_dir with
               | Types.Input -> "in"
               | Types.Output -> "out")
              m.Model.nets.(c.Model.conn_net).Model.net_name)
         inst.Model.inst_conns)
    m.Model.instances;
  Buffer.contents buffer

let () =
  let top = Cell.root ~name:"demo" () in
  let clk = Wire.create top ~name:"clk" 1 in
  let m_in = Wire.create top ~name:"m" 4 in
  let p_out = Wire.create top ~name:"p" 8 in
  let _ =
    Kcm.create top ~clk ~multiplicand:m_in ~product:p_out ~signed_mode:false
      ~pipelined_mode:false ~constant:9 ()
  in
  let d = Design.create top in
  Design.add_port d "clk" Types.Input clk;
  Design.add_port d "m" Types.Input m_in;
  Design.add_port d "p" Types.Output p_out;
  let model = Model.of_design d in

  print_endline "== user-defined JSON netlist (head) ==";
  let json = to_json model in
  String.split_on_char '\n' json
  |> List.filteri (fun i _ -> i < 12)
  |> List.iter print_endline;
  Printf.printf "... (%d bytes total)\n\n" (String.length json);

  print_endline "== user-defined CSV connection list (head) ==";
  let csv = to_csv model in
  String.split_on_char '\n' csv
  |> List.filteri (fun i _ -> i < 10)
  |> List.iter print_endline;
  Printf.printf "... (%d rows total)\n"
    (List.length (String.split_on_char '\n' csv) - 2);

  (* the shipped formats, for comparison, come from the same model *)
  Printf.printf
    "\nshipped writers over the same model: EDIF %d B, VHDL %d B, Verilog %d B, XNF %d B\n"
    (String.length (Edif.to_string model))
    (String.length (Vhdl.to_string model))
    (String.length (Verilog.to_string model))
    (String.length (Xnf.to_string model))
