examples/quickstart.mli:
