examples/pli_testbench.mli:
