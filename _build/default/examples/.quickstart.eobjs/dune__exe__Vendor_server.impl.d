examples/vendor_server.ml: Applet Catalog Download Feature Jar Jhdl License List Printf Server String
