examples/quickstart.ml: Bits Cell Design Edif Estimate Hierarchy Jhdl List Printf Simulator String Types Virtex Wire
