examples/blackbox_cosim.ml: Applet Bits Catalog Cosim Endpoint Fir Jhdl License List Network Option Printf
