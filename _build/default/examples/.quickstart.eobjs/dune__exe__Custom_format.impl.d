examples/custom_format.ml: Array Buffer Cell Design Edif Jhdl Kcm List Model Printf String Types Verilog Vhdl Wire Xnf
