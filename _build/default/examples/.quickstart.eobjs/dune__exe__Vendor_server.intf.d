examples/vendor_server.mli:
