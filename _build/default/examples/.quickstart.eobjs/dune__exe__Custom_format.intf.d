examples/custom_format.mli:
