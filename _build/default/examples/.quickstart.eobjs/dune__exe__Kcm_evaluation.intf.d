examples/kcm_evaluation.mli:
