examples/kcm_evaluation.ml: Applet Catalog Jhdl License List Printf String
