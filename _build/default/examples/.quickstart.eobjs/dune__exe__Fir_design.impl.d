examples/fir_design.ml: Bits Cell Counter Design Fir Jhdl List Option Printf Simulator String Types Vhdl Watermark Wire
