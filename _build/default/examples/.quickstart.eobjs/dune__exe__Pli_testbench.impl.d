examples/pli_testbench.ml: Applet Bits Catalog Cosim Endpoint Jhdl License List Network Printf Verilog_tb
