examples/physical_flow.ml: Cell Design Equiv Estimate Floorplan Format Jbits Jhdl Kcm List Placer Printf Router String Types Wire
