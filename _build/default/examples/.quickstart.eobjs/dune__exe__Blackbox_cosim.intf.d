examples/blackbox_cosim.mli:
