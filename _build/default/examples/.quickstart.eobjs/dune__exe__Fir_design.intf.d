examples/fir_design.mli:
