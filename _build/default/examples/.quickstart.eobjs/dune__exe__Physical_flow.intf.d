examples/physical_flow.mli:
