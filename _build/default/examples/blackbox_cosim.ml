(* Figure 4: black-box simulation models inside a system simulation.

   Two IP vendors publish evaluation applets (a KCM multiplier and a FIR
   filter) that expose only a self-contained simulation model — no
   hierarchy browsing, no netlists. The user's system simulator drives
   both over the simulation-event protocol and checks the combined
   result against a local golden model, without ever seeing inside
   either box.

   Run with: dune exec examples/blackbox_cosim.exe *)

open Jhdl

let build_applet ~ip ~params ~user =
  let applet =
    Applet.create ~ip ~license:(License.of_tier License.Evaluator) ~user ()
  in
  List.iter
    (fun (name, value) ->
       match Applet.exec applet (Applet.Set_param (name, value)) with
       | Ok _ -> ()
       | Error message -> failwith message)
    params;
  (match Applet.exec applet Applet.Build with
   | Ok text -> print_endline text
   | Error message -> failwith message);
  applet

let () =
  print_endline "== vendor applets (black-box evaluation licenses) ==";
  let kcm_applet =
    build_applet ~ip:Catalog.kcm
      ~params:
        [ ("multiplicand_width", "8"); ("product_width", "19");
          ("signed", "true"); ("pipelined", "false"); ("constant", "-56") ]
      ~user:"sys-integrator"
  in
  let fir_applet =
    build_applet ~ip:Catalog.fir
      ~params:
        [ ("input_width", "8"); ("output_width", "20"); ("signed", "true");
          ("taps", "highpass5") ]
      ~user:"sys-integrator"
  in
  (* the netlister is genuinely absent from these applets: *)
  (match Applet.exec kcm_applet (Applet.Netlist "EDIF") with
   | Error message -> Printf.printf "\nnetlist request refused: %s\n" message
   | Ok _ -> assert false);

  print_endline "\n== system co-simulation over the event protocol ==";
  let cosim = Cosim.create () in
  let attach applet name =
    match Endpoint.of_applet ~name applet with
    | Some endpoint -> Cosim.attach cosim endpoint Network.campus
    | None -> failwith "applet has no simulator"
  in
  attach kcm_applet "kcm";
  attach fir_applet "fir";

  (* feed the same sample stream to both boxes; the system model is
     y_fir(n) checked against a local reference, and p_kcm(n) = -56*x *)
  let samples = [ 5; -3; 17; -32; 31; 0; 8; -8 ] in
  let fir_expected =
    Fir.expected_response ~signed_mode:true ~coefficients:[ -1; -2; 6; -2; -1 ]
      ~full_width:
        (Fir.accumulation_width ~x_width:8 ~coefficients:[ -1; -2; 6; -2; -1 ])
      ~out_width:20 samples
  in
  print_endline "cycle  x    kcm product   fir y        fir ref      ok";
  List.iteri
    (fun n x ->
       let xb = Bits.of_int ~width:8 x in
       Cosim.set_inputs cosim ~box:"kcm" [ ("multiplicand", xb) ];
       Cosim.set_inputs cosim ~box:"fir" [ ("x", xb) ];
       (* FIR output is combinational in x(n); read before the edge *)
       let y = Cosim.get_output cosim ~box:"fir" "y" in
       let p = Cosim.get_output cosim ~box:"kcm" "product" in
       Cosim.cycle cosim;
       let reference = List.nth fir_expected n in
       let p_int = Option.value (Bits.to_signed_int p) ~default:min_int in
       Printf.printf "%5d %4d  %6d (=-56x)  %-12s %-12s %b\n" n x p_int
         (Bits.to_string y) (Bits.to_string reference)
         (Bits.equal y reference && p_int = -56 * x))
    samples;

  Printf.printf
    "\nprotocol traffic: %d messages, %d bytes, %.3f ms simulated wall time\n"
    (Cosim.total_messages cosim) (Cosim.total_bytes cosim)
    (Cosim.elapsed_seconds cosim *. 1000.0);
  print_endline
    "(the same session over Web-CAD/JavaCAD architectures is costed in bench/)"
