(* Quickstart: the paper's Section 2 walkthrough.

   Builds the FullAdder from the paper's Java fragment, simulates its
   truth table with the built-in simulator, views its structure, and
   exports an EDIF netlist — create, simulate, view, netlist, end to
   end. Run with: dune exec examples/quickstart.exe *)

open Jhdl

(* The paper's FullAdder constructor, transliterated from Java:

     public FullAdder(Node parent, Wire a, Wire b,
                      Wire ci, Wire s, Wire co) {
       Wire t1 = new Xwire(this,1); ...
       new and2(this,a,b,t1); ... }                                   *)
let full_adder parent ~a ~b ~ci ~s ~co =
  let fa =
    Cell.composite parent ~name:"fulladder" ~type_name:"FullAdder"
      ~ports:
        [ ("a", Types.Input, a); ("b", Types.Input, b);
          ("ci", Types.Input, ci); ("s", Types.Output, s);
          ("co", Types.Output, co) ]
      ()
  in
  let t1 = Wire.create fa ~name:"t1" 1 in
  let t2 = Wire.create fa ~name:"t2" 1 in
  let t3 = Wire.create fa ~name:"t3" 1 in
  let _ = Virtex.and2 fa a b t1 in
  let _ = Virtex.and2 fa a ci t2 in
  let _ = Virtex.and2 fa b ci t3 in
  let _ = Virtex.or3 fa t1 t2 t3 co in
  let _ = Virtex.xor3 fa a b ci s in
  fa

let () =
  (* construct: a root system plus the full adder and its wires *)
  let top = Cell.root ~name:"quickstart" () in
  let a = Wire.create top ~name:"a" 1 in
  let b = Wire.create top ~name:"b" 1 in
  let ci = Wire.create top ~name:"ci" 1 in
  let s = Wire.create top ~name:"s" 1 in
  let co = Wire.create top ~name:"co" 1 in
  let _ = full_adder top ~a ~b ~ci ~s ~co in
  let design = Design.create top in
  Design.add_port design "a" Types.Input a;
  Design.add_port design "b" Types.Input b;
  Design.add_port design "ci" Types.Input ci;
  Design.add_port design "s" Types.Output s;
  Design.add_port design "co" Types.Output co;

  print_endline "== structure ==";
  print_string (Hierarchy.render_design design);

  print_endline "\n== simulation: full truth table ==";
  let sim = Simulator.create design in
  print_endline " a b ci | s co";
  for input = 0 to 7 do
    let bit n = Bits.of_int ~width:1 ((input lsr n) land 1) in
    Simulator.set_input sim "a" (bit 2);
    Simulator.set_input sim "b" (bit 1);
    Simulator.set_input sim "ci" (bit 0);
    Printf.printf " %d %d %d  | %s %s\n" ((input lsr 2) land 1)
      ((input lsr 1) land 1) (input land 1)
      (Bits.to_string (Simulator.get_port sim "s"))
      (Bits.to_string (Simulator.get_port sim "co"))
  done;

  print_endline "\n== area and timing estimate ==";
  print_endline (Estimate.to_string (Estimate.of_design design));

  print_endline "\n== EDIF netlist (first 25 lines) ==";
  let edif = Edif.of_design design in
  String.split_on_char '\n' edif
  |> List.filteri (fun i _ -> i < 25)
  |> List.iter print_endline;
  Printf.printf "... (%d lines total)\n"
    (List.length (String.split_on_char '\n' edif))
