(* The Section 4.2 PLI wrapper: a customer's Verilog testbench drives a
   protected black-box IP through the simulation-event protocol — "a
   user can evaluate intellectual property within their design
   environment without exposing any proprietary information."

   Run with: dune exec examples/pli_testbench.exe *)

open Jhdl

let testbench_source =
  {|
// customer-side Verilog testbench; the KCM is a black box reached
// over the PLI socket wrapper
module kcm_tb;
  reg  [7:0]  x;
  wire [18:0] p;

  initial begin
    $display("evaluating protected KCM (constant -56)");
    x = 8'd0;
    #1;
    $check(p, 19'd0);
    x = 8'd100;
    #1;
    $display("p for 100:", p);
    $check(p, -19'd5600);
    x = -8'sd128;
    #1;
    $display("p for -128:", p);
    $check(p, 19'd7168);
    x = 8'd42;
    #1;
    $check(p, -19'd2352);
    $finish;
  end
endmodule
|}

let () =
  (* vendor side: a black-box evaluation applet with only a simulator *)
  let applet =
    Applet.create ~ip:Catalog.kcm ~license:(License.of_tier License.Evaluator)
      ~user:"verilog-user" ()
  in
  List.iter
    (fun (k, v) ->
       match Applet.exec applet (Applet.Set_param (k, v)) with
       | Ok _ -> ()
       | Error m -> failwith m)
    [ ("product_width", "19"); ("pipelined", "false"); ("constant", "-56") ];
  (match Applet.exec applet Applet.Build with
   | Ok text -> print_endline text
   | Error m -> failwith m);
  let endpoint =
    match Endpoint.of_applet ~name:"kcm" applet with
    | Some endpoint -> endpoint
    | None -> failwith "applet has no simulator"
  in
  let cosim = Cosim.create () in
  Cosim.attach cosim endpoint Network.lan;

  (* customer side: parse and run the testbench through the wrapper *)
  print_endline "\n== running the customer testbench through the PLI wrapper ==";
  match Verilog_tb.parse testbench_source with
  | Error message -> failwith ("testbench: " ^ message)
  | Ok program ->
    let result =
      Verilog_tb.run program ~cosim
        ~bindings:
          [ { Verilog_tb.signal = "x"; box = "kcm"; port = "multiplicand" };
            { Verilog_tb.signal = "p"; box = "kcm"; port = "product" } ]
    in
    List.iter print_endline result.Verilog_tb.transcript;
    print_newline ();
    List.iter
      (fun c ->
         Printf.printf "$check %s: expected %s, got %s -> %s\n"
           c.Verilog_tb.check_signal
           (Bits.to_string c.Verilog_tb.expected)
           (Bits.to_string c.Verilog_tb.actual)
           (if c.Verilog_tb.passed then "PASS" else "FAIL"))
      result.Verilog_tb.checks;
    Printf.printf
      "\n%d cycles, finished=%b; protocol traffic: %d messages, %d bytes\n"
      result.Verilog_tb.cycles_run result.Verilog_tb.finished
      (Cosim.total_messages cosim) (Cosim.total_bytes cosim)
