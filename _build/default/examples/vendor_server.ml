(* The IP vendor's web presence: three customers with three licenses
   request the same IP page and receive three differently-capable
   applets (Section 1.1 and Figure 2), each with the jar set its feature
   mix requires. A vendor update then shows the central-server
   advantage: revisits re-fetch only the bumped applet jar.

   Run with: dune exec examples/vendor_server.exe *)

open Jhdl

let show_session user (session : Server.session) =
  Printf.printf "%s -> applet v%d with tools: %s\n" user session.Server.version
    (String.concat ", "
       (List.map Feature.name (Applet.features session.Server.applet)));
  Printf.printf "   jars: %s\n"
    (String.concat ", "
       (List.map (fun j -> j.Jar.jar_name) session.Server.jars));
  Printf.printf "   fetched %d jar(s), %.1f s over 1M DSL\n\n"
    (List.length session.Server.fetched)
    session.Server.download_seconds

let () =
  let server = Server.create ~vendor:"BYU Configurable Computing Lab" () in
  let _ = Server.publish server Catalog.kcm in
  let _ = Server.publish server Catalog.fir in
  Server.register_user server ~user:"browser-bob" ~tier:License.Passive;
  Server.register_user server ~user:"eval-eve" ~tier:License.Evaluator;
  Server.register_user server ~user:"paid-pat" ~tier:License.Licensed;

  print_endline "== catalog ==";
  List.iter
    (fun (name, version) -> Printf.printf "  %s (v%d)\n" name version)
    (Server.catalog server);
  print_newline ();

  print_endline "== license feature matrix ==";
  print_endline (License.feature_matrix ());

  print_endline "== three customers request the KCM page ==";
  let link = Download.dsl_1m in
  List.iter
    (fun user ->
       match Server.request server ~user ~ip_name:"VirtexKCMMultiplier" ~link () with
       | Ok session -> show_session user session
       | Error message -> Printf.printf "%s -> ERROR %s\n" user message)
    [ "browser-bob"; "eval-eve"; "paid-pat" ];

  print_endline "== the passive applet really is passive ==";
  (match Server.request server ~user:"browser-bob" ~ip_name:"VirtexKCMMultiplier" ~link () with
   | Error message -> print_endline message
   | Ok session ->
     let applet = session.Server.applet in
     List.iter
       (fun command ->
          match Applet.exec applet command with
          | Ok _ -> Printf.printf "  %s: allowed\n" (Applet.command_to_string command)
          | Error m -> Printf.printf "  %s: refused (%s)\n" (Applet.command_to_string command) m)
       [ Applet.Build; Applet.Estimate; Applet.View_hierarchy;
         Applet.Cycle 1; Applet.Netlist "EDIF" ]);
  print_newline ();

  print_endline "== vendor publishes a KCM update; pat revisits ==";
  let v = Server.publish server Catalog.kcm in
  Printf.printf "republished VirtexKCMMultiplier as v%d\n" v;
  (match Server.request server ~user:"paid-pat" ~ip_name:"VirtexKCMMultiplier" ~link () with
   | Ok session ->
     Printf.printf "pat re-fetched only: %s (%.2f s)\n"
       (String.concat ", "
          (List.map (fun j -> j.Jar.jar_name) session.Server.fetched))
       session.Server.download_seconds
   | Error message -> print_endline message);
  print_newline ();

  print_endline "== server access log ==";
  List.iter (fun line -> print_endline ("  " ^ line)) (Server.access_log server)
