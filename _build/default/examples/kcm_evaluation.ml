(* The Figure 1 / Figure 3 customer session: evaluate the constant
   coefficient multiplier applet exactly as the paper describes — select
   parameters (8-bit multiplicand, 12-bit product, signed, pipelined,
   constant -56), press Build, browse the structure, estimate, simulate
   with Cycle/Reset, view waveforms, and press Netlist for an EDIF.

   Run with: dune exec examples/kcm_evaluation.exe *)

open Jhdl

let () =
  (* a licensed customer gets the full Figure 2 (right) configuration *)
  let applet =
    Applet.create ~ip:Catalog.kcm
      ~license:(License.of_tier License.Licensed)
      ~user:"alice@customer.example" ()
  in
  let script =
    [ Applet.Show_form;
      Applet.Set_param ("multiplicand_width", "8");
      Applet.Set_param ("product_width", "12");
      Applet.Set_param ("signed", "true");
      Applet.Set_param ("pipelined", "true");
      Applet.Set_param ("constant", "-56");
      Applet.Build;
      Applet.Estimate;
      Applet.View_hierarchy;
      Applet.View_layout;
      (* -56 x 100: drive the input, run the pipeline, read the product *)
      Applet.Set_input ("multiplicand", "100");
      Applet.Cycle 2;
      Applet.Get_output ("product");
      Applet.Reset;
      Applet.Set_input ("multiplicand", "-3");
      Applet.Cycle 2;
      Applet.Get_output ("product");
      Applet.View_waveform;
      Applet.Netlist "EDIF" ]
  in
  let transcript = Applet.run_script applet script in
  (* keep the EDIF tail short for the console *)
  let lines = String.split_on_char '\n' transcript in
  let max_lines = 220 in
  List.iteri (fun i line -> if i < max_lines then print_endline line) lines;
  if List.length lines > max_lines then
    Printf.printf "... (%d more lines of netlist)\n"
      (List.length lines - max_lines)
