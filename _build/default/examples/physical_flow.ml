(* The physical half of the module-generator story: generate a KCM,
   compare the generator's hand placement against the automatic placer,
   route both, view the floorplan, verify structural equivalence of
   delivery forms, and configure the winner into a bitstream.

   Run with: dune exec examples/physical_flow.exe *)

open Jhdl

let kcm_design () =
  let top = Cell.root ~name:"kcm_top" () in
  let clk = Wire.create top ~name:"clk" 1 in
  let m = Wire.create top ~name:"multiplicand" 8 in
  let p = Wire.create top ~name:"product" 15 in
  let _ =
    Kcm.create top ~clk ~multiplicand:m ~product:p ~signed_mode:true
      ~pipelined_mode:false ~constant:(-56) ()
  in
  let d = Design.create top in
  Design.add_port d "clk" Types.Input clk;
  Design.add_port d "multiplicand" Types.Input m;
  Design.add_port d "product" Types.Output p;
  d

let () =
  print_endline "== generate ==";
  let hand = kcm_design () in
  let stats = Design.stats hand in
  Printf.printf "KCM (-56, 8x8 -> top 15): %d primitives, %d nets\n"
    stats.Design.primitive_instances stats.Design.nets;

  print_endline "\n== place: generator RLOCs vs auto placer vs random ==";
  let auto = kcm_design () in
  let auto_result = Placer.auto_place auto ~rows:16 ~cols:16 in
  let random = kcm_design () in
  let random_result = Placer.random_place random ~rows:16 ~cols:16 ~seed:3 in
  let timing d =
    (Estimate.timing_of_design ~use_placement:true d).Estimate.critical_path_ps
  in
  Printf.printf "%-18s %12s %14s\n" "placement" "wirelength" "critical path";
  Printf.printf "%-18s %12s %11d ps\n" "generator"
    (match Placer.wirelength hand with
     | Some wl -> string_of_int wl
     | None -> "-")
    (timing hand);
  Printf.printf "%-18s %12d %11d ps\n" "auto placer"
    auto_result.Placer.wirelength (timing auto);
  Printf.printf "%-18s %12d %11d ps\n" "random"
    random_result.Placer.wirelength (timing random);

  print_endline "\n== route (channel capacity 8) ==";
  List.iter
    (fun (label, d) ->
       let report = Router.route d ~rows:16 ~cols:16 ~capacity:8 in
       Format.printf "%-18s %a@." label Router.pp_report report)
    [ ("generator", hand); ("auto placer", auto); ("random", random) ];

  print_endline "\n== floorplan of the generator placement ==";
  print_string (Floorplan.render (Design.root hand));
  let svg = Floorplan.to_svg (Design.root hand) in
  Printf.printf "(SVG floorplan: %d bytes; write it to a file to view)\n"
    (String.length svg);

  print_endline "\n== the hand- and auto-placed netlists are the same circuit ==";
  Format.printf "equivalence: %a@." Equiv.pp_result (Equiv.check hand auto);

  print_endline "\n== configure into a 32x16 device ==";
  let package = Jbits.package ~device_rows:32 ~device_cols:16 hand in
  Printf.printf
    "partial bitstream: %d frames, %d bytes, %d slice resources configured\n"
    (List.length package.Jbits.frames)
    package.Jbits.payload_bytes package.Jbits.slices_used
