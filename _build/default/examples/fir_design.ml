(* A licensed customer integrates delivered IP into their own design:
   compose a decimating front-end from the catalog's FIR filter plus a
   local counter, simulate the whole system, watermark-verify the
   export, and write structural VHDL for the customer's tool chain.

   Run with: dune exec examples/fir_design.exe *)

open Jhdl

let () =
  (* the customer's own top-level design *)
  let top = Cell.root ~name:"frontend" () in
  let clk = Wire.create top ~name:"clk" 1 in
  let x = Wire.create top ~name:"x" 8 in
  let y = Wire.create top ~name:"y" 20 in
  let phase = Wire.create top ~name:"phase" 2 in

  (* delivered IP: the FIR generator, instanced directly (a licensed
     customer may also netlist it from the applet — same generator) *)
  let coefficients = [ 1; 4; 6; 4; 1 ] in
  let fir = Fir.create top ~clk ~x ~y ~signed_mode:true ~coefficients () in

  (* customer logic: a phase counter marking every 4th sample *)
  let _ = Counter.up_counter top ~clk ~q:phase () in

  let design = Design.create top in
  Design.add_port design "clk" Types.Input clk;
  Design.add_port design "x" Types.Input x;
  Design.add_port design "y" Types.Output y;
  Design.add_port design "phase" Types.Output phase;

  Printf.printf "FIR: %d taps, %d-bit accumulation\n" fir.Fir.taps
    fir.Fir.full_width;
  let stats = Design.stats design in
  Printf.printf "system: %d primitives in %d nets\n\n"
    stats.Design.primitive_instances stats.Design.nets;

  print_endline "== smoothing a noisy step (decimated by the phase counter) ==";
  let sim = Simulator.create ~clock:clk design in
  let noisy_step n = if n < 8 then (n * 7 mod 5) - 2 else 100 + (n * 13 mod 7) - 3 in
  print_endline "sample  x     y(filtered)  phase";
  for n = 0 to 19 do
    let xv = noisy_step n in
    Simulator.set_input sim "x" (Bits.of_int ~width:8 xv);
    let y = Simulator.get_port sim "y" in
    let phase_v = Simulator.get_port sim "phase" in
    Simulator.cycle sim;
    if Option.value (Bits.to_int phase_v) ~default:0 = 0 then
      Printf.printf "%5d %5d %9s      %s  <- kept\n" n xv
        (match Bits.to_signed_int y with
         | Some v -> string_of_int v
         | None -> Bits.to_string y)
        (Bits.to_string phase_v)
  done;

  print_endline "\n== vendor watermark ==";
  let added = Watermark.embed design ~vendor:"BYU Configurable Computing Lab" () in
  Printf.printf "embedded %d watermark LUT(s)\n" added;
  Printf.printf "verifies for the real vendor: %b\n"
    (Watermark.verify design ~vendor:"BYU Configurable Computing Lab");
  Printf.printf "verifies for an impostor:     %b\n"
    (Watermark.verify design ~vendor:"Pirate EDA Inc.");

  print_endline "\n== structural VHDL for the customer tool chain (head) ==";
  let vhdl = Vhdl.of_design design in
  String.split_on_char '\n' vhdl
  |> List.filteri (fun i _ -> i < 22)
  |> List.iter print_endline;
  Printf.printf "... (%d lines total)\n"
    (List.length (String.split_on_char '\n' vhdl))
