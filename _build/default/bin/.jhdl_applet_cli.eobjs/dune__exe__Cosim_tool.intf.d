bin/cosim_tool.mli:
