bin/netlist_tool.ml: Arg Catalog Cmd Cmdliner Format_kind Ip_module Jhdl List Model Printf Result String Term Watermark
