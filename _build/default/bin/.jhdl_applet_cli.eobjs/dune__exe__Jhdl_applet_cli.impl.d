bin/jhdl_applet_cli.ml: Applet Arg Catalog Cmd Cmdliner Ip_module Jhdl License List Option Printf String Term
