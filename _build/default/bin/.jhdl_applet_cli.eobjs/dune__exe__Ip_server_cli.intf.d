bin/ip_server_cli.mli:
