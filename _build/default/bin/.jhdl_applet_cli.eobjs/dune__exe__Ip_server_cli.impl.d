bin/ip_server_cli.ml: Applet Arg Catalog Cmd Cmdliner Download Feature Ip_module Jar Jhdl License List Printf Secure_channel Server String Term
