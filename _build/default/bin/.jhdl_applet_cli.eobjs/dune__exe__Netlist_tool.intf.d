bin/netlist_tool.mli:
