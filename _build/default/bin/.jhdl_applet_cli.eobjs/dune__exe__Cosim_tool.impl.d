bin/cosim_tool.ml: Applet Arg Bits Catalog Cmd Cmdliner Cosim Endpoint Jhdl License List Network Option Printf Result String Term Verilog_tb
