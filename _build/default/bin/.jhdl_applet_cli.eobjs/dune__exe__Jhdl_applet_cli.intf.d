bin/jhdl_applet_cli.mli:
