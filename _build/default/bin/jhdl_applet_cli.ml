(* Interactive IP delivery applet, as a terminal program: the browser
   experience of Figures 1/3 driven from stdin.

   Usage: jhdl_applet_cli [--ip NAME] [--tier TIER] [--user NAME]
   Then type `help` at the prompt. *)

open Jhdl

let parse_command line =
  let line = String.trim line in
  let split_eq s =
    match String.index_opt s '=' with
    | Some i ->
      Some
        (String.trim (String.sub s 0 i),
         String.trim (String.sub s (i + 1) (String.length s - i - 1)))
    | None -> None
  in
  let words = String.split_on_char ' ' line |> List.filter (fun w -> w <> "") in
  match words with
  | [] -> None
  | "form" :: _ -> Some Applet.Show_form
  | "build" :: _ -> Some Applet.Build
  | "estimate" :: _ -> Some Applet.Estimate
  | [ "schematic" ] -> Some (Applet.View_schematic None)
  | [ "schematic"; path ] -> Some (Applet.View_schematic (Some path))
  | "hierarchy" :: _ -> Some Applet.View_hierarchy
  | "layout" :: _ -> Some Applet.View_layout
  | [ "cycle" ] -> Some (Applet.Cycle 1)
  | [ "cycle"; n ] ->
    Option.map (fun n -> Applet.Cycle n) (int_of_string_opt n)
  | "reset" :: _ -> Some Applet.Reset
  | [ "output"; port ] -> Some (Applet.Get_output port)
  | "waveform" :: _ -> Some Applet.View_waveform
  | "vcd" :: _ -> Some Applet.Export_vcd
  | "selftest" :: _ -> Some Applet.Self_test
  | [ "netlist"; fmt ] -> Some (Applet.Netlist fmt)
  | "license" :: _ -> Some Applet.Show_license
  | "help" :: _ -> Some Applet.Help
  | "set" :: rest ->
    Option.map
      (fun (k, v) -> Applet.Set_param (k, v))
      (split_eq (String.concat " " rest))
  | "input" :: rest ->
    Option.map
      (fun (k, v) -> Applet.Set_input (k, v))
      (split_eq (String.concat " " rest))
  | _ -> None

let repl applet =
  print_endline "JHDL IP evaluation applet (type `help`, `quit` to exit)";
  let rec loop () =
    print_string "applet> ";
    match read_line () with
    | exception End_of_file -> ()
    | "quit" | "exit" -> ()
    | line ->
      (match parse_command line with
       | None ->
         if String.trim line <> "" then
           print_endline "unrecognized command (try `help`)"
       | Some command ->
         (match Applet.exec applet command with
          | Ok text -> print_endline text
          | Error message -> print_endline ("ERROR: " ^ message)));
      loop ()
  in
  loop ()

open Cmdliner

let ip_arg =
  let doc = "IP module to evaluate (VirtexKCMMultiplier, FirFilter, UpCounter)." in
  Arg.(value & opt string "VirtexKCMMultiplier" & info [ "ip" ] ~doc)

let tier_arg =
  let doc = "License tier: passive, evaluator, licensed or vendor." in
  Arg.(value & opt string "licensed" & info [ "tier" ] ~doc)

let user_arg =
  let doc = "User name recorded by the license meter." in
  Arg.(value & opt string "demo-user" & info [ "user" ] ~doc)

let run ip_name tier_name user =
  match Catalog.find ip_name with
  | None ->
    Printf.eprintf "unknown IP %s; catalog: %s\n" ip_name
      (String.concat ", "
         (List.map (fun ip -> ip.Ip_module.ip_name) Catalog.all));
    1
  | Some ip ->
    let tier =
      match String.lowercase_ascii tier_name with
      | "passive" -> Some License.Passive
      | "evaluator" -> Some License.Evaluator
      | "licensed" -> Some License.Licensed
      | "vendor" -> Some License.Vendor
      | _ -> None
    in
    (match tier with
     | None ->
       Printf.eprintf "unknown tier %s\n" tier_name;
       1
     | Some tier ->
       let applet =
         Applet.create ~ip ~license:(License.of_tier tier) ~user ()
       in
       repl applet;
       0)

let cmd =
  let doc = "evaluate FPGA IP inside a JHDL applet" in
  Cmd.v
    (Cmd.info "jhdl_applet_cli" ~doc)
    Term.(const run $ ip_arg $ tier_arg $ user_arg)

let () = exit (Cmd.eval' cmd)
