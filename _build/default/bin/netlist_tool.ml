(* Batch netlist generation from the IP catalog: the vendor-side or
   licensed-customer command-line path from generator to tool-chain
   file.

   Usage: netlist_tool --ip VirtexKCMMultiplier --format vhdl \
            --param constant=-56 --param multiplicand_width=8 [-o out.vhd] *)

open Jhdl
open Cmdliner

let build_design ip params =
  let parse (name, text) =
    match List.assoc_opt name ip.Ip_module.params with
    | None -> Error (Printf.sprintf "unknown parameter %s" name)
    | Some kind ->
      Result.map (fun v -> (name, v)) (Ip_module.parse_param kind text)
  in
  let rec parse_all acc = function
    | [] -> Ok (List.rev acc)
    | p :: rest ->
      (match parse p with
       | Ok v -> parse_all (v :: acc) rest
       | Error _ as e -> e)
  in
  match parse_all [] params with
  | Error message -> Error message
  | Ok assignment ->
    (match Ip_module.validate ip assignment with
     | Error message -> Error message
     | Ok complete ->
       (match ip.Ip_module.build complete with
        | built -> Ok built
        | exception Invalid_argument message -> Error message))

let run ip_name format_name params output watermark_vendor =
  let split_param p =
    match String.index_opt p '=' with
    | Some i ->
      Ok
        (String.sub p 0 i, String.sub p (i + 1) (String.length p - i - 1))
    | None -> Error (Printf.sprintf "--param expects name=value, got %s" p)
  in
  let rec split_all acc = function
    | [] -> Ok (List.rev acc)
    | p :: rest ->
      (match split_param p with
       | Ok v -> split_all (v :: acc) rest
       | Error _ as e -> e)
  in
  let result =
    match Catalog.find ip_name with
    | None -> Error (Printf.sprintf "unknown IP %s" ip_name)
    | Some ip ->
      (match Format_kind.of_string format_name with
       | None -> Error (Printf.sprintf "unknown format %s" format_name)
       | Some fmt ->
         (match split_all [] params with
          | Error message -> Error message
          | Ok params ->
            (match build_design ip params with
             | Error message -> Error message
             | Ok built ->
               let design = built.Ip_module.design in
               (match watermark_vendor with
                | Some vendor ->
                  let _ = Watermark.embed design ~vendor () in
                  ()
                | None -> ());
               Ok (Format_kind.write fmt (Model.of_design design)))))
  in
  match result with
  | Error message ->
    Printf.eprintf "netlist_tool: %s\n" message;
    1
  | Ok text ->
    (match output with
     | None -> print_string text
     | Some path ->
       let oc = open_out path in
       output_string oc text;
       close_out oc;
       Printf.printf "wrote %s (%d bytes)\n" path (String.length text));
    0

let ip_arg =
  Arg.(
    value
    & opt string "VirtexKCMMultiplier"
    & info [ "ip" ] ~doc:"IP module name from the catalog.")

let format_arg =
  Arg.(
    value & opt string "edif"
    & info [ "format" ] ~doc:"Output format: edif, vhdl or verilog.")

let param_arg =
  Arg.(
    value & opt_all string []
    & info [ "param"; "p" ] ~doc:"Generator parameter as name=value.")

let output_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "o"; "output" ] ~doc:"Write to a file instead of stdout.")

let watermark_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "watermark" ] ~doc:"Embed a vendor watermark before export.")

let cmd =
  let doc = "generate tool-chain netlists from JHDL module generators" in
  Cmd.v
    (Cmd.info "netlist_tool" ~doc)
    Term.(
      const run $ ip_arg $ format_arg $ param_arg $ output_arg $ watermark_arg)

let () = exit (Cmd.eval' cmd)
